#!/usr/bin/env python3
"""The full observability-phase-2 stack on a run that goes wrong.

A two-worker AllReduce with everything attached -- continuous profiler,
virtual-clock time-series sampler, health alert engine, flight
recorder:

    w0 --+
         +--> s1 (in-network aggregation)
    w1 --+

Round 1 succeeds and prints the profiler's where-did-the-time-go view.
Then the w0 uplink is failed mid-round-2: frames start dropping with
cause ``down``, the critical drop-rate alert fires at the next sampler
boundary (the flight recorder dumps bundle 0 at that instant), and the
round times out inside ``flight_guard`` (bundle 1). The demo validates
both bundles and reconstructs the alert story from bundle 0 alone --
exactly what ``python -m repro.obs.query alerts --flight`` does
offline.

Run:  python examples/flight_recorder_demo.py [output-dir]

Outputs land in *output-dir* (default ``flight_recorder_out/``), which
is gitignored -- demo runs never dirty the repo.
"""

import json
import sys
from pathlib import Path

from repro.apps.allreduce import AllReduceJob
from repro.apps.workloads import random_arrays
from repro.errors import RuntimeApiError
from repro.obs import (
    AlertEngine,
    FlightRecorder,
    Observability,
    Profiler,
    TimeSeriesSampler,
    attach_cluster_probes,
    attach_network_probes,
    flight_guard,
    validate_bundle,
)

N_WORKERS = 2
DATA_LEN = 256
WINDOW = 8

ALERT_RULE = "drops: link.drops{cause=down} rate > 0 over 2us !critical"


def main(outdir: str = "flight_recorder_out") -> int:
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)

    profiler = Profiler()
    sampler = TimeSeriesSampler(interval=1e-6)  # 1us buckets
    health = AlertEngine([ALERT_RULE])
    flight = FlightRecorder(capacity=128, out_dir=str(out))
    obs = Observability(
        profiler=profiler, sampler=sampler, health=health, flight=flight
    )

    job = AllReduceJob(N_WORKERS, DATA_LEN, WINDOW, obs=obs)
    attach_network_probes(sampler, job.cluster.network)
    attach_cluster_probes(sampler, job.cluster)

    # -- round 1: healthy --------------------------------------------------
    arrays = random_arrays(N_WORKERS, DATA_LEN, seed=1)
    results, elapsed = job.run_round(arrays)
    assert results[0] == AllReduceJob.expected(arrays)
    print(f"round 1 complete in {elapsed * 1e6:.1f}us simulated")
    report = profiler.report()
    print(f"profiler: {report['events']} events, "
          f"{report['events_per_sec']:,.0f} events/s, "
          f"{report['packets_per_sec']:,.0f} packets/s, "
          f"{report['attributed_fraction'] * 100:.1f}% attributed")
    for entry in report["entries"][:3]:
        print(f"  {entry['label']:<24} {entry['wall_pct']:5.1f}%  "
              f"x{entry['count']}")

    # -- round 2: the uplink goes down mid-round ---------------------------
    fail_at = job.cluster.now() + 1e-6
    job.cluster.network.fail_link("w0", "s1", at=fail_at)
    print(f"\ninjecting w0<->s1 link failure at t={fail_at * 1e6:.1f}us; "
          f"watching: {ALERT_RULE!r}")
    try:
        with flight_guard(obs, clock=job.cluster.now):
            job.run_round(random_arrays(N_WORKERS, DATA_LEN, seed=2))
        raise SystemExit("round 2 unexpectedly succeeded")
    except RuntimeApiError as exc:
        print(f"round 2 failed (as injected): {exc}")
    sampler.finish(job.cluster.now())

    # -- the recorded story ------------------------------------------------
    print(f"\n{len(flight.bundles)} flight bundles dumped:")
    for reason, data, path in flight.bundles:
        problems = validate_bundle(data)
        status = "valid" if not problems else f"INVALID: {problems}"
        print(f"  {path}  reason={reason!r}  "
              f"{len(data['events'])}/{data['events_seen']} events  {status}")
        if problems:
            return 1

    # Reconstruct the alert + its triggering window from bundle 0 alone
    # (what `python -m repro.obs.query alerts --flight` does offline).
    escalation = json.loads((out / "flight-0.json").read_text())
    (alert,) = escalation["alerts"]["alerts"]
    print(f"\nfrom flight-0.json alone: [{alert['severity']}] "
          f"{alert['name']} fired at {alert['fired_at'] * 1e6:.1f}us "
          f"({alert['rule']})")
    print("triggering window (drop rate, per 1us bucket):")
    for t, value in alert["window"]:
        print(f"  t={t * 1e6:6.1f}us  {value:g}/s")

    # Full artifacts for the offline CLI.
    with open(out / "run.profile.json", "w") as fp:
        profiler.write_json(fp)
    with open(out / "run.timeseries.json", "w") as fp:
        sampler.write_json(fp)
    with open(out / "run.alerts.json", "w") as fp:
        health.write_json(fp)
    with open(out / "run.metrics.json", "w") as fp:
        json.dump(obs.snapshot(), fp, sort_keys=True)
    print(f"\nwrote run.{{profile,timeseries,alerts,metrics}}.json to {out}/;"
          " explore offline, e.g.")
    print(f"  python -m repro.obs.query alerts --flight {out}/flight-0.json --window")
    print(f"  python -m repro.obs.query timeseries --timeseries "
          f"{out}/run.timeseries.json --series link.drops --labels cause=down --rate")
    print(f"  python -m repro.obs.query profile --profile {out}/run.profile.json")
    print(f"  python -m repro.obs.query export --metrics {out}/run.metrics.json "
          f"--format prom")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
