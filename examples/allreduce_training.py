#!/usr/bin/env python3
"""Distributed data-parallel training with in-network gradient AllReduce
(the paper's Fig 4 use case, run as a SwitchML-style training loop).

Simulates `ROUNDS` iterations of synchronous SGD: each worker computes a
(random) int32 gradient, all-reduces it through the ToR switch, and
applies the aggregated gradient. The same workload then runs on two
host-only baselines -- a parameter server and ring all-reduce -- on an
identical topology with a plain forwarding switch.

Run:  python examples/allreduce_training.py [n_workers] [grad_len]
"""

import sys

import numpy as np

from repro.apps.allreduce import AllReduceJob
from repro.baselines.host_allreduce import ParameterServerAllReduce, RingAllReduce

ROUNDS = 3
WINDOW = 8


def gradients(rng, n_workers: int, length: int):
    return [list(map(int, rng.integers(-1000, 1000, length))) for _ in range(n_workers)]


def main() -> None:
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    grad_len = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    rng = np.random.default_rng(0)

    print(f"workers={n_workers}  gradient={grad_len} int32  rounds={ROUNDS}\n")

    # -- in-network ---------------------------------------------------------
    job = AllReduceJob(n_workers, grad_len, WINDOW, multiround=True)
    report = job.program.reports["s1"]
    print(
        f"in-network deployment: {report.stages} pipeline stages, "
        f"{report.sram_bytes} B switch SRAM"
    )
    model = np.zeros(grad_len, dtype=np.int64)
    inc_time = 0.0
    for r in range(ROUNDS):
        grads = gradients(rng, n_workers, grad_len)
        results, elapsed = job.run_round(grads)
        inc_time += elapsed
        expected = AllReduceJob.expected(grads)
        assert all(res == expected for res in results), "gradient mismatch!"
        model += np.array(expected)
    print(f"  INC AllReduce : {inc_time * 1e6:9.1f} us total "
          f"({inc_time / ROUNDS * 1e6:.1f} us/round)")

    # -- parameter server ----------------------------------------------------
    rng = np.random.default_rng(0)
    ps = ParameterServerAllReduce(n_workers, grad_len, WINDOW)
    ps_time = 0.0
    for r in range(ROUNDS):
        grads = gradients(rng, n_workers, grad_len)
        results, elapsed = ps.run(grads)
        ps_time += elapsed
        assert results[0] == AllReduceJob.expected(grads)
    print(f"  parameter srv : {ps_time * 1e6:9.1f} us total "
          f"({ps_time / ROUNDS * 1e6:.1f} us/round)")

    # -- ring ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    ring_len = grad_len
    if ring_len % (n_workers * WINDOW):
        ring_len = (grad_len // (n_workers * WINDOW) + 1) * n_workers * WINDOW
    ring = RingAllReduce(n_workers, ring_len, WINDOW)
    ring_time = 0.0
    for r in range(ROUNDS):
        grads = gradients(rng, n_workers, ring_len)
        results, elapsed = ring.run(grads)
        ring_time += elapsed
        assert results[0] == AllReduceJob.expected(grads)
    print(f"  ring          : {ring_time * 1e6:9.1f} us total "
          f"({ring_time / ROUNDS * 1e6:.1f} us/round)")

    print(f"\nspeedup vs parameter server: {ps_time / inc_time:.2f}x")
    print(f"speedup vs ring            : {ring_time / inc_time:.2f}x")
    print(f"model checksum             : {int(model.sum())}")


if __name__ == "__main__":
    main()
