#!/usr/bin/env python3
"""Quickstart: write an NCL kernel, compile it, deploy it, send windows.

This walks the whole paper pipeline in ~40 lines of user code:

1. an NCL program (C subset + `_net_`/`_out_`/`_in_` specifiers)
   containing an outgoing kernel that counts and sums window values on
   the switch, and an incoming kernel delivering windows to the host;
2. `repro.compile_ncl` -> conformance check, per-switch versioning,
   optimization, P4 code generation, backend acceptance;
3. `Cluster.from_program` -> a simulated network (hosts + PISA switch);
4. the libncrt host API: `out()` to invoke the kernel on arrays,
   `register_in()` to receive windows, `ctrl_wr` via the controller.

Run:  python examples/quickstart.py
"""

from repro import compile_ncl
from repro.runtime import Cluster

NCL_SOURCE = r"""
// Running statistics, computed on-path: every window that crosses the
// switch updates a count and a sum; windows above the (host-controlled)
// threshold are reflected back to the sender instead of delivered.
_net_ _at_("s1") unsigned seen[1]  = {0};
_net_ _at_("s1") int      total[1] = {0};
_net_ _at_("s1") _ctrl_ int threshold;

_net_ _out_ void stats(int *sample) {
  seen[0] += 1;
  total[0] += sample[0];
  if (sample[0] > threshold) {
    _reflect();                      // bounce outliers back to the sender
  }
}

_net_ _in_ void deliver(int *sample, _ext_ int *sink, _ext_ unsigned *n) {
  sink[n[0] & 1023] = sample[0];
  n[0] += 1;
}
"""

AND_OVERLAY = """
host sensor
host collector
switch s1
link sensor s1
link s1 collector
"""


def main() -> None:
    # -- compile -----------------------------------------------------------
    program = compile_ncl(
        NCL_SOURCE,
        and_text=AND_OVERLAY,
        filename="quickstart.ncl",
    )
    report = program.reports["s1"]
    print("compiled OK:")
    print(f"  kernels      : {list(program.kernel_ids)}")
    print(f"  switch stages: {report.stages}")
    print(f"  PHV bits     : {report.phv_bits}")
    print(f"  generated P4 : {len(program.switch_sources['s1'].splitlines())} lines")

    # -- deploy ------------------------------------------------------------
    cluster = Cluster.from_program(program)
    cluster.controller.ctrl_wr("threshold", 50)

    sensor = cluster.host("sensor")
    collector = cluster.host("collector")

    sink = [0] * 1024
    count = [0]
    collector.register_in("deliver", [sink, count])

    bounced = []
    sensor.on_raw_window("stats", lambda w, h: bounced.append(w.chunks[0][0]))

    # -- run ---------------------------------------------------------------
    samples = [3, 47, 99, 12, 63, 8, 51, 20]
    sensor.out("stats", [samples], dst="collector")
    cluster.run()

    print("\nafter sending", samples)
    print(f"  delivered to collector : {sink[:count[0]]}")
    print(f"  reflected to sensor    : {bounced}")
    print(f"  switch counters        : seen={cluster.controller.register_dump('seen')[0]}"
          f" total={cluster.controller.register_dump('total')[0]}")
    print(f"  simulated time         : {cluster.now() * 1e6:.1f} us")

    assert count[0] + len(bounced) == len(samples)
    assert cluster.controller.register_dump("total")[0] == sum(samples)
    print("\nOK -- in-network compute matched host-side expectations.")


if __name__ == "__main__":
    main()
