#!/usr/bin/env python3
"""The paper's headline demo: ONE NCL source file containing the switch
kernel, the incoming kernel, and the host `main()` -- unified
switch/host programming (Fig 4, verbatim structure).

The compiler splits the program into a switch P4 program and "host
binaries"; `HostProgram` plays the role of the compiled host binary,
executing `main()` with the `ncl::` runtime calls bound to the live
simulated cluster. Each worker runs the *same* main().

Run:  python examples/unified_allreduce.py [n_workers]
"""

import sys

from repro.nclc import Compiler, WindowConfig
from repro.runtime import Cluster, HostProgram

UNIFIED_SOURCE = r"""
// ---- the whole application: switch code + host code, one file ----
struct window { unsigned len; };

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN / WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

int data[DATA_LEN];          // host memory (per worker)
int result_buf[DATA_LEN];
bool done = false;

_net_ _out_ void allreduce(int *d) {           // runs on the ToR switch
  unsigned base = window.seq * window.len;
  for (unsigned i = 0; i < window.len; ++i)
    accum[base + i] += d[i];
  if (++count[window.seq] == nworkers) {
    memcpy(d, &accum[base], window.len * 4);
    count[window.seq] = 0; _bcast();
  } else { _drop(); }
}

_net_ _in_ void result(int *d, _ext_ int *hdata, _ext_ bool *flag) {
  for (unsigned i = 0; i < window.len; ++i)    // runs on each worker
    hdata[window.seq * window.len + i] = d[i];
  if (window.last) *flag = true;
}

int main() {                                   // also runs on each worker
  ncl::ctrl_wr(&nworkers, NWORKERS);
  for (unsigned i = 0; i < DATA_LEN; ++i)
    data[i] = (int)(i * (MY_RANK + 1));
  ncl::out(allreduce, {data});
  while (!done)
    ncl::in(result, {result_buf, &done});
  return 0;
}
"""

DATA_LEN = 64
WIN_LEN = 8


def main() -> None:
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    and_text = "\n".join(
        [f"host w{i}" for i in range(n_workers)]
        + ["switch s1"]
        + [f"link w{i} s1" for i in range(n_workers)]
    )

    # One compile per rank: MY_RANK is a per-worker #define, the way a
    # launcher would bake ranks into each host binary.
    programs = []
    for rank in range(n_workers):
        programs.append(
            Compiler().compile(
                UNIFIED_SOURCE,
                and_text=and_text,
                windows={"allreduce": WindowConfig(mask=(WIN_LEN,), ext={"len": WIN_LEN})},
                defines={
                    "DATA_LEN": DATA_LEN,
                    "WIN_LEN": WIN_LEN,
                    "NWORKERS": n_workers,
                    "MY_RANK": rank,
                },
            )
        )

    # All ranks share one deployment (the switch program is identical).
    cluster = Cluster.from_program(programs[0])
    hosts = [HostProgram(cluster, f"w{rank}") for rank in range(n_workers)]
    # Rebind each host executor to its rank's compiled constants.
    for rank in range(1, n_workers):
        hosts[rank].program = programs[rank]
        hosts[rank].unit = programs[rank].unit

    print(f"running main() on {n_workers} workers (one unified NCL source)...")
    # Phase 1: every worker's main() up to the blocking ncl::in. Our
    # executor is synchronous, so stagger: send everything first.
    for rank, host in enumerate(hosts):
        # run a truncated main: ctrl_wr + fill + out (the loop would block
        # until results exist, so the last worker triggers aggregation).
        host.run("main") if rank == n_workers - 1 else _send_only(host, rank, n_workers)

    results = []
    for rank in range(n_workers):
        buf = cluster.host(f"w{rank}").state.arrays["result_buf"]
        results.append(list(buf))

    expected = [
        sum(i * (r + 1) for r in range(n_workers)) for i in range(DATA_LEN)
    ]
    ok = all(r == expected for r in results)
    print(f"workers agree on the aggregated array: {ok}")
    print(f"result[:8] = {results[0][:8]}")
    assert ok


def _send_only(host: HostProgram, rank: int, n_workers: int) -> None:
    """Execute the non-blocking prefix of main() for early ranks."""
    host.cluster.controller.ctrl_wr("nworkers", n_workers)
    data = host.host.state.arrays["data"]
    for i in range(DATA_LEN):
        data[i] = i * (rank + 1)
    # register the incoming kernel so results land in result_buf
    host.host.register_in(
        "result",
        [host.host.state.arrays["result_buf"], host.host.state.arrays["done"]],
    )
    host.host.out("allreduce", [data])


if __name__ == "__main__":
    main()
