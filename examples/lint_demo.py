"""Tour of the `nclc lint` static-analysis framework.

Lints the deliberately broken ``examples/lint_demo.ncl`` and walks
through what the diagnostics engine reports: multi-error recovery (the
sema error does not stop the analyses), the shared-state race detector
pointing at *both* conflicting access sites, def-use lints, and the
PISA-resource explanations against a hardware-flavoured chip profile.

Run:  python examples/lint_demo.py
"""

from pathlib import Path

from repro.analysis import lint_source
from repro.diag import Severity
from repro.diag.export import render_json
from repro.diag.render import render_text

DEMO = Path(__file__).with_name("lint_demo.ncl")


def main() -> None:
    source = DEMO.read_text()
    name = "examples/lint_demo.ncl"

    # -- full report, default profile -------------------------------------
    result = lint_source(source, name)
    print("=" * 72)
    print("lint report (all rules, bmv2 profile)")
    print("=" * 72)
    print(render_text(result.sink, {name: source}))

    # The sema error did not stop the linter: analyses still ran over the
    # kernels that lowered, and the race detector reported both sites.
    races = [d for d in result.sink.sorted() if d.code == "NCL0701"]
    print(f"race findings: {len(races)}, each with "
          f"{sum(len(d.secondary) for d in races)} secondary span(s) total")

    # -- the same program against a hardware-like chip profile ------------
    result = lint_source(source, name, profile="tofino-like",
                         rules=["pisa-resources"])
    resource = [d for d in result.sink.sorted()
                if d.severity is Severity.WARNING]
    print()
    print("=" * 72)
    print(f"pisa-resources only, tofino-like profile "
          f"({len(resource)} finding(s))")
    print("=" * 72)
    print(render_text(result.sink, {name: source}, summary=False))

    # -- machine-readable form --------------------------------------------
    result = lint_source(source, name, rules=["race"])
    print("=" * 72)
    print("deterministic JSON export (race rule only, excerpt)")
    print("=" * 72)
    text = render_json(result.sink)
    print("\n".join(text.splitlines()[:20]))
    print("  ...")


if __name__ == "__main__":
    main()
