#!/usr/bin/env python3
"""In-network duplicate suppression with an `ncl::BloomFilter`.

An at-least-once sender retransmits aggressively; the switch drops
duplicates before they reach the (slow) downstream link, and exports
its counters to the host through switch memory.

Run:  python examples/dedup_stream.py [duplication_factor]
"""

import random
import sys

from repro.apps.dedup import DedupCluster


def main() -> None:
    dup_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 3.0
    n_messages = 300
    rng = random.Random(11)

    # Build a stream where each message id appears ~dup_factor times.
    unique = int(n_messages / dup_factor)
    stream = [rng.randrange(unique) for _ in range(n_messages)]

    cluster = DedupCluster(filter_bits=1 << 13, payload_words=4)
    cluster.send_stream(stream)

    total, dups = cluster.switch_counters()
    links = {frozenset((lk.a.name, lk.b.name)): lk for lk in cluster.cluster.network.links}
    upstream = links[frozenset(("sender", "s1"))].stats
    downstream = links[frozenset(("s1", "sink"))].stats

    print(f"sent {len(stream)} windows, {len(set(stream))} unique ids")
    print(f"switch counters : seen={total} duplicates-dropped={dups}")
    print(f"sink received   : {cluster.delivered}")
    print(f"upstream link   : {upstream.frames} frames / {upstream.bytes} B")
    print(f"downstream link : {downstream.frames} frames / {downstream.bytes} B")
    print(f"downstream traffic saved: {1 - downstream.bytes / upstream.bytes:.1%}")

    assert cluster.delivered <= len(set(stream))  # Bloom FP can only drop more


if __name__ == "__main__":
    main()
