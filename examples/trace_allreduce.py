#!/usr/bin/env python3
"""Trace one in-network AllReduce window end-to-end.

This is the observability layer's worked example (docs/OBSERVABILITY.md):
run the Fig 4 AllReduce with an :class:`repro.obs.Observability` attached
and follow a single window hop by hop --

    host w0 opens and flushes the window       (track ``host w0``)
    the frame serializes onto the uplink       (track ``link w0<->s1``)
    the switch parses it, runs the kernel's
    actions, and emits a verdict               (track ``switch s1``)
    the broadcast result is delivered back     (tracks ``host w*``)

-- then print the per-layer metrics breakdown and write a Chrome
trace-event file you can open in chrome://tracing or
https://ui.perfetto.dev.

Run:  python examples/trace_allreduce.py
"""

from repro.apps.allreduce import AllReduceJob
from repro.obs import Observability

N_WORKERS = 2
DATA_LEN = 8
WINDOW_LEN = 4


def main() -> None:
    obs = Observability()
    job = AllReduceJob(N_WORKERS, DATA_LEN, WINDOW_LEN, obs=obs)
    arrays = [[w + 1] * DATA_LEN for w in range(N_WORKERS)]
    results, elapsed = job.run_round(arrays)
    assert results[0] == AllReduceJob.expected(arrays)
    print(f"AllReduce of {DATA_LEN} ints across {N_WORKERS} workers "
          f"finished in {elapsed * 1e6:.1f} simulated us\n")

    # -- 1. the packet path, as a human-readable timeline ------------------
    print("== trace timeline (first window: seq=0) ==")
    seq0 = [e for e in obs.tracer.events if e.args.get("seq") == 0]
    for event in sorted(seq0, key=lambda e: e.ts):
        dur = f" +{event.dur * 1e6:.2f}us" if event.dur is not None else ""
        print(f"  {event.ts * 1e6:8.2f}us{dur:>10}  "
              f"{event.track:<18} {event.name}")

    # -- 2. the per-layer metrics breakdown --------------------------------
    snap = obs.snapshot()
    print("\n== metrics (selected) ==")
    for name in ("link.bytes", "link.drops", "ncp.windows",
                 "switch.packets", "switch.action_runs"):
        for series in snap[name]["series"]:
            labels = ",".join(f"{k}={v}" for k, v in series["labels"].items())
            print(f"  {name}{{{labels}}} = {series['value']}")
    phv = snap["switch.phv_fields"]["series"][0]["value"]
    print(f"  switch.phv_fields{{switch=s1}} p50={phv['p50']} "
          f"max={phv['max']} (live PHV fields per packet)")

    # -- 3. the whole run, for a trace viewer ------------------------------
    out = "allreduce.trace.json"
    with open(out, "w") as fp:
        obs.tracer.write_chrome(fp)
    print(f"\nwrote {out} ({len(obs.tracer.events)} events) -- open it in "
          "chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
