#!/usr/bin/env python3
"""In-band telemetry (INT) over the two-switch flow-telemetry app.

The telemetry application (S4.1's SPMD use case) already computes *on*
packets -- both switches count windows per flow and mark heavy hitters.
This demo turns on the observability layer's INT stamping as well, so
every window additionally carries a per-hop record stack:

    src0 --+--> s1 (ingress count) --> s2 (heavy-hitter mark) --> collector
    src1 --+

Each hop appends (hop id, ingress/egress timestamps, egress queue depth,
tables matched) to the frame's INT trailer; the collector strips the
stacks, and the lineage index folds them into a causal story per window.
The demo prints that story -- emit, both hops, delivery -- for one
heavy-hitter window, then saves the trace + lineage for the offline CLI.

Run:  python examples/int_telemetry_demo.py [output-dir]

Outputs land in *output-dir* (default ``int_telemetry_out/``), which is
gitignored -- demo runs never dirty the repo.
"""

import sys
from pathlib import Path

from repro.apps.telemetry import TelemetryCluster
from repro.obs import IntConfig, Observability
from repro.obs.lineage import LineageIndex

HEAVY_FLOW = 5
HH_THRESHOLD = 3
HEAVY_SENDS = 6


def main(outdir: str = "int_telemetry_out") -> None:
    obs = Observability(int_config=IntConfig(max_hops=4))
    cluster = TelemetryCluster(
        n_senders=2, slots=16, hh_threshold=HH_THRESHOLD, obs=obs
    )

    # One hot flow from src0, background flows from src1.
    for _ in range(HEAVY_SENDS):
        cluster.send_flows(0, [HEAVY_FLOW])
    cluster.send_flows(1, [1, 2, 3])

    print(f"heavy hitters (threshold {HH_THRESHOLD}): "
          f"slots {cluster.heavy_hitters()}, "
          f"{cluster.total_seen()} windows seen at the collector\n")

    # The per-hop story of the last heavy-hitter window. src0's windows
    # are seq 0..5; s2 marks a window once the ingress count exceeds the
    # threshold, so the last send is certainly marked.
    index = LineageIndex.from_events(obs.tracer.events)
    print("== lineage of one heavy-hitter window ==")
    print(index.explain("monitor", HEAVY_SENDS - 1))

    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "int_telemetry.trace.jsonl"
    lineage_path = out / "int_telemetry.lineage.json"
    with open(trace_path, "w") as fp:
        obs.tracer.write_jsonl(fp)
    with open(lineage_path, "w") as fp:
        index.write_json(fp)
    snap = obs.snapshot()
    stacks = sum(s["value"] for s in snap["int.stacks"]["series"])
    records = sum(s["value"] for s in snap["int.records"]["series"])
    print(f"\n{stacks} INT stacks ({records} hop records) stripped at hosts")
    print(f"wrote {trace_path} and {lineage_path}; query them offline, e.g.")
    print(f"  python -m repro.obs.query slowest --lineage {lineage_path}")
    print(f"  python -m repro.obs.query explain --lineage {lineage_path} "
          f"--window monitor:{HEAVY_SENDS - 1}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
