#!/usr/bin/env python3
"""In-network KVS cache under a skewed workload (the paper's Fig 5 use
case; NetCache's scenario).

Clients issue GETs/PUTs against a storage server behind a caching ToR.
The hottest keys are admitted into the switch cache; the same workload
then runs against a host-only deployment (no cache) for comparison.

Run:  python examples/kvs_cache_demo.py [skew] [n_ops]
"""

import sys
from collections import Counter

from repro.apps.kvs_cache import KvsCluster
from repro.apps.workloads import zipf_keys
from repro.baselines.host_kvs import HostOnlyKvs

N_KEYS = 512
CACHE_SIZE = 32
VAL_WORDS = 8


def main() -> None:
    skew = float(sys.argv[1]) if len(sys.argv) > 1 else 1.2
    n_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 400

    keys = zipf_keys(n_ops, N_KEYS, skew, seed=7)
    hot = [key for key, _ in Counter(keys).most_common(CACHE_SIZE)]

    print(f"workload: {n_ops} ops over {N_KEYS} keys, zipf skew {skew}")
    print(f"caching the {len(hot)} hottest keys on the switch\n")

    # -- with the in-network cache -----------------------------------------
    kvs = KvsCluster(
        n_clients=2, cache_size=CACHE_SIZE, val_words=VAL_WORDS, n_keys=N_KEYS
    )
    kvs.install_hot_keys(hot)
    kvs.run_workload(0, keys, put_every=10)

    hit_lat = kvs.mean_latency("GET", cache_only=True)
    miss_lat = kvs.mean_latency("GET", cache_only=False)
    print("with in-network cache:")
    print(f"  hit ratio     : {kvs.hit_ratio():6.1%}")
    print(f"  server ops    : {kvs.server_ops:6d}")
    print(f"  GET latency   : hits {hit_lat * 1e6:6.1f} us | "
          f"misses {miss_lat * 1e6:6.1f} us")

    # -- host-only baseline ---------------------------------------------------
    base = HostOnlyKvs(n_clients=2, val_words=VAL_WORDS, n_keys=N_KEYS)
    base.run_workload(0, keys)
    print("\nhost-only baseline (every GET to the server):")
    print(f"  server ops    : {base.server_ops:6d}")
    print(f"  GET latency   : {base.mean_latency() * 1e6:6.1f} us (all)")

    saved = 1 - kvs.server_ops / base.server_ops
    print(f"\nserver load removed by the cache: {saved:.1%}")
    print("hot-key latency improvement     : "
          f"{base.mean_latency() / hit_lat:.1f}x")


if __name__ == "__main__":
    main()
