"""Hand-written P4 NetCache (the paper's Fig 1b), built directly against
the P4 program model -- no NCL, no compiler.

This is the baseline the paper's motivation section argues against:
the programmer manually writes the parser for the full header stack,
the match-action tables, one register array *per value word* with an
explicit ``Read0.apply(); Read1.apply(); ...`` chain, metadata plumbing
for the hit flag and index, and the IPv4 forwarding behaviour. Compare
``handwritten_p4_source()`` against ``repro.apps.kvs_cache.KVS_NCL`` for
the code-size/construct-count motivation benchmarks.

It speaks the same NCP ``query`` wire format as the NCL-compiled cache
(key, value words, update flag), so the two are benchmarked head-to-head
on identical workloads. Scope matches Fig 1b: the GET fast path (plus
the minimum PUT-invalidate/update machinery needed to run a workload).
"""

from __future__ import annotations


from repro.ncp.wire import (
    ETH_FIELDS,
    ETHERTYPE_IPV4,
    IP_PROTO_UDP,
    IPV4_FIELDS,
    NCP_FIELDS,
    NCP_PORT,
    UDP_FIELDS,
)
from repro.p4.model import (
    Action,
    Apply,
    Do,
    FWD_DROP,
    FWD_PASS,
    FWD_REFLECT,
    HeaderType,
    IfNode,
    META_FWD,
    P4Program,
    ParseState,
    PAssign,
    PBin,
    PConst,
    PField,
    PParam,
    PRegRead,
    PRegWrite,
    RegisterArray,
    Table,
)
from repro.p4.printer import print_program


def build_netcache_program(
    cache_size: int = 256,
    val_words: int = 8,
    server_id: int = 1,
    kernel_id: int = 1,
) -> P4Program:
    """Hand-written NetCache-style cache as a P4 program object."""
    p = P4Program("netcache_hand")
    p.add_metadata("egress_port", 16)
    p.add_metadata("hit", 8)
    p.add_metadata("idx", 16)
    p.add_metadata("valid", 8)
    p.add_metadata("is_get", 8)
    p.add_metadata("from_server", 8)
    p.add_metadata("swap_tmp", 48)

    p.add_header(HeaderType("ethernet_t", ETH_FIELDS), "eth")
    p.add_header(HeaderType("ipv4_t", IPV4_FIELDS), "ipv4")
    p.add_header(HeaderType("udp_t", UDP_FIELDS), "udp")
    p.add_header(HeaderType("ncp_t", NCP_FIELDS), "ncp")
    kv_fields = [("key", 64)]
    kv_fields += [(f"v{i}", 32) for i in range(val_words)]
    kv_fields += [("update", 8)]
    p.add_header(HeaderType("kv_t", kv_fields), "kv")
    p.deparser = ["eth", "ipv4", "udp", "ncp", "kv"]

    p.parser = [
        ParseState("start", ["eth"], "eth.ethertype", [(ETHERTYPE_IPV4, "parse_ipv4")]),
        ParseState("parse_ipv4", ["ipv4"], "ipv4.proto", [(IP_PROTO_UDP, "parse_udp")]),
        ParseState("parse_udp", ["udp"], "udp.dport", [(NCP_PORT, "parse_ncp")]),
        ParseState("parse_ncp", ["ncp"], "ncp.kernel_id", [(kernel_id, "parse_kv")]),
        ParseState("parse_kv", ["kv"]),
    ]

    # Registers: Valid, and one array per value word (Fig 1b's Read0/Read1
    # pattern; each array is then touched once per packet).
    p.add_register(RegisterArray("Valid", 8, cache_size))
    for i in range(val_words):
        p.add_register(RegisterArray(f"Val{i}", 32, cache_size))

    # -- actions -------------------------------------------------------------
    p.add_action(
        Action(
            "CacheHit",
            [
                PAssign("meta.hit", PConst(1, 8)),
                PAssign("meta.idx", PParam("idx", 16)),
            ],
            params=[("idx", 16)],
        )
    )
    p.add_action(Action("CacheMiss", [PAssign("meta.hit", PConst(0, 8))]))
    p.add_action(
        Action("ReadValid", [PRegRead("meta.valid", "Valid", PField("meta.idx"))])
    )
    p.add_action(
        Action("SetValid", [PRegWrite("Valid", PField("meta.idx"), PConst(1, 8))])
    )
    p.add_action(
        Action("ClearValid", [PRegWrite("Valid", PField("meta.idx"), PConst(0, 8))])
    )
    for i in range(val_words):
        p.add_action(
            Action(f"Read{i}", [PRegRead(f"kv.v{i}", f"Val{i}", PField("meta.idx"))])
        )
        p.add_action(
            Action(
                f"Write{i}",
                [PRegWrite(f"Val{i}", PField("meta.idx"), PField(f"kv.v{i}"))],
            )
        )
    p.add_action(
        Action(
            "classify",
            [
                PAssign(
                    "meta.is_get",
                    PBin("eq", PField("kv.update"), PConst(0, 8), 8),
                ),
                PAssign(
                    "meta.from_server",
                    PBin("eq", PField("ncp.from_node"), PConst(server_id, 16), 16),
                ),
            ],
        )
    )
    p.add_action(Action("reflect", [PAssign(META_FWD, PConst(FWD_REFLECT, 8))]))
    p.add_action(Action("drop_pkt", [PAssign(META_FWD, PConst(FWD_DROP, 8))]))
    p.add_action(
        Action(
            "reflect_rewrite",
            [
                PAssign("meta.swap_tmp", PField("ipv4.src")),
                PAssign("ipv4.src", PField("ipv4.dst")),
                PAssign("ipv4.dst", PField("meta.swap_tmp")),
                PAssign("meta.swap_tmp", PField("eth.src")),
                PAssign("eth.src", PField("eth.dst")),
                PAssign("eth.dst", PField("meta.swap_tmp")),
            ],
        )
    )
    p.add_action(
        Action(
            "ipv4_forward",
            [PAssign("meta.egress_port", PParam("port", 16))],
            params=[("port", 16)],
        )
    )
    p.add_action(Action("ipv4_miss", [PAssign(META_FWD, PConst(FWD_DROP, 8))]))

    # -- tables ---------------------------------------------------------------
    p.add_table(
        Table(
            "CacheLookup",
            keys=[("kv.key", "exact")],
            actions=["CacheHit"],
            default_action="CacheMiss",
            managed_by="control-plane",
            size=cache_size,
        )
    )
    p.add_table(
        Table(
            "CacheValid",
            keys=[],
            actions=["ReadValid"],
            default_action="ReadValid",
        )
    )
    p.add_table(
        Table(
            "ipv4_route",
            keys=[("ipv4.dst", "exact")],
            actions=["ipv4_forward"],
            default_action="ipv4_miss",
            managed_by="control-plane",
            size=1024,
        )
    )

    # -- control: the Fig 1b flow, extended with PUT/update handling ---------------
    get_hit_path = [Apply("CacheValid")] + [
        IfNode(
            PField("meta.valid"),
            [Do(f"Read{i}") for i in range(val_words)] + [Do("reflect")],
        )
    ]
    client_put = [IfNode(PField("meta.hit"), [Do("ClearValid")])]
    server_update = [
        IfNode(
            PField("meta.hit"),
            [Do(f"Write{i}") for i in range(val_words)] + [Do("SetValid")],
        ),
        Do("drop_pkt"),
    ]

    p.control = [
        IfNode(
            PField("valid.kv"),
            [
                Do("classify"),
                Apply("CacheLookup"),
                IfNode(
                    PBin(
                        "and",
                        PBin("eq", PField("meta.from_server"), PConst(0, 8), 8),
                        PBin("eq", PField("meta.is_get"), PConst(0, 8), 8),
                        8,
                    ),
                    client_put,
                    [
                        IfNode(
                            PBin("eq", PField("meta.from_server"), PConst(0, 8), 8),
                            [IfNode(PField("meta.hit"), get_hit_path)],
                            [
                                IfNode(
                                    PBin(
                                        "eq",
                                        PField("meta.is_get"),
                                        PConst(0, 8),
                                        8,
                                    ),
                                    server_update,
                                )
                            ],
                        )
                    ],
                ),
            ],
        ),
        IfNode(
            PBin("eq", PField(META_FWD), PConst(FWD_PASS, 8), 8),
            [Apply("ipv4_route")],
        ),
        IfNode(
            PBin("eq", PField(META_FWD), PConst(FWD_REFLECT, 8), 8),
            [Do("reflect_rewrite")],
        ),
    ]
    p.validate()
    return p


def handwritten_p4_source(cache_size: int = 256, val_words: int = 8) -> str:
    """The P4 text a programmer would maintain for this baseline."""
    return print_program(build_netcache_program(cache_size, val_words))
