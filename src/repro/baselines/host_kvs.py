"""Host-only KVS baseline: every query goes to the storage server.

Same topology and wire format as :class:`repro.apps.kvs_cache.KvsCluster`
but the ToR is a plain forwarding switch -- no in-network cache. This is
the system NetCache (and Fig 5) improves on: all load lands on the
server, and every GET pays the full client->server RTT plus the server's
service time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.kvs_cache import OpRecord
from repro.apps.workloads import value_words
from repro.baselines.host_allreduce import l3_forwarding_program
from repro.ncp.wire import ChunkLayout, KernelLayout, decode_frame, encode_frame
from repro.net.network import Network

KVS_XFER_ID = 0x7F01


class HostOnlyKvs:
    def __init__(
        self,
        n_clients: int = 1,
        val_words: int = 8,
        n_keys: int = 1024,
        bandwidth: float = 10e9,
        latency: float = 5e-6,
        server_delay: float = 50e-6,
    ):
        self.val_words = val_words
        self.server_delay = server_delay
        self.net = Network()
        self.clients = [self.net.add_host(f"c{i}") for i in range(n_clients)]
        self.server = self.net.add_host("server")
        self.net.add_python_switch("tor", l3_forwarding_program)
        for host in self.clients + [self.server]:
            self.net.add_link(host.name, "tor", latency=latency, bandwidth=bandwidth)
        self.net.compute_routes()
        self.layout = KernelLayout(
            KVS_XFER_ID,
            "kv_xfer",
            [
                ChunkLayout("key", 1, 64, signed=False),
                ChunkLayout("val", val_words, 32, signed=False),
                ChunkLayout("update", 1, 8, signed=False),
            ],
        )
        self.store: Dict[int, List[int]] = {
            k: value_words(k, val_words) for k in range(n_keys)
        }
        self.server_ops = 0
        self.records: List[OpRecord] = []
        self._pending: Dict[Tuple[int, int], OpRecord] = {}
        self._client_seq = [0] * n_clients
        self.server.receiver = self._server_frame
        for i, client in enumerate(self.clients):
            client.receiver = self._make_client_receiver(i)

    # -- server -----------------------------------------------------------------

    def _server_frame(self, data: bytes) -> None:
        frame = decode_frame(data, {KVS_XFER_ID: self.layout})
        self.server_ops += 1
        key = frame.chunks[0][0]
        update = bool(frame.chunks[2][0])
        client_node = frame.from_node

        def work() -> None:
            if update:
                self.store[key] = list(frame.chunks[1])
            value = self.store.get(key, [0] * self.val_words)
            response = encode_frame(
                self.layout,
                src_node=self.server.node_id,
                dst_node=client_node,
                seq=frame.seq,
                chunks=[[key], value, [0]],
            )
            self.server.transmit(response, client_node)

        self.net.sim.schedule(
            self.server_delay, work, label=f"host;{self.server.name};kvs-server"
        )

    # -- clients -----------------------------------------------------------------

    def _make_client_receiver(self, index: int):
        def receive(data: bytes) -> None:
            frame = decode_frame(data, {KVS_XFER_ID: self.layout})
            record = self._pending.pop((index, frame.seq), None)
            if record is None:
                return
            record.completed = self.net.sim.now()
            record.served_by_cache = False
            record.value = list(frame.chunks[1])
            self.records.append(record)

        return receive

    def get(self, client: int, key: int) -> None:
        self._issue(client, key, False, [0] * self.val_words)

    def put(self, client: int, key: int, value: Sequence[int]) -> None:
        self._issue(client, key, True, list(value))

    def _issue(self, client: int, key: int, update: bool, value: List[int]) -> None:
        seq = self._client_seq[client]
        self._client_seq[client] = (seq + 1) & 0xFFFFFFFF
        record = OpRecord("PUT" if update else "GET", key, self.net.sim.now())
        self._pending[(client, seq)] = record
        frame = encode_frame(
            self.layout,
            src_node=self.clients[client].node_id,
            dst_node=self.server.node_id,
            seq=seq,
            chunks=[[key], value, [1 if update else 0]],
        )
        self.clients[client].transmit(frame, self.server.node_id)

    # -- driving / metrics ----------------------------------------------------------

    def run_workload(self, client: int, keys: Sequence[int]) -> List[OpRecord]:
        start = len(self.records)
        for key in keys:
            self.get(client, key)
        self.net.run()
        return self.records[start:]

    def mean_latency(self) -> Optional[float]:
        if not self.records:
            return None
        return sum(r.latency for r in self.records) / len(self.records)
