"""Baselines the reproduction compares against: hand-written P4 (Fig 1b)
and host-only implementations of the paper's use cases."""

from repro.baselines.host_allreduce import (
    ParameterServerAllReduce,
    RingAllReduce,
    l3_forwarding_program,
)
from repro.baselines.host_kvs import HostOnlyKvs
from repro.baselines.p4_netcache import build_netcache_program, handwritten_p4_source

__all__ = [
    "HostOnlyKvs",
    "ParameterServerAllReduce",
    "RingAllReduce",
    "build_netcache_program",
    "handwritten_p4_source",
    "l3_forwarding_program",
]
