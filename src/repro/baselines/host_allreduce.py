"""Host-only AllReduce baselines (no in-network compute).

Two classical schemes run over the same simulated star topology, with
the ToR switch doing plain L3 forwarding (a :class:`PythonSwitchNode`
running :func:`l3_forwarding_program`):

* **parameter server** -- every worker ships its array to one PS host,
  which sums and unicasts the result back to each worker. The PS's
  single link carries ~2*N*size bytes: the incast bottleneck in-network
  aggregation removes.
* **ring all-reduce** -- bandwidth-optimal host-side scheme: 2(N-1)
  chunked steps around a logical ring; each worker link carries
  ~2*size bytes, but the scheme needs 2(N-1) serialized steps, so
  latency grows with N.

Both reuse the NCP frame codec purely as a convenient chunked wire
format (a standalone transfer layout with its own kernel id); the switch
executes nothing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import SimulationError
from repro.ncp.wire import (
    ChunkLayout,
    ETH_FIELDS,
    IPV4_FIELDS,
    KernelLayout,
    decode_frame,
    encode_frame,
)
from repro.net.network import Network
from repro.net.node import HostNode, PythonSwitchNode
from repro.util.bits import unpack_fields

#: pseudo kernel id for plain (non-INC) transfers
XFER_KERNEL_ID = 0x7F00


def l3_forwarding_program(data: bytes, in_port: int, node: PythonSwitchNode):
    """A plain L3 switch: parse Ethernet+IPv4, next-hop by routes table."""
    try:
        eth, rest = unpack_fields(ETH_FIELDS, data)
        ipv4, _ = unpack_fields(IPV4_FIELDS, rest)
    except Exception:
        return []
    dst_node = ipv4["dst"] & 0xFFFF
    port = node.routes.get(dst_node)
    if port is None:
        return []
    return [(port, data)]


def transfer_layout(window_len: int) -> KernelLayout:
    return KernelLayout(
        XFER_KERNEL_ID,
        "xfer",
        [ChunkLayout("data", window_len, 32, signed=True)],
        ext_fields=[("tag", 32, False)],
    )


class _Endpoint:
    """A host endpoint exchanging chunked int32 arrays."""

    def __init__(self, node: HostNode, layout: KernelLayout):
        self.node = node
        self.layout = layout
        self.on_window = None
        node.receiver = self._receive

    def _receive(self, data: bytes) -> None:
        frame = decode_frame(data, {self.layout.kernel_id: self.layout})
        if self.on_window is not None:
            self.on_window(frame)

    def send_array(self, array: Sequence[int], dst: int, tag: int = 0) -> None:
        w = self.layout.chunks[0].count
        if len(array) % w:
            raise SimulationError("array not window-aligned")
        total = len(array) // w
        for seq in range(total):
            self.send_window(array[seq * w : (seq + 1) * w], dst, seq, tag, seq == total - 1)

    def send_window(
        self, chunk: Sequence[int], dst: int, seq: int, tag: int = 0, last: bool = False
    ) -> None:
        frame = encode_frame(
            self.layout,
            src_node=self.node.node_id,
            dst_node=dst,
            seq=seq,
            chunks=[list(chunk)],
            ext_values={"tag": tag},
            last=last,
        )
        self.node.transmit(frame, dst)


def _wrap32(v: int) -> int:
    return ((v + 2**31) % 2**32) - 2**31


class ParameterServerAllReduce:
    """N workers + 1 PS behind a plain forwarding ToR."""

    def __init__(
        self,
        n_workers: int,
        data_len: int,
        window_len: int = 8,
        bandwidth: float = 10e9,
        latency: float = 1e-6,
    ):
        if data_len % window_len:
            raise SimulationError("data_len must be a multiple of window_len")
        self.n_workers = n_workers
        self.data_len = data_len
        self.window_len = window_len
        self.net = Network()
        self.workers = [self.net.add_host(f"w{i}") for i in range(n_workers)]
        self.ps = self.net.add_host("ps")
        self.net.add_python_switch("tor", l3_forwarding_program)
        for host in self.workers + [self.ps]:
            self.net.add_link(host.name, "tor", latency=latency, bandwidth=bandwidth)
        self.net.compute_routes()
        self.layout = transfer_layout(window_len)
        self.worker_eps = [_Endpoint(w, self.layout) for w in self.workers]
        self.ps_ep = _Endpoint(self.ps, self.layout)

    def run(self, arrays: Sequence[Sequence[int]]) -> Tuple[List[List[int]], float]:
        n, length, w = self.n_workers, self.data_len, self.window_len
        slots = length // w
        sums = [0] * length
        contrib = [0] * slots
        results = [[0] * length for _ in range(n)]
        done = [0] * n

        def ps_window(frame) -> None:
            base = frame.seq * w
            for i, v in enumerate(frame.chunks[0]):
                sums[base + i] = _wrap32(sums[base + i] + v)
            contrib[frame.seq] += 1
            if contrib[frame.seq] == n:
                for worker in range(n):
                    self.ps_ep.send_window(
                        sums[base : base + w],
                        self.workers[worker].node_id,
                        frame.seq,
                        last=frame.seq == slots - 1,
                    )

        def make_worker_handler(idx: int):
            def handler(frame) -> None:
                base = frame.seq * w
                results[idx][base : base + w] = frame.chunks[0]
                if frame.last:
                    done[idx] = 1

            return handler

        self.ps_ep.on_window = ps_window
        for i, ep in enumerate(self.worker_eps):
            ep.on_window = make_worker_handler(i)

        start = self.net.sim.now()
        for i, array in enumerate(arrays):
            self.worker_eps[i].send_array(list(array), self.ps.node_id)
        self.net.run()
        if not all(done):
            raise SimulationError("parameter-server all-reduce did not complete")
        return results, self.net.sim.now() - start


class RingAllReduce:
    """Bandwidth-optimal host ring all-reduce behind a plain ToR.

    Classic two-phase schedule: N-1 reduce-scatter steps then N-1
    all-gather steps, each worker exchanging one 1/N-sized segment per
    step with its ring neighbor. Steps are synchronized per segment via
    window tags.
    """

    def __init__(
        self,
        n_workers: int,
        data_len: int,
        window_len: int = 8,
        bandwidth: float = 10e9,
        latency: float = 1e-6,
    ):
        if n_workers < 2:
            raise SimulationError("ring all-reduce needs >= 2 workers")
        if data_len % (n_workers * window_len):
            raise SimulationError(
                "data_len must be a multiple of n_workers * window_len"
            )
        self.n = n_workers
        self.data_len = data_len
        self.window_len = window_len
        self.net = Network()
        self.workers = [self.net.add_host(f"w{i}") for i in range(n_workers)]
        self.net.add_python_switch("tor", l3_forwarding_program)
        for host in self.workers:
            self.net.add_link(host.name, "tor", latency=latency, bandwidth=bandwidth)
        self.net.compute_routes()
        self.layout = transfer_layout(window_len)
        self.eps = [_Endpoint(w, self.layout) for w in self.workers]

    def run(self, arrays: Sequence[Sequence[int]]) -> Tuple[List[List[int]], float]:
        n, w = self.n, self.window_len
        seg_len = self.data_len // n
        seg_windows = seg_len // w
        buffers = [list(map(int, a)) for a in arrays]
        # step state per worker: how many steps completed
        steps_done = [0] * n
        total_steps = 2 * (n - 1)
        pending_windows = [0] * n

        def segment_of(step: int, rank: int, gather: bool) -> int:
            # standard ring schedule
            if not gather:
                return (rank - step + n) % n
            return (rank - step + 1 + n) % n

        def send_step(rank: int) -> None:
            step = steps_done[rank]
            if step >= total_steps:
                return
            gather = step >= n - 1
            local_step = step if not gather else step - (n - 1)
            seg = segment_of(local_step, rank, gather)
            base = seg * seg_len
            dst = self.workers[(rank + 1) % n].node_id
            pending_windows[(rank + 1) % n] += seg_windows
            for i in range(seg_windows):
                chunk = buffers[rank][base + i * w : base + (i + 1) * w]
                # tag encodes (step, segment) so the receiver can fold it in
                tag = (step << 16) | seg
                self.eps[rank].send_window(
                    chunk, dst, seq=base // w + i, tag=tag, last=i == seg_windows - 1
                )

        def make_handler(rank: int):
            def handler(frame) -> None:
                step = frame.ext["tag"] >> 16
                gather = step >= n - 1
                base = frame.seq * w
                if not gather:
                    for i, v in enumerate(frame.chunks[0]):
                        buffers[rank][base + i] = _wrap32(buffers[rank][base + i] + v)
                else:
                    buffers[rank][base : base + w] = frame.chunks[0]
                pending_windows[rank] -= 1
                if frame.last:
                    steps_done[rank] = step + 1
                    send_step(rank)

            return handler

        for rank, ep in enumerate(self.eps):
            ep.on_window = make_handler(rank)
        start = self.net.sim.now()
        for rank in range(n):
            send_step(rank)
        self.net.run()
        if any(s != total_steps for s in steps_done):
            raise SimulationError(
                f"ring all-reduce incomplete: steps {steps_done}"
            )
        return buffers, self.net.sim.now() - start
