"""The match-action pipeline interpreter.

Executes a :class:`P4Program`'s control block over a PHV, bmv2-style:
expressions are evaluated by the ALU model with fixed-width wrapping,
tables match exact/ternary keys, actions run primitives in order, and
register arrays provide stateful memory. Collects per-table/per-action
statistics for the benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import PisaError
from repro.p4.model import (
    Apply,
    ControlNode,
    Do,
    IfNode,
    P4Program,
    PAssign,
    PBin,
    PConst,
    PExpr,
    PField,
    PMux,
    PParam,
    PRegRead,
    PRegWrite,
    PUn,
    Table,
    TableEntry,
)
from repro.pisa.phv import Phv
from repro.util import intops


class RegisterState:
    """Backing store for all register arrays of one program instance."""

    def __init__(self, program: P4Program):
        self.program = program
        self.arrays: Dict[str, List[int]] = {}
        for name, reg in program.registers.items():
            initial = getattr(reg, "initial", None)
            values = [0] * reg.size
            if initial:
                for i, v in enumerate(initial[: reg.size]):
                    values[i] = intops.wrap_unsigned(int(v), reg.bits)
            self.arrays[name] = values

    def read(self, name: str, index: int) -> int:
        array = self._array(name, index)
        return array[index]

    def write(self, name: str, index: int, value: int) -> None:
        array = self._array(name, index)
        reg = self.program.registers[name]
        array[index] = intops.wrap_unsigned(int(value), reg.bits)

    def _array(self, name: str, index: int) -> List[int]:
        if name not in self.arrays:
            raise PisaError(f"unknown register array {name!r}")
        array = self.arrays[name]
        if not 0 <= index < len(array):
            raise PisaError(
                f"register {name}: index {index} out of range [0, {len(array)})"
            )
        return array


class PipelineStats:
    def __init__(self) -> None:
        self.packets = 0
        self.table_hits: Dict[str, int] = {}
        self.table_misses: Dict[str, int] = {}
        self.action_runs: Dict[str, int] = {}
        self.register_reads = 0
        self.register_writes = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "packets": self.packets,
            "table_hits": dict(self.table_hits),
            "table_misses": dict(self.table_misses),
            "action_runs": dict(self.action_runs),
            "register_reads": self.register_reads,
            "register_writes": self.register_writes,
        }


class Pipeline:
    def __init__(self, program: P4Program, registers: Optional[RegisterState] = None):
        self.program = program
        self.registers = registers or RegisterState(program)
        self.stats = PipelineStats()
        #: per-packet trace observer (e.g. repro.obs.SwitchPacketTrace),
        #: set around one run() by the switch device; None -> no tracing
        self.observer = None
        #: tables matched (hit) by the most recent run() -- the per-hop
        #: "tables" field of an INT record (repro.obs.int)
        self.last_tables_matched = 0

    # -- expression evaluation ------------------------------------------------

    def eval_expr(self, expr: PExpr, phv: Phv, args: Dict[str, int]) -> int:
        if isinstance(expr, PConst):
            return intops.wrap_unsigned(expr.value, expr.bits)
        if isinstance(expr, PField):
            return phv.read(expr.ref)
        if isinstance(expr, PParam):
            if expr.name not in args:
                raise PisaError(f"unbound action parameter {expr.name!r}")
            return intops.wrap_unsigned(args[expr.name], expr.bits)
        if isinstance(expr, PBin):
            return self._eval_bin(expr, phv, args)
        if isinstance(expr, PMux):
            if self.eval_expr(expr.cond, phv, args):
                return intops.wrap_unsigned(self.eval_expr(expr.a, phv, args), expr.bits)
            return intops.wrap_unsigned(self.eval_expr(expr.b, phv, args), expr.bits)
        if isinstance(expr, PUn):
            operand = self.eval_expr(expr.operand, phv, args)
            if expr.op == "neg":
                return intops.wrap_unsigned(-operand, expr.bits)
            if expr.op == "not":
                return intops.wrap_unsigned(~operand, expr.bits)
            if expr.op == "lnot":
                return int(operand == 0)
            raise PisaError(f"unknown unary ALU op {expr.op!r}")
        raise PisaError(f"cannot evaluate {expr!r}")

    def _eval_bin(self, expr: PBin, phv: Phv, args: Dict[str, int]) -> int:
        a = self.eval_expr(expr.lhs, phv, args)
        b = self.eval_expr(expr.rhs, phv, args)
        bits = expr.bits
        op = expr.op
        if op in ("eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"):
            if op[0] == "s":
                sa, sb = intops.wrap_signed(a, bits), intops.wrap_signed(b, bits)
            else:
                sa, sb = a, b
            return int(
                {
                    "eq": sa == sb,
                    "ne": sa != sb,
                    "ult": sa < sb,
                    "ule": sa <= sb,
                    "ugt": sa > sb,
                    "uge": sa >= sb,
                    "slt": sa < sb,
                    "sle": sa <= sb,
                    "sgt": sa > sb,
                    "sge": sa >= sb,
                }[op]
            )
        if op == "add":
            raw = a + b
        elif op == "sub":
            raw = a - b
        elif op == "mul":
            raw = a * b
        elif op == "and":
            raw = a & b
        elif op == "or":
            raw = a | b
        elif op == "xor":
            raw = a ^ b
        elif op == "shl":
            raw = a << intops.shift_amount(b, bits)
        elif op == "lshr":
            raw = a >> intops.shift_amount(b, bits)
        elif op == "ashr":
            raw = intops.wrap_signed(a, bits) >> intops.shift_amount(b, bits)
        else:
            raise PisaError(f"unknown ALU op {op!r}")
        return intops.wrap_unsigned(raw, bits)

    # -- actions ---------------------------------------------------------------

    def run_action(self, name: str, phv: Phv, args: Sequence[int] = ()) -> None:
        action = self.program.actions.get(name)
        if action is None:
            raise PisaError(f"unknown action {name!r}")
        if len(args) != len(action.params):
            raise PisaError(
                f"action {name}: expected {len(action.params)} args, "
                f"got {len(args)}"
            )
        bound = {pname: value for (pname, _), value in zip(action.params, args)}
        self.stats.action_runs[name] = self.stats.action_runs.get(name, 0) + 1
        for prim in action.primitives:
            if isinstance(prim, PAssign):
                phv.write(prim.dst, self.eval_expr(prim.expr, phv, bound))
            elif isinstance(prim, PRegRead):
                index = self.eval_expr(prim.index, phv, bound)
                phv.write(prim.dst, self.registers.read(prim.reg, index))
                self.stats.register_reads += 1
            elif isinstance(prim, PRegWrite):
                index = self.eval_expr(prim.index, phv, bound)
                value = self.eval_expr(prim.expr, phv, bound)
                self.registers.write(prim.reg, index, value)
                self.stats.register_writes += 1
            else:
                raise PisaError(f"unknown primitive {prim!r}")

    # -- tables ------------------------------------------------------------------

    def apply_table(self, name: str, phv: Phv) -> bool:
        """Apply a table; returns True on hit."""
        table = self.program.tables.get(name)
        if table is None:
            raise PisaError(f"unknown table {name!r}")
        key = [phv.read(ref) for ref, _ in table.keys]
        entry = self._match(table, key)
        if entry is not None:
            self.stats.table_hits[name] = self.stats.table_hits.get(name, 0) + 1
            self.last_tables_matched += 1
            if self.observer is not None:
                self.observer.table(name, True, entry.action)
            self.run_action(entry.action, phv, entry.args)
            return True
        self.stats.table_misses[name] = self.stats.table_misses.get(name, 0) + 1
        if self.observer is not None:
            self.observer.table(name, False, table.default_action)
        self.run_action(table.default_action, phv, table.default_args)
        return False

    @staticmethod
    def _match(table: Table, key: List[int]) -> Optional[TableEntry]:
        best: Optional[TableEntry] = None
        for entry in table.entries:
            if len(entry.match) != len(key):
                raise PisaError(f"table {table.name}: malformed entry {entry!r}")
            hit = True
            for (ref_kind, pattern, value) in zip(table.keys, entry.match, key):
                kind = ref_kind[1]
                if kind == "exact":
                    if pattern != value:
                        hit = False
                        break
                else:  # ternary
                    pvalue, pmask = pattern if isinstance(pattern, tuple) else (pattern, -1)
                    if (value & pmask) != (pvalue & pmask):
                        hit = False
                        break
            if hit and (best is None or entry.priority > best.priority):
                best = entry
        return best

    # -- control -------------------------------------------------------------------

    def run(self, phv: Phv) -> None:
        self.stats.packets += 1
        self.last_tables_matched = 0
        self._run_nodes(self.program.control, phv)

    def _run_nodes(self, nodes: Sequence[ControlNode], phv: Phv) -> None:
        for node in nodes:
            if isinstance(node, Apply):
                self.apply_table(node.table, phv)
            elif isinstance(node, Do):
                if self.observer is not None:
                    self.observer.action(node.action)
                self.run_action(node.action, phv)
            elif isinstance(node, IfNode):
                if self.eval_expr(node.cond, phv, {}):
                    self._run_nodes(node.then_nodes, phv)
                else:
                    self._run_nodes(node.else_nodes, phv)
            else:
                raise PisaError(f"unknown control node {node!r}")
