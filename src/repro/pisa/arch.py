"""PISA architecture profiles.

Chip constraints are what make the paper's backend accept/reject step
real (S5: "chip constraints are not publicly available... The final P4
program is given to a P4 backend to eventually accept/reject it").
A profile captures the budget a target chip gives a program; the
:mod:`repro.p4.backend` checks generated programs against one.

Two built-in profiles:

* :data:`BMV2` -- a software-switch-like target: effectively unlimited
  stages and PHV, general multiplication, any number of accesses to a
  register array per packet. This is the prototype target (paper S6
  scopes the early prototype to a software/UDP environment).
* :data:`TOFINO_LIKE` -- a hardware-flavoured target: 12 stages, a small
  PHV, **one access per register array per packet** (the constraint that
  forces NetCache/SwitchML-style value splitting across arrays), and no
  general multiply in the ALU.
"""

from __future__ import annotations

from typing import Optional


class ArchProfile:
    def __init__(
        self,
        name: str,
        max_stages: int,
        phv_bits: int,
        sram_bytes: int,
        max_tables: int,
        max_table_entries: int,
        max_actions: int,
        max_register_accesses_per_array: int,
        supports_mul: bool,
        max_parser_states: int = 32,
    ):
        self.name = name
        self.max_stages = max_stages
        self.phv_bits = phv_bits
        self.sram_bytes = sram_bytes
        self.max_tables = max_tables
        self.max_table_entries = max_table_entries
        self.max_actions = max_actions
        self.max_register_accesses_per_array = max_register_accesses_per_array
        self.supports_mul = supports_mul
        self.max_parser_states = max_parser_states

    def __repr__(self) -> str:
        return f"ArchProfile({self.name})"


BMV2 = ArchProfile(
    name="bmv2",
    max_stages=512,
    phv_bits=1 << 20,
    sram_bytes=1 << 26,  # 64 MiB
    max_tables=512,
    max_table_entries=1 << 20,
    max_actions=4096,
    max_register_accesses_per_array=1 << 16,
    supports_mul=True,
)

TOFINO_LIKE = ArchProfile(
    name="tofino-like",
    max_stages=12,
    phv_bits=4096,
    sram_bytes=12 * 128 * 1024,
    max_tables=96,
    max_table_entries=1 << 16,
    max_actions=512,
    max_register_accesses_per_array=1,
    supports_mul=False,
)

PROFILES = {p.name: p for p in (BMV2, TOFINO_LIKE)}


def profile_by_name(name: Optional[str]) -> ArchProfile:
    if name is None:
        return BMV2
    if name not in PROFILES:
        raise KeyError(f"unknown architecture profile {name!r}")
    return PROFILES[name]
