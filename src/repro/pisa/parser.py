"""The programmable packet parser and deparser.

Bit-accurate: header fields are extracted most-significant-bit first from
the byte stream (network order), exactly as a PISA parser TCAM would, and
the deparser re-serializes every valid header followed by any unparsed
payload bytes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PisaError
from repro.p4.model import P4Program, ParseState
from repro.pisa.phv import Phv
from repro.util.bits import BitReader, BitWriter


class PacketParser:
    """Executes the program's parse graph over raw bytes into a PHV."""

    MAX_STATES = 64  # guards against parse-graph cycles

    def __init__(self, program: P4Program):
        self.program = program
        self._states = {s.name: s for s in program.parser}
        if program.parser and "start" not in self._states:
            raise PisaError("parse graph has no 'start' state")

    def parse(self, data: bytes) -> Phv:
        phv = Phv(self.program)
        reader = BitReader(data)
        if not self.program.parser:
            phv.payload_rest = data
            return phv
        state: Optional[ParseState] = self._states["start"]
        steps = 0
        while state is not None:
            steps += 1
            if steps > self.MAX_STATES:
                raise PisaError("parse graph did not terminate")
            for instance in state.extracts:
                self._extract(phv, reader, instance)
            next_name = state.default_next
            if state.select_field is not None:
                key = phv.read(state.select_field)
                for value, target in state.transitions:
                    if key == value:
                        next_name = target
                        break
            if next_name in ("accept", "reject"):
                if next_name == "reject":
                    raise PisaError("parser rejected packet")
                break
            state = self._states.get(next_name)
            if state is None:
                raise PisaError(f"parser: unknown state {next_name!r}")
        phv.payload_rest = reader.rest()
        return phv

    def _extract(self, phv: Phv, reader: BitReader, instance: str) -> None:
        htype = self.program.instance_type(instance)
        if reader.bits_left < htype.bit_width:
            raise PisaError(
                f"packet too short for header {instance!r}: need "
                f"{htype.bit_width} bits, have {reader.bits_left}"
            )
        phv.set_valid(instance)
        for field in htype.fields:
            phv.fields[f"{instance}.{field.name}"] = reader.read(field.bits)


class Deparser:
    """Re-serializes valid headers (program deparser order) + payload."""

    def __init__(self, program: P4Program):
        self.program = program

    def deparse(self, phv: Phv) -> bytes:
        writer = BitWriter()
        for instance in self.program.deparser:
            if not phv.is_valid(instance):
                continue
            htype = self.program.instance_type(instance)
            for field in htype.fields:
                writer.write(
                    phv.fields.get(f"{instance}.{field.name}", 0), field.bits
                )
        return writer.to_bytes() + phv.payload_rest
