"""The Packet Header Vector (PHV).

The PHV is PISA's per-packet working set (Fig 1a): all extracted header
fields plus user/architecture metadata. Fields are addressed with dotted
references (``"ncp.seq"``, ``"meta.v7"``); header instances carry a
validity bit, and bytes beyond the parsed headers ride along untouched
(the unparsed payload).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import PisaError
from repro.p4.model import P4Program
from repro.util import intops


class Phv:
    def __init__(self, program: P4Program):
        self.program = program
        self.fields: Dict[str, int] = {}
        self.valid: Dict[str, bool] = {inst: False for inst in program.instances}
        self.payload_rest: bytes = b""
        # Architecture metadata.
        self.ingress_port: int = 0
        for name in program.metadata:
            self.fields[f"meta.{name}"] = 0

    def set_valid(self, instance: str, valid: bool = True) -> None:
        if instance not in self.valid:
            raise PisaError(f"unknown header instance {instance!r}")
        self.valid[instance] = valid
        if valid:
            htype = self.program.instance_type(instance)
            for field in htype.fields:
                self.fields.setdefault(f"{instance}.{field.name}", 0)

    def is_valid(self, instance: str) -> bool:
        return self.valid.get(instance, False)

    def read(self, ref: str) -> int:
        if ref.startswith("valid."):
            return int(self.is_valid(ref.split(".", 1)[1]))
        if ref not in self.fields:
            container = ref.split(".", 1)[0]
            if container != "meta" and not self.is_valid(container):
                raise PisaError(f"read of field {ref!r} in invalid header")
            raise PisaError(f"read of unknown field {ref!r}")
        return self.fields[ref]

    def write(self, ref: str, value: int) -> None:
        bits = self.program.field_bits(ref)
        self.fields[ref] = intops.wrap_unsigned(int(value), bits)

    def clone(self) -> "Phv":
        new = Phv(self.program)
        new.fields = dict(self.fields)
        new.valid = dict(self.valid)
        new.payload_rest = self.payload_rest
        new.ingress_port = self.ingress_port
        return new
