"""A complete PISA switch device: parser -> pipeline -> deparser, with a
control-plane interface.

This is the per-switch runtime object the network simulator hosts. It
owns the register state and table entries (both persist across packets)
and exposes the control-plane operations libncrt's controller uses:
writing ``_ctrl_`` registers, and inserting/removing ``ncl::Map`` and
routing entries.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import PisaError
from repro.p4.model import (
    FWD_PASS,
    META_FWD,
    META_FWD_LABEL,
    NO_LABEL,
    P4Program,
    TableEntry,
)
from repro.pisa.parser import Deparser, PacketParser
from repro.pisa.phv import Phv
from repro.pisa.pipeline import Pipeline, RegisterState

#: Forwarding verdict names, index-aligned with the META_FWD encoding.
FWD_NAMES = ("pass", "drop", "bcast", "reflect")


class SwitchResult:
    """Outcome of processing one packet."""

    __slots__ = ("verdict", "label_id", "data", "phv", "tables_matched")

    def __init__(
        self,
        verdict: str,
        label_id: Optional[int],
        data: bytes,
        phv: Phv,
        tables_matched: int = 0,
    ):
        self.verdict = verdict  # 'pass' | 'drop' | 'bcast' | 'reflect'
        self.label_id = label_id  # AND node id for labelled _pass, else None
        self.data = data  # deparsed output packet
        self.phv = phv
        #: tables hit during the pipeline run (stamped into INT records)
        self.tables_matched = tables_matched

    def __repr__(self) -> str:
        label = f"->{self.label_id}" if self.label_id is not None else ""
        return f"SwitchResult({self.verdict}{label}, {len(self.data)}B)"


class PisaSwitch:
    def __init__(self, program: P4Program, name: str = "switch"):
        program.validate()
        self.name = name
        self.program = program
        self.registers = RegisterState(program)
        self.pipeline = Pipeline(program, self.registers)
        self.parser = PacketParser(program)
        self.deparser = Deparser(program)

    # -- data plane -----------------------------------------------------------

    def process(
        self, data: bytes, ingress_port: int = 0, observer=None
    ) -> SwitchResult:
        if observer is not None:
            observer.parse(len(data))
        phv = self.parser.parse(data)
        phv.ingress_port = ingress_port
        phv.write(META_FWD, FWD_PASS)
        phv.write(META_FWD_LABEL, NO_LABEL)
        self.pipeline.observer = observer
        try:
            self.pipeline.run(phv)
        finally:
            self.pipeline.observer = None
        verdict_code = phv.read(META_FWD)
        if verdict_code >= len(FWD_NAMES):
            raise PisaError(f"corrupt forwarding decision {verdict_code}")
        label = phv.read(META_FWD_LABEL)
        out = self.deparser.deparse(phv)
        return SwitchResult(
            FWD_NAMES[verdict_code],
            None if label == NO_LABEL else label,
            out,
            phv,
            tables_matched=self.pipeline.last_tables_matched,
        )

    # -- control plane -----------------------------------------------------------

    def ctrl_register_write(
        self, register: str, value: int, index: int = 0
    ) -> None:
        """Control-plane write into a register array (``_ctrl_`` backing)."""
        self.registers.write(register, index, value)

    def ctrl_register_read(self, register: str, index: int = 0) -> int:
        return self.registers.read(register, index)

    def table_insert(
        self,
        table: str,
        match: Sequence,
        action: str,
        args: Sequence[int] = (),
        priority: int = 0,
    ) -> None:
        tbl = self.program.tables.get(table)
        if tbl is None:
            raise PisaError(f"unknown table {table!r}")
        if action not in tbl.actions:
            raise PisaError(f"table {table}: action {action!r} not allowed")
        # Replace an existing exact-match entry with the same key.
        tbl.remove_entries(lambda e: list(e.match) == list(match))
        tbl.add_entry(TableEntry(list(match), action, list(args), priority))

    def table_delete(self, table: str, match: Sequence) -> int:
        tbl = self.program.tables.get(table)
        if tbl is None:
            raise PisaError(f"unknown table {table!r}")
        return tbl.remove_entries(lambda e: list(e.match) == list(match))

    def table_entries(self, table: str) -> List[TableEntry]:
        tbl = self.program.tables.get(table)
        if tbl is None:
            raise PisaError(f"unknown table {table!r}")
        return list(tbl.entries)

    @property
    def stats(self):
        return self.pipeline.stats
