"""PISA switch simulator: PHV, parser, match-action pipeline, deparser."""

from repro.pisa.arch import BMV2, TOFINO_LIKE, ArchProfile, profile_by_name
from repro.pisa.parser import Deparser, PacketParser
from repro.pisa.phv import Phv
from repro.pisa.pipeline import Pipeline, PipelineStats, RegisterState
from repro.pisa.switch_dev import PisaSwitch, SwitchResult

__all__ = [
    "BMV2",
    "TOFINO_LIKE",
    "ArchProfile",
    "Deparser",
    "PacketParser",
    "Phv",
    "Pipeline",
    "PipelineStats",
    "PisaSwitch",
    "RegisterState",
    "SwitchResult",
    "profile_by_name",
]
