"""The paper's use cases as runnable applications."""

from repro.apps.allreduce import ALLREDUCE_NCL, AllReduceJob
from repro.apps.dedup import DEDUP_NCL, DedupCluster
from repro.apps.kvs_cache import KVS_NCL, KvsCluster
from repro.apps.telemetry import TELEMETRY_NCL, TelemetryCluster

__all__ = [
    "ALLREDUCE_NCL",
    "AllReduceJob",
    "DEDUP_NCL",
    "DedupCluster",
    "KVS_NCL",
    "KvsCluster",
    "TELEMETRY_NCL",
    "TelemetryCluster",
]
