"""In-network duplicate suppression.

The third runnable application: a switch drops duplicate windows (same
message id) before they waste the downstream link -- the kind of "simple
data transformation" offload the paper's S1 motivates (and a natural fit
for at-least-once senders that retransmit aggressively). It exercises
the ``ncl::BloomFilter`` stdlib container (paper S3.2: "fast MAT lookups
can be exposed as Maps or bloom-filters") and switch-side counters.

Note the false-positive caveat is inherited faithfully: a Bloom filter
can drop a *non*-duplicate with small probability, so the example sizes
the filter to the stream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.nclc import Compiler, WindowConfig
from repro.runtime import Cluster

DEDUP_NCL = r"""
// In-network duplicate suppression with a Bloom filter.
_net_ _at_("s1") ncl::BloomFilter<FILTER_BITS, 3> Seen;
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _at_("s1") unsigned dups[1] = {0};

_net_ _out_ void dedup(uint64_t id, unsigned *payload) {
  total[0] += 1;
  if (ncl::bf_query(Seen, id)) {
    dups[0] += 1;
    _drop();
  } else {
    ncl::bf_insert(Seen, id);
  }
}

_net_ _in_ void deliver(uint64_t id, unsigned *payload,
                        _ext_ unsigned *received, _ext_ unsigned *count) {
  received[count[0] & 0xFFFF] = payload[0];
  count[0] += 1;
}
"""

DEDUP_AND = """
host sender
host sink
switch s1
link sender s1
link s1 sink
"""


class DedupCluster:
    """sender -> dedup switch -> sink."""

    def __init__(
        self,
        filter_bits: int = 4096,
        payload_words: int = 4,
        profile: Optional[str] = None,
    ):
        self.payload_words = payload_words
        self.program = Compiler(profile=profile).compile(
            DEDUP_NCL,
            and_text=DEDUP_AND,
            windows={"dedup": WindowConfig(mask=(1, payload_words))},
            defines={"FILTER_BITS": filter_bits},
        )
        self.cluster = Cluster.from_program(self.program)
        self.sender = self.cluster.host("sender")
        self.sink = self.cluster.host("sink")
        self.received: List[int] = [0] * 65536
        self.count = [0]
        self.sink.register_in("deliver", [self.received, self.count])

    def send_stream(self, message_ids: Sequence[int]) -> None:
        """Send one window per message id (payload derived from the id)."""
        for seq, mid in enumerate(message_ids):
            payload = [(mid * 7 + w) & 0xFFFFFFFF for w in range(self.payload_words)]
            self.sender.out_window(
                "dedup", seq=seq, chunks=[[mid], payload], dst="sink"
            )
        self.cluster.run()

    @property
    def delivered(self) -> int:
        return self.count[0]

    def switch_counters(self) -> Tuple[int, int]:
        """(total windows seen, duplicates dropped) as counted in-network."""
        ctrl = self.cluster.controller
        return ctrl.register_dump("total")[0], ctrl.register_dump("dups")[0]
