"""In-network KVS cache (the paper's Fig 5 use case, NetCache-style).

A ToR switch between clients and a storage server caches hot items:

* client **GET**: on a valid cache hit the switch writes the value into
  the window and ``_reflect()``\\ s it straight back -- the request never
  reaches the server; misses pass through to the server, which answers
  with a response window the switch forwards untouched (Fig 5 line 15);
* client **PUT**: the switch invalidates the cached copy and the window
  continues to the server (write-through invalidation);
* **server update**: the server re-populates a cache slot with the same
  kernel (``update`` windows from the server are absorbed by the
  switch);
* the ``Idx`` Map is control-plane managed: the server assigns cache
  slots and installs key->slot entries through ``ncl::map_insert``
  (paper: "the map is implemented as a MAT under the hood, which is
  only managed by the control plane").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeApiError
from repro.apps.workloads import value_words
from repro.ncp.window import Window
from repro.nclc import Compiler, WindowConfig
from repro.runtime import Cluster
from repro.runtime.host_rt import NclHost

KVS_NCL = r"""
// In-network KVS cache -- paper Fig 5 (GET, PUT), parameterized.
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, CACHE_SIZE> Idx;
_net_ _at_("s1") unsigned Cache[CACHE_SIZE][VAL_WORDS] = {{0}};
_net_ _at_("s1") bool Valid[CACHE_SIZE] = {false};

_net_ _out_ void query(uint64_t key, unsigned *val, bool update) {
  if (window.from != SERVER && update) {            // client PUT
    if (auto *idx = Idx[key]) Valid[*idx] = false;
  } else if (window.from != SERVER) {               // client GET
    if (auto *idx = Idx[key]) {
      if (Valid[*idx]) {                            // hit
        memcpy(val, Cache[*idx], VAL_WORDS * 4); _reflect(); } }
  } else if (update) {                              // server update
    if (auto *idx = Idx[key]) {
      memcpy(Cache[*idx], val, VAL_WORDS * 4);
      Valid[idx] = true; }
    _drop();
  } else { }                                        // server GET response
}
"""


def kvs_and(n_clients: int) -> str:
    lines = [f"host c{i}" for i in range(n_clients)]
    lines.append("host server")
    lines.append("switch s1")
    lines.extend(f"link c{i} s1" for i in range(n_clients))
    lines.append("link server s1")
    return "\n".join(lines)


class OpRecord:
    """One completed client operation."""

    __slots__ = ("op", "key", "issued", "completed", "served_by_cache", "value")

    def __init__(self, op: str, key: int, issued: float):
        self.op = op
        self.key = key
        self.issued = issued
        self.completed: Optional[float] = None
        self.served_by_cache = False
        self.value: Optional[List[int]] = None

    @property
    def latency(self) -> float:
        if self.completed is None:
            raise RuntimeApiError(f"{self.op}({self.key}) never completed")
        return self.completed - self.issued

    def __repr__(self) -> str:
        where = "cache" if self.served_by_cache else "server"
        return f"OpRecord({self.op} {self.key} via {where})"


class KvsCluster:
    """Deployed in-network KVS: clients, storage server, caching ToR."""

    def __init__(
        self,
        n_clients: int = 1,
        cache_size: int = 256,
        val_words: int = 8,
        n_keys: int = 1024,
        profile: Optional[str] = None,
        bandwidth: float = 10e9,
        latency: float = 5e-6,
        server_delay: float = 50e-6,
        program=None,
        obs=None,
    ):
        self.n_clients = n_clients
        self.cache_size = cache_size
        self.val_words = val_words
        self.server_delay = server_delay
        server_id = n_clients  # AND ids assign in declaration order
        # A precompiled program (e.g. loaded from a repro.nclc/1
        # artifact) skips the compiler entirely.
        self.program = program or self.compile_program(
            n_clients, cache_size, val_words, profile=profile
        )
        self.cluster = Cluster.from_program(
            self.program, bandwidth=bandwidth, latency=latency, obs=obs
        )
        self.server_id = server_id
        self.server = self.cluster.host("server")
        self.clients = [self.cluster.host(f"c{i}") for i in range(n_clients)]
        # Server-side store and cache bookkeeping.
        self.store: Dict[int, List[int]] = {
            k: value_words(k, val_words) for k in range(n_keys)
        }
        self.cached_slots: Dict[int, int] = {}  # key -> cache index
        self._next_slot = 0
        self.server_ops = 0
        self._pending: Dict[Tuple[int, int], OpRecord] = {}  # (client, seq) -> op
        self._client_seq = [0] * n_clients
        self.records: List[OpRecord] = []
        self.server.on_raw_window("query", self._server_window)
        for i, client in enumerate(self.clients):
            client.on_raw_window("query", self._make_client_handler(i))

    @staticmethod
    def compile_program(
        n_clients: int = 1,
        cache_size: int = 256,
        val_words: int = 8,
        profile: Optional[str] = None,
        opt_level: int = 2,
        cache=None,
    ):
        """The Fig 5 :class:`~repro.nclc.driver.CompiledProgram`, standalone
        -- save it as an artifact and feed it back via ``program=``."""
        compiler = Compiler(profile=profile, opt_level=opt_level, cache=cache)
        return compiler.compile(
            KVS_NCL,
            and_text=kvs_and(n_clients),
            windows={"query": WindowConfig(mask=(1, val_words, 1))},
            defines={
                "CACHE_SIZE": cache_size,
                "VAL_WORDS": val_words,
                "SERVER": n_clients,
            },
        )

    # -- cache management (control plane + server updates) --------------------

    def install_hot_keys(self, keys: Sequence[int]) -> None:
        """Admit *keys* into the cache: Map entries via the control plane,
        values via server update windows."""
        for key in keys:
            if key in self.cached_slots:
                continue
            if len(self.cached_slots) >= self.cache_size:
                raise RuntimeApiError("cache is full")
            slot = self._next_slot
            self._next_slot += 1
            self.cached_slots[key] = slot
            self.cluster.controller.map_insert("Idx", key, slot)
            self._push_value(key)
        self.cluster.run()

    def evict(self, key: int) -> None:
        """Paper S4.3: "for a cache eviction, the storage server just
        removes an item from the Idx map"."""
        if key in self.cached_slots:
            self.cluster.controller.map_erase("Idx", key)
            del self.cached_slots[key]

    def _push_value(self, key: int) -> None:
        """Server update window re-populating the cache slot for *key*."""
        self.server.out_window(
            "query",
            seq=0,
            chunks=[[key], list(self.store[key]), [1]],
            dst="s1",
        )

    # -- server role ----------------------------------------------------------------

    def _server_window(self, window: Window, host: NclHost) -> None:
        key = window.chunks[0][0]
        update = bool(window.chunks[2][0])
        client_id = window.from_node
        self.server_ops += 1

        def respond(value: List[int]) -> None:
            host.out_window(
                "query",
                seq=window.seq,
                chunks=[[key], value, [0]],
                dst=client_id,
            )

        def work() -> None:
            if update:
                self.store[key] = list(window.chunks[1])
                if key in self.cached_slots:
                    self._push_value(key)  # write-through re-population
                respond(self.store[key])
            else:
                respond(self.store.get(key, [0] * self.val_words))

        host.node.sim.schedule(
            self.server_delay, work,
            label=f"host;{host.node.name};kvs-server",
        )

    # -- client role ------------------------------------------------------------------

    def _make_client_handler(self, client_index: int):
        def handler(window: Window, host: NclHost) -> None:
            record = self._pending.pop((client_index, window.seq), None)
            if record is None:
                return
            record.completed = self.cluster.now()
            # Reflected hits still carry the client's own id in `from`.
            record.served_by_cache = window.from_node != self.server_id
            record.value = list(window.chunks[1])
            self.records.append(record)

        return handler

    def get(self, client: int, key: int) -> None:
        self._issue(client, key, update=False, value=[0] * self.val_words)

    def put(self, client: int, key: int, value: Sequence[int]) -> None:
        self._issue(client, key, update=True, value=list(value))

    def _issue(self, client: int, key: int, update: bool, value: List[int]) -> None:
        seq = self._client_seq[client]
        self._client_seq[client] = (seq + 1) & 0xFFFFFFFF
        record = OpRecord("PUT" if update else "GET", key, self.cluster.now())
        self._pending[(client, seq)] = record
        self.clients[client].out_window(
            "query",
            seq=seq,
            chunks=[[key], value, [1 if update else 0]],
            dst="server",
        )

    # -- driving ----------------------------------------------------------------------

    def run(self) -> None:
        self.cluster.run()

    def run_workload(
        self, client: int, keys: Sequence[int], put_every: int = 0
    ) -> List[OpRecord]:
        """Issue a key sequence from one client (GETs, with an optional PUT
        every *put_every* ops) and drive the simulation to completion."""
        start = len(self.records)
        for i, key in enumerate(keys):
            if put_every and i % put_every == put_every - 1:
                self.put(client, key, value_words(key ^ 0xDEAD, self.val_words))
            else:
                self.get(client, key)
        self.run()
        return self.records[start:]

    # -- metrics ---------------------------------------------------------------------

    def hit_ratio(self) -> float:
        gets = [r for r in self.records if r.op == "GET"]
        if not gets:
            return 0.0
        return sum(1 for r in gets if r.served_by_cache) / len(gets)

    def mean_latency(self, op: Optional[str] = None, cache_only: Optional[bool] = None):
        records = [
            r
            for r in self.records
            if (op is None or r.op == op)
            and (cache_only is None or r.served_by_cache == cache_only)
        ]
        if not records:
            return None
        return sum(r.latency for r in records) / len(records)
