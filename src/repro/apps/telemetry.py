"""In-network flow telemetry across a multi-switch path.

The fourth application exercises the paper features the ToR-only use
cases don't: a **location-less (SPMD) kernel** deployed on *every*
switch of a two-hop path, diverging by ``location.id`` (paper S4.1:
"location-less kernels run on all switches in SPMD fashion ... a builtin
location struct provides information about the current location such
that divergent behavior can still be expressed"), per-switch **local**
state (S4.1: modifications to location-less switch memory are local; NCL
makes no consistency guarantees), and a ``_ctrl_`` variable pinned to
one hop.

Pipeline: senders -> s1 (ingress) -> s2 (egress) -> collector.

* both switches count windows per flow slot in their own ``counts``;
* s1 stamps its count into the window (telemetry field 0);
* s2 stamps its count (field 1) and raises a heavy-hitter mark
  (field 2) when the ingress-stamped count exceeds the host-controlled
  threshold;
* the collector's incoming kernel tallies heavy-hitter marks per flow.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.nclc import Compiler, WindowConfig
from repro.runtime import Cluster

TELEMETRY_NCL = r"""
// Per-flow counting + heavy-hitter marking on a two-switch path.
_net_ unsigned counts[SLOTS] = {0};             // per-switch local state
_net_ _at_("s2") _ctrl_ unsigned hh_threshold;

_net_ _out_ void monitor(unsigned flowkey, unsigned *stamp) {
  unsigned slot = flowkey & (SLOTS - 1);
  counts[slot] += 1;
  if (location.id == _locid("s1")) {
    stamp[0] = counts[slot];                    // ingress count
  } else {
    stamp[1] = counts[slot];                    // egress count
    if (stamp[0] > hh_threshold) stamp[2] = 1;  // heavy hitter
  }
}

_net_ _in_ void collect(unsigned flowkey, unsigned *stamp,
                        _ext_ unsigned *hh_hits, _ext_ unsigned *seen) {
  unsigned slot = flowkey & (SLOTS - 1);
  if (stamp[2]) hh_hits[slot] += 1;
  seen[slot] += 1;
}
"""


def telemetry_and(n_senders: int = 2) -> str:
    lines = [f"host src{i}" for i in range(n_senders)]
    lines += ["host collector", "switch s1", "switch s2"]
    lines += [f"link src{i} s1" for i in range(n_senders)]
    lines += ["link s1 s2", "link s2 collector"]
    return "\n".join(lines)


class TelemetryCluster:
    def __init__(
        self,
        n_senders: int = 2,
        slots: int = 64,
        hh_threshold: int = 10,
        profile: Optional[str] = None,
        obs=None,
    ):
        self.slots = slots
        self.program = Compiler(profile=profile).compile(
            TELEMETRY_NCL,
            and_text=telemetry_and(n_senders),
            windows={"monitor": WindowConfig(mask=(1, 3))},
            defines={"SLOTS": slots},
        )
        self.cluster = Cluster.from_program(self.program, obs=obs)
        self.cluster.controller.ctrl_wr("hh_threshold", hh_threshold)
        self.senders = [self.cluster.host(f"src{i}") for i in range(n_senders)]
        self.collector = self.cluster.host("collector")
        self.hh_hits = [0] * slots
        self.seen = [0] * slots
        self.collector.register_in("collect", [self.hh_hits, self.seen])
        self._seq = [0] * n_senders

    def send_flows(self, sender: int, flow_keys: Sequence[int]) -> None:
        for key in flow_keys:
            seq = self._seq[sender]
            self._seq[sender] = (seq + 1) & 0xFFFFFFFF
            self.senders[sender].out_window(
                "monitor", seq=seq, chunks=[[key], [0, 0, 0]], dst="collector"
            )
        self.cluster.run()

    # -- inspection --------------------------------------------------------

    def switch_counts(self, label: str) -> List[int]:
        return self.cluster.controller.register_dump("counts", label=label)

    def heavy_hitters(self, min_marks: int = 1) -> List[int]:
        return [
            slot for slot, hits in enumerate(self.hh_hits) if hits >= min_marks
        ]

    def total_seen(self) -> int:
        return sum(self.seen)
