"""In-network AllReduce (the paper's Fig 4 use case).

Workers hang off one ToR switch labelled ``s1``; the switch aggregates
windows in the ``accum`` register array, counts contributions per window
slot in ``count``, and broadcasts a slot once ``nworkers`` windows have
been folded in. Workers receive results through the paired incoming
kernel.

Two kernel variants ship:

* :data:`ALLREDUCE_NCL` -- verbatim the paper's Fig 4 logic (one-shot:
  accumulator slots are not cleared);
* :data:`ALLREDUCE_MULTIROUND_NCL` -- clears each slot after broadcast,
  enabling repeated rounds (how SwitchML-style training loops run).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import RuntimeApiError
from repro.nclc import Compiler, WindowConfig
from repro.runtime import Cluster

ALLREDUCE_NCL = r"""
// In-network AllReduce -- paper Fig 4.
struct window { unsigned len; };

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN / WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
  unsigned base = window.seq * window.len;
  for (unsigned i = 0; i < window.len; ++i)
    accum[base + i] += data[i];
  if (++count[window.seq] == nworkers) {
    memcpy(data, &accum[base], window.len * 4);
    count[window.seq] = 0; _bcast();
  } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
  for (unsigned i = 0; i < window.len; ++i)
    hdata[window.seq * window.len + i] = data[i];
  if (window.last) *done = true;
}
"""

ALLREDUCE_MULTIROUND_NCL = r"""
// Multi-round AllReduce: slots are cleared after broadcast so the same
// deployment serves every training iteration.
struct window { unsigned len; };

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN / WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
  unsigned base = window.seq * window.len;
  for (unsigned i = 0; i < window.len; ++i)
    accum[base + i] += data[i];
  if (++count[window.seq] == nworkers) {
    memcpy(data, &accum[base], window.len * 4);
    for (unsigned i = 0; i < window.len; ++i)
      accum[base + i] = 0;
    count[window.seq] = 0; _bcast();
  } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
  for (unsigned i = 0; i < window.len; ++i)
    hdata[window.seq * window.len + i] = data[i];
  if (window.last) *done = true;
}
"""


def star_and(n_workers: int, switch_label: str = "s1") -> str:
    """The Fig 4 overlay: n workers around one ToR switch."""
    lines = [f"host w{i}" for i in range(n_workers)]
    lines.append(f"switch {switch_label}")
    lines.extend(f"link w{i} {switch_label}" for i in range(n_workers))
    return "\n".join(lines)


class AllReduceJob:
    """Compile + deploy an in-network AllReduce and drive rounds of it."""

    def __init__(
        self,
        n_workers: int,
        data_len: int,
        window_len: int = 8,
        multiround: bool = True,
        profile: Optional[str] = None,
        bandwidth: float = 10e9,
        latency: float = 1e-6,
        loss: float = 0.0,
        obs=None,
        program=None,
    ):
        if data_len % window_len != 0:
            raise RuntimeApiError("data_len must be a multiple of window_len")
        self.n_workers = n_workers
        self.data_len = data_len
        self.window_len = window_len
        # A precompiled program (e.g. one loaded from a repro.nclc/1
        # artifact via CompiledProgram.load) skips the compiler entirely.
        self.program = program or self.compile_program(
            n_workers,
            data_len,
            window_len,
            multiround=multiround,
            profile=profile,
        )
        self.cluster = Cluster.from_program(
            self.program, bandwidth=bandwidth, latency=latency, loss=loss, obs=obs
        )
        self.cluster.controller.ctrl_wr("nworkers", n_workers)

    @staticmethod
    def compile_program(
        n_workers: int,
        data_len: int,
        window_len: int = 8,
        multiround: bool = True,
        profile: Optional[str] = None,
        opt_level: int = 2,
        cache=None,
    ):
        """The Fig 4 :class:`~repro.nclc.driver.CompiledProgram`, standalone
        -- save it as an artifact and feed it back via ``program=``."""
        source = ALLREDUCE_MULTIROUND_NCL if multiround else ALLREDUCE_NCL
        compiler = Compiler(profile=profile, opt_level=opt_level, cache=cache)
        return compiler.compile(
            source,
            and_text=star_and(n_workers),
            windows={
                "allreduce": WindowConfig(mask=(window_len,), ext={"len": window_len})
            },
            defines={"DATA_LEN": data_len, "WIN_LEN": window_len},
        )

    def run_round(
        self, worker_arrays: Sequence[Sequence[int]]
    ) -> Tuple[List[List[int]], float]:
        """One synchronous AllReduce over the workers' arrays.

        Returns (per-worker result arrays, elapsed simulated seconds).
        """
        if len(worker_arrays) != self.n_workers:
            raise RuntimeApiError(
                f"need {self.n_workers} arrays, got {len(worker_arrays)}"
            )
        results: List[List[int]] = []
        dones: List[List[int]] = []
        for i in range(self.n_workers):
            out: List[int] = [0] * self.data_len
            done = [0]
            results.append(out)
            dones.append(done)
            self.cluster.host(f"w{i}").register_in("result", [out, done])
        start = self.cluster.now()
        for i, array in enumerate(worker_arrays):
            self.cluster.host(f"w{i}").out("allreduce", [list(array)])
        self.cluster.run()
        elapsed = self.cluster.now() - start
        if not all(d[0] for d in dones):
            raise RuntimeApiError(
                "AllReduce did not complete: "
                f"{sum(d[0] for d in dones)}/{self.n_workers} workers done "
                "(lossy link without retransmission?)"
            )
        return results, elapsed

    def host_to_switch_bytes(self) -> int:
        """Total bytes that crossed the worker<->ToR links so far."""
        return self.cluster.network.total_bytes_on_links()

    @staticmethod
    def expected(worker_arrays: Sequence[Sequence[int]]) -> List[int]:
        n = len(worker_arrays[0])
        total = [0] * n
        for array in worker_arrays:
            for j, v in enumerate(array):
                total[j] += int(v)
        # int32 wrap, matching the switch's arithmetic
        return [((v + 2**31) % 2**32) - 2**31 for v in total]
