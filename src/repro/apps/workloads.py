"""Workload generators shared by the examples and the benchmark harness."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def zipf_keys(n_ops: int, n_keys: int, skew: float, seed: int = 0) -> List[int]:
    """Sample *n_ops* keys from [0, n_keys) under a Zipf(skew) popularity
    distribution (rank 1 = key 0). ``skew=0`` degenerates to uniform.

    KVS caches (NetCache S2) are motivated exactly by such skew: a small
    set of hot keys dominates, so caching O(cache_size) keys absorbs a
    large fraction of the load.
    """
    rng = np.random.default_rng(seed)
    if n_keys <= 0:
        raise ValueError("n_keys must be positive")
    if skew <= 0:
        return list(map(int, rng.integers(0, n_keys, n_ops)))
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return list(map(int, rng.choice(n_keys, size=n_ops, p=weights)))


def hot_fraction(keys: Sequence[int], hot_set: Sequence[int]) -> float:
    """Fraction of accesses that land in *hot_set*."""
    if not keys:
        return 0.0
    hot = set(hot_set)
    return sum(1 for k in keys if k in hot) / len(keys)


def random_arrays(
    n_arrays: int, length: int, lo: int = -1000, hi: int = 1000, seed: int = 0
) -> List[List[int]]:
    """Random int32 worker arrays for AllReduce-style workloads."""
    rng = np.random.default_rng(seed)
    return [list(map(int, rng.integers(lo, hi, length))) for _ in range(n_arrays)]


def value_words(key: int, n_words: int) -> List[int]:
    """Deterministic value blob for a key (checkable at the client)."""
    return [((key * 2654435761 + i * 40503) & 0xFFFFFFFF) for i in range(n_words)]
