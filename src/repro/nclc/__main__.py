"""nclc command-line driver.

Compile an NCL program and emit the per-switch P4 artifacts::

    python -m repro.nclc program.ncl --and overlay.and -o build/
    python -m repro.nclc program.ncl --profile tofino-like \
        --window 'kernel=8' --ext 'len=8' -D DATA_LEN=512 -D WIN_LEN=8

Or run static analysis only (multi-error recovery, the race detector,
PISA-resource explanations -- see :mod:`repro.nclc.lint`)::

    python -m repro.nclc lint program.ncl [--json] [--werror] [-W race]

Outputs, per switch label: ``<label>.p4`` (generated source) and
``<label>.report.json`` (the backend's acceptance report). A rejection
prints the backend's feedback and exits non-zero -- the trial-and-error
loop of the paper's S6, on the command line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import BackendRejection, ConformanceError, NclError, ReproError
from repro.nclc.driver import Compiler, WindowConfig


def parse_kv(pairs, cast=int):
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"expected NAME=VALUE, got {pair!r}")
        name, _, value = pair.partition("=")
        out[name.strip()] = cast(value)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nclc", description="NCL compiler (NCL -> P4 for PISA switches)"
    )
    parser.add_argument("source", help="NCL source file")
    parser.add_argument("--and", dest="and_file", help="AND overlay file")
    parser.add_argument(
        "-o", "--output", default=".", help="output directory (default: cwd)"
    )
    parser.add_argument(
        "--profile",
        default="bmv2",
        help="target chip profile: bmv2 | tofino-like (default: bmv2)",
    )
    parser.add_argument(
        "-D",
        dest="defines",
        action="append",
        metavar="NAME=VALUE",
        help="constant definition (repeatable)",
    )
    parser.add_argument(
        "--window",
        dest="windows",
        action="append",
        metavar="KERNEL=N[,N...]",
        help="window mask for an outgoing kernel (repeatable)",
    )
    parser.add_argument(
        "--ext",
        dest="exts",
        action="append",
        metavar="FIELD=VALUE",
        help="window extension field value (applies to all kernels)",
    )
    parser.add_argument(
        "--no-split",
        action="store_true",
        help="disable the register-array splitting transformation",
    )
    parser.add_argument(
        "--dump-ir",
        action="store_true",
        help="print the optimized switch IR instead of writing artifacts",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print per-stage and per-pass wall time with IR-size deltas",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the compile timeline as Chrome trace-event JSON "
        "(open in chrome://tracing or Perfetto)",
    )
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.nclc.lint import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    source = Path(args.source).read_text()
    and_text = Path(args.and_file).read_text() if args.and_file else None
    defines = parse_kv(args.defines)
    ext = parse_kv(args.exts)

    windows = {}
    for spec in args.windows or []:
        kernel, _, mask_text = spec.partition("=")
        mask = tuple(int(m) for m in mask_text.split(","))
        windows[kernel.strip()] = WindowConfig(mask=mask, ext=ext)

    compiler = Compiler(
        profile=args.profile,
        split_arrays=False if args.no_split else "auto",
    )
    trace = None
    if args.timing or args.trace_out:
        from repro.obs import CompileTrace

        trace = CompileTrace()
    try:
        program = compiler.compile(
            source,
            and_text=and_text,
            windows=windows or None,
            defines=defines or None,
            filename=args.source,
            trace=trace,
        )
    except BackendRejection as exc:
        print("backend REJECTED the program:", file=sys.stderr)
        for reason in exc.reasons:
            print(f"  - {reason}", file=sys.stderr)
        # The timing collected up to the rejection is exactly what you
        # want when a build blows the chip budget -- still report it.
        if trace is not None and args.timing:
            print(trace.format_table())
        return 2
    except (ConformanceError, NclError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if trace is not None:
        if args.timing:
            print(trace.format_table())
        if args.trace_out:
            out = Path(args.trace_out)
            out.parent.mkdir(parents=True, exist_ok=True)
            with open(out, "w") as fp:
                trace.write_chrome(fp)

    if args.dump_ir:
        for label, p4 in program.switch_programs.items():
            print(f"// ===== switch {label} =====")
            print(program.switch_sources[label])
        return 0

    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    for label, p4_text in program.switch_sources.items():
        p4_path = outdir / f"{label}.p4"
        p4_path.write_text(p4_text)
        report = program.reports[label]
        report_path = outdir / f"{label}.report.json"
        payload = report.as_dict()
        payload["splits"] = [
            {"array": s.name, "stride": s.stride, "parts": s.part_names}
            for s in program.split_info.get(label, [])
        ]
        # Per-stage compile times always ride along; the per-pass detail
        # joins when the build ran with --timing/--trace-out.
        payload["timing"] = {"stages": program.stage_times}
        if trace is not None:
            payload["timing"]["passes"] = [
                p for p in trace.as_dict()["passes"]
                if p["stage"] in (label, "host")
            ]
        report_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"{label}: ACCEPTED on {report.profile} "
              f"({report.stages} stages, {report.phv_bits} PHV bits) "
              f"-> {p4_path}")
    layouts = {
        name: {
            "kernel_id": layout.kernel_id,
            "chunks": [
                {"param": c.name, "count": c.count, "bits": c.bits}
                for c in layout.chunks
            ],
            "ext_fields": [
                {"name": n, "bits": b} for n, b, _ in layout.ext_fields
            ],
        }
        for name, layout in program.layouts.items()
    }
    (outdir / "ncp_layouts.json").write_text(json.dumps(layouts, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
