"""nclc command-line driver.

Compile an NCL program and emit the per-switch P4 artifacts::

    python -m repro.nclc build program.ncl --and overlay.and -o build/
    python -m repro.nclc build program.ncl --profile tofino-like -O1 \
        --window 'kernel=8' --ext 'len=8' -D DATA_LEN=512 -D WIN_LEN=8

(``build`` is the default subcommand -- a bare source path works too.)
``--emit`` selects the output: the parse tree (``ast``), the optimized
per-switch NIR (``nir``), per-switch P4 + acceptance reports (``p4``,
the default), or one serialized ``repro.nclc/1`` artifact (``artifact``)
that :meth:`repro.nclc.driver.CompiledProgram.load` turns back into a
runnable program. ``--cache DIR`` keeps a content-addressed artifact
cache there so unchanged rebuilds are near-instant.

Or run static analysis only (multi-error recovery, the race detector,
PISA-resource explanations -- see :mod:`repro.nclc.lint`)::

    python -m repro.nclc lint program.ncl [--json] [--werror] [-W race]

Or statically admit a whole multi-tenant deployment -- N programs,
one fabric -- before simulating it (see :mod:`repro.nclc.deploy`)::

    python -m repro.nclc check-deploy fabric.deploy [--json] [--werror]

Or verify transport safety -- kernel effect summaries plus the NCP
window model checker (see :mod:`repro.nclc.proto`)::

    python -m repro.nclc check-proto program.ncl [--json] [--werror]

Outputs, per switch label: ``<label>.p4`` (generated source) and
``<label>.report.json`` (the backend's acceptance report). A rejection
prints the backend's feedback and exits non-zero -- the trial-and-error
loop of the paper's S6, on the command line.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.errors import BackendRejection, ConformanceError, NclError, ReproError
from repro.nclc import cli
from repro.nclc.driver import Compiler, WindowConfig

# re-exported for callers that imported these from here historically
build_parser = cli.build_parser
parse_kv = cli.parse_kv


def _emit_ast(args) -> int:
    """``--emit ast``: frontend only -- tokenize, parse, print the tree."""
    from repro.ncl.lexer import tokenize
    from repro.ncl.parser import Parser

    source = Path(args.source).read_text()
    defines = cli.parse_kv(args.defines)
    tokens = tokenize(source, args.source, defines or None)
    program = Parser(tokens).parse_program()
    print(cli.dump_ast(program))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.nclc.lint import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "check-deploy":
        from repro.nclc.deploy import main as deploy_main

        return deploy_main(argv[1:])
    if argv and argv[0] == "check-proto":
        from repro.nclc.proto import main as proto_main

        return proto_main(argv[1:])
    if argv and argv[0] == "build":
        argv = argv[1:]
    args = cli.build_parser().parse_args(argv)
    try:
        return run_build(args)
    except cli.UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def run_build(args) -> int:
    if args.emit == "ast":
        try:
            return _emit_ast(args)
        except (NclError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    source = Path(args.source).read_text()
    and_text = cli.read_and_text(args)
    defines = cli.parse_kv(args.defines)
    ext = cli.parse_kv(args.exts)

    windows = {}
    for spec in args.windows or []:
        kernel, _, mask_text = spec.partition("=")
        mask = tuple(int(m) for m in mask_text.split(","))
        windows[kernel.strip()] = WindowConfig(mask=mask, ext=ext)

    cache = None
    if args.cache:
        from repro.nclc.cache import ArtifactCache

        cache = ArtifactCache(root=args.cache)

    compiler = Compiler(
        profile=args.profile,
        split_arrays=False if args.no_split else "auto",
        opt_level=args.opt_level,
        cache=cache,
        verify_opt=args.verify_opt,
    )
    trace = None
    if args.timing or args.trace_out:
        from repro.obs import CompileTrace

        trace = CompileTrace()
    try:
        program = compiler.compile(
            source,
            and_text=and_text,
            windows=windows or None,
            defines=defines or None,
            filename=args.source,
            trace=trace,
        )
    except BackendRejection as exc:
        print("backend REJECTED the program:", file=sys.stderr)
        for reason in exc.reasons:
            print(f"  - {reason}", file=sys.stderr)
        # The timing collected up to the rejection is exactly what you
        # want when a build blows the chip budget -- still report it.
        if trace is not None and args.timing:
            print(trace.format_table())
        return 2
    except (ConformanceError, NclError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        from repro.analysis.transval import TranslationValidationError

        if isinstance(exc, TranslationValidationError):
            print(f"translation validation FAILED: optimization pass "
                  f"{exc.pass_name!r} miscompiled kernel {exc.fn_name!r}:",
                  file=sys.stderr)
            print(f"  {exc.detail}", file=sys.stderr)
            return 1
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if trace is not None:
        if args.timing:
            print(trace.format_table())
        if args.trace_out:
            out = Path(args.trace_out)
            out.parent.mkdir(parents=True, exist_ok=True)
            with open(out, "w") as fp:
                trace.write_chrome(fp)

    if args.emit == "nir":
        for label, module in program.switch_modules.items():
            print(f"; ===== switch {label} (optimized NIR, -O{args.opt_level}) =====")
            print(module.render())
        return 0

    if args.emit == "absint":
        sys.stdout.write(program.render_absint())
        return 0

    if args.emit == "effects":
        sys.stdout.write(program.render_effects())
        return 0

    if args.dump_ir:
        for label, p4 in program.switch_programs.items():
            print(f"// ===== switch {label} =====")
            print(program.switch_sources[label])
        return 0

    outdir = Path(args.output)

    if args.emit == "artifact":
        outdir.mkdir(parents=True, exist_ok=True)
        artifact_path = outdir / (Path(args.source).stem + ".nclc.json")
        program.save(artifact_path)
        print(f"artifact: repro.nclc/1 (-O{program.opt_level}) -> {artifact_path}")
        return 0

    outdir.mkdir(parents=True, exist_ok=True)
    for label, p4_text in program.switch_sources.items():
        p4_path = outdir / f"{label}.p4"
        p4_path.write_text(p4_text)
        report = program.reports[label]
        report_path = outdir / f"{label}.report.json"
        payload = report.as_dict()
        payload["splits"] = [
            {"array": s.name, "stride": s.stride, "parts": s.part_names}
            for s in program.split_info.get(label, [])
        ]
        # Per-stage compile times always ride along; the per-pass detail
        # joins when the build ran with --timing/--trace-out.
        payload["timing"] = {"stages": program.stage_times}
        if trace is not None:
            payload["timing"]["passes"] = [
                p for p in trace.as_dict()["passes"]
                if p["stage"] in (label, "host")
            ]
        report_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"{label}: ACCEPTED on {report.profile} "
              f"({report.stages} stages, {report.phv_bits} PHV bits) "
              f"-> {p4_path}")
    layouts = {
        name: {
            "kernel_id": layout.kernel_id,
            "chunks": [
                {"param": c.name, "count": c.count, "bits": c.bits}
                for c in layout.chunks
            ],
            "ext_fields": [
                {"name": n, "bits": b} for n, b, _ in layout.ext_fields
            ],
        }
        for name, layout in program.layouts.items()
    }
    (outdir / "ncp_layouts.json").write_text(json.dumps(layouts, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
