"""The ``repro.nclc/1`` compile artifact: a versioned, serializable
snapshot of a :class:`repro.nclc.driver.CompiledProgram`.

An artifact carries everything the runtime/cluster and benchmarks need
to *run* a compiled program without re-invoking the frontend: the
reference NIR module (host-side interpretation), the per-location
optimized switch NIR, the generated P4 programs, kernel window layouts,
window configs, the AND overlay, acceptance reports, and a slim
semantic summary of the translation unit (kernel signatures + pairing).

Two properties are deliberate:

* **Determinism** -- :func:`dump_program` renumbers NIR instructions in
  block order before encoding (``ir.Instr.id`` comes from a global
  counter, so raw ids differ between compiles), and the JSON is emitted
  with sorted keys and fixed separators. Compiling the same source twice
  yields byte-identical artifacts, which is what makes the
  content-addressed cache (:mod:`repro.nclc.cache`) return stable bytes.
* **Closed-world schema** -- every node kind is explicitly tagged;
  anything unrecognized raises :class:`repro.errors.ArtifactError`
  instead of silently reconstructing garbage.

What is *not* in an artifact: the NCL AST. Host-side ``ncl::exec``
(:mod:`repro.runtime.hostexec`) interprets host *functions* from the
AST and therefore needs an in-process compile; programs loaded from
artifacts expose an empty ``unit.functions``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.andspec.model import AndSpec, parse_and
from repro.errors import ArtifactError
from repro.ncl import types as T
from repro.nir import ir
from repro.p4 import model as p4
from repro.p4.backend import AcceptanceReport

SCHEMA = "repro.nclc/1"

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

_SCALARS = {
    "void": T.VOID,
    "bool": T.BOOL,
    "i8": T.I8,
    "i16": T.I16,
    "i32": T.I32,
    "i64": T.I64,
    "u8": T.U8,
    "u16": T.U16,
    "u32": T.U32,
    "u64": T.U64,
}
_SCALAR_NAMES = {ty: name for name, ty in _SCALARS.items()}


def dump_type(ty: T.Type):
    if isinstance(ty, (T.VoidType, T.BoolType)) or isinstance(ty, T.IntType):
        name = _SCALAR_NAMES.get(ty)
        if name is None:
            raise ArtifactError(f"unserializable scalar type {ty!r}")
        return name
    if isinstance(ty, T.PointerType):
        return ["ptr", dump_type(ty.pointee)]
    if isinstance(ty, T.ArrayType):
        return ["arr", dump_type(ty.element), ty.length]
    if isinstance(ty, T.MapType):
        return ["map", dump_type(ty.key), dump_type(ty.value), ty.capacity]
    if isinstance(ty, T.BloomFilterType):
        return ["bloom", ty.nbits, ty.nhashes]
    raise ArtifactError(f"unserializable type {ty!r}")


def load_type(enc) -> T.Type:
    if isinstance(enc, str):
        if enc not in _SCALARS:
            raise ArtifactError(f"unknown scalar type {enc!r}")
        return _SCALARS[enc]
    if not isinstance(enc, list) or not enc:
        raise ArtifactError(f"malformed type encoding {enc!r}")
    tag = enc[0]
    if tag == "ptr":
        return T.PointerType(load_type(enc[1]))
    if tag == "arr":
        return T.ArrayType(load_type(enc[1]), int(enc[2]))
    if tag == "map":
        return T.MapType(load_type(enc[1]), load_type(enc[2]), int(enc[3]))
    if tag == "bloom":
        return T.BloomFilterType(int(enc[1]), int(enc[2]))
    raise ArtifactError(f"unknown type tag {tag!r}")


# ---------------------------------------------------------------------------
# NIR modules
# ---------------------------------------------------------------------------

#: instruction class -> stable tag
_INSTR_TAGS = {
    ir.BinOp: "bin",
    ir.UnOp: "un",
    ir.Cast: "cast",
    ir.Select: "sel",
    ir.Alloca: "alloca",
    ir.Load: "load",
    ir.Store: "store",
    ir.LoadElem: "ldelem",
    ir.StoreElem: "stelem",
    ir.LoadParam: "ldparam",
    ir.StoreParam: "stparam",
    ir.WinField: "winfld",
    ir.LocField: "locfld",
    ir.LocLabel: "locid",
    ir.CtrlRead: "ctrlrd",
    ir.MapLookup: "maplkp",
    ir.MapFound: "mapfnd",
    ir.MapValue: "mapval",
    ir.BloomOp: "bloom",
    ir.Memcpy: "memcpy",
    ir.Fwd: "fwd",
    ir.CallFn: "call",
    ir.Phi: "phi",
    ir.Br: "br",
    ir.CondBr: "condbr",
    ir.Ret: "ret",
}
_TAG_CLASSES = {tag: cls for cls, tag in _INSTR_TAGS.items()}


class _FnDumper:
    """Encodes one function with deterministic local instruction ids."""

    def __init__(self, fn: ir.Function):
        self.fn = fn
        self.local_ids: Dict[int, int] = {}
        n = 0
        for block in fn.blocks:
            for instr in block.instrs:
                self.local_ids[id(instr)] = n
                n += 1

    def value(self, val: ir.Value):
        if isinstance(val, ir.Const):
            return ["c", dump_type(val.ty), val.value]
        if isinstance(val, ir.Undef):
            return ["u", dump_type(val.ty)]
        if isinstance(val, ir.Param):
            return ["p", val.index]
        if isinstance(val, ir.Instr):
            lid = self.local_ids.get(id(val))
            if lid is None:
                raise ArtifactError(
                    f"{self.fn.name}: instruction operand %{val.id} is not "
                    "in any block (dangling reference)"
                )
            return ["r", lid]
        raise ArtifactError(f"unserializable value {val!r}")

    def region(self, region: ir.MemRegion):
        if region.kind == "param":
            return ["param", region.param.index]
        return ["global", region.ref.name]

    def instr(self, instr: ir.Instr):
        tag = _INSTR_TAGS.get(type(instr))
        if tag is None:
            raise ArtifactError(f"unserializable instruction {instr!r}")
        rec: Dict[str, object] = {
            "t": tag,
            "ty": dump_type(instr.ty),
            "ops": [self.value(op) for op in instr.operands],
        }
        if isinstance(instr, (ir.BinOp, ir.UnOp)):
            rec["op"] = instr.op
        elif isinstance(instr, ir.Cast):
            rec["kind"] = instr.kind
            rec["explicit"] = instr.explicit
        elif isinstance(instr, ir.Alloca):
            rec["slot_ty"] = dump_type(instr.slot_ty)
            rec["name"] = instr.name
        elif isinstance(instr, (ir.LoadElem, ir.StoreElem, ir.CtrlRead,
                                ir.MapLookup)):
            rec["ref"] = instr.ref.name
        elif isinstance(instr, (ir.LoadParam, ir.StoreParam)):
            rec["param"] = instr.param.index
        elif isinstance(instr, (ir.WinField, ir.LocField)):
            rec["field"] = instr.field
        elif isinstance(instr, ir.LocLabel):
            rec["label"] = instr.label
        elif isinstance(instr, ir.BloomOp):
            rec["ref"] = instr.ref.name
            rec["op"] = instr.op
        elif isinstance(instr, ir.Memcpy):
            rec["dst"] = self.region(instr.dst)
            rec["src"] = self.region(instr.src)
        elif isinstance(instr, ir.Fwd):
            rec["kind"] = instr.kind.name
            rec["label"] = instr.label
        elif isinstance(instr, ir.CallFn):
            rec["callee"] = instr.callee.name
        elif isinstance(instr, ir.Phi):
            # incoming duplicates operands; encode (value, block) pairs
            # instead and rebuild operands on load.
            rec["ops"] = []
            rec["incoming"] = [
                [self.value(val), block.label] for val, block in instr.incoming
            ]
        elif isinstance(instr, ir.Br):
            rec["target"] = instr.target.label
        elif isinstance(instr, ir.CondBr):
            rec["then"] = instr.then.label
            rec["other"] = instr.other.label
        return rec

    def dump(self):
        fn = self.fn
        return {
            "name": fn.name,
            "kind": fn.kind.name,
            "at_label": fn.at_label,
            "ret": dump_type(fn.ret),
            "params": [
                {"name": p.name, "ty": dump_type(p.ty), "ext": p.ext}
                for p in fn.params
            ],
            "label_counter": fn._label_counter,
            "blocks": [
                {
                    "label": block.label,
                    "instrs": [self.instr(i) for i in block.instrs],
                }
                for block in fn.blocks
            ],
        }


def dump_module(module: ir.Module):
    return {
        "name": module.name,
        "window_fields": [
            [name, dump_type(ty)] for name, ty in module.window_fields
        ],
        "globals": [
            {
                "name": ref.name,
                "ty": dump_type(ref.ty),
                "space": ref.space,
                "at_label": ref.at_label,
                "init": ref.init,
            }
            for ref in module.globals.values()
        ],
        "functions": [_FnDumper(fn).dump() for fn in module.functions.values()],
    }


class _FnLoader:
    """Rebuilds one function; CallFn callees resolve in a later phase."""

    def __init__(self, enc, module: ir.Module,
                 pending_calls: List[Tuple[ir.CallFn, str]]):
        self.enc = enc
        self.module = module
        self.pending_calls = pending_calls
        self.instrs: List[ir.Instr] = []
        self.blocks: Dict[str, ir.Block] = {}
        self.params: List[ir.Param] = []

    def load(self) -> ir.Function:
        enc = self.enc
        try:
            kind = ir.FunctionKind[enc["kind"]]
        except KeyError:
            raise ArtifactError(f"unknown function kind {enc.get('kind')!r}")
        self.params = [
            ir.Param(i, p["name"], load_type(p["ty"]), bool(p["ext"]))
            for i, p in enumerate(enc["params"])
        ]
        fn = ir.Function(
            enc["name"], kind, self.params, load_type(enc["ret"]),
            enc.get("at_label"),
        )
        fn._label_counter = int(enc.get("label_counter", 0))
        # Phase 1: shell instructions + blocks (forward refs allowed).
        for benc in enc["blocks"]:
            block = ir.Block(benc["label"])
            self.blocks[block.label] = block
            fn.blocks.append(block)
            for ienc in benc["instrs"]:
                instr = self._shell(ienc)
                instr.block = block
                block.instrs.append(instr)
                self.instrs.append(instr)
        # Phase 2: resolve operands, phi incoming, branch targets.
        n = 0
        for benc in enc["blocks"]:
            for ienc in benc["instrs"]:
                self._connect(self.instrs[n], ienc)
                n += 1
        return fn

    def _block(self, label: str) -> ir.Block:
        if label not in self.blocks:
            raise ArtifactError(f"unknown block label {label!r}")
        return self.blocks[label]

    def _global(self, name: str) -> ir.GlobalRef:
        if name not in self.module.globals:
            raise ArtifactError(f"unknown global {name!r}")
        return self.module.globals[name]

    def _value(self, enc) -> ir.Value:
        tag = enc[0]
        if tag == "c":
            return ir.Const(load_type(enc[1]), enc[2])
        if tag == "u":
            return ir.Undef(load_type(enc[1]))
        if tag == "p":
            return self.params[enc[1]]
        if tag == "r":
            idx = enc[1]
            if not 0 <= idx < len(self.instrs):
                raise ArtifactError(f"instruction reference %{idx} out of range")
            return self.instrs[idx]
        raise ArtifactError(f"unknown value tag {tag!r}")

    def _region(self, enc) -> ir.MemRegion:
        if enc[0] == "param":
            return ir.MemRegion("param", param=self.params[enc[1]])
        return ir.MemRegion("global", ref=self._global(enc[1]))

    def _shell(self, enc) -> ir.Instr:
        cls = _TAG_CLASSES.get(enc.get("t"))
        if cls is None:
            raise ArtifactError(f"unknown instruction tag {enc.get('t')!r}")
        instr = object.__new__(cls)
        instr.ty = load_type(enc["ty"])
        instr.operands = []
        instr.id = next(ir._id_counter)
        instr.block = None
        instr.loc = None
        if cls in (ir.BinOp, ir.UnOp):
            instr.op = enc["op"]
        elif cls is ir.Cast:
            instr.kind = enc["kind"]
            instr.explicit = bool(enc["explicit"])
        elif cls is ir.Alloca:
            instr.slot_ty = load_type(enc["slot_ty"])
            instr.name = enc["name"]
        elif cls in (ir.LoadElem, ir.StoreElem, ir.CtrlRead, ir.MapLookup):
            instr.ref = self._global(enc["ref"])
        elif cls in (ir.LoadParam, ir.StoreParam):
            instr.param = self.params[enc["param"]]
        elif cls in (ir.WinField, ir.LocField):
            instr.field = enc["field"]
        elif cls is ir.LocLabel:
            instr.label = enc["label"]
        elif cls is ir.BloomOp:
            instr.ref = self._global(enc["ref"])
            instr.op = enc["op"]
            instr.has_side_effects = enc["op"] == "insert"
        elif cls is ir.Fwd:
            instr.kind = ir.FwdKind[enc["kind"]]
            instr.label = enc.get("label")
        elif cls is ir.CallFn:
            self.pending_calls.append((instr, enc["callee"]))
        elif cls is ir.Phi:
            instr.incoming = []
        return instr

    def _connect(self, instr: ir.Instr, enc) -> None:
        instr.operands = [self._value(op) for op in enc["ops"]]
        if isinstance(instr, ir.Phi):
            for venc, label in enc["incoming"]:
                instr.add_incoming(self._value(venc), self._block(label))
        elif isinstance(instr, ir.Memcpy):
            instr.dst = self._region(enc["dst"])
            instr.src = self._region(enc["src"])
        elif isinstance(instr, ir.Br):
            instr.target = self._block(enc["target"])
        elif isinstance(instr, ir.CondBr):
            instr.then = self._block(enc["then"])
            instr.other = self._block(enc["other"])


def load_module(enc) -> ir.Module:
    module = ir.Module(enc["name"])
    module.window_fields = [
        (name, load_type(ty)) for name, ty in enc["window_fields"]
    ]
    for genc in enc["globals"]:
        module.add_global(
            ir.GlobalRef(
                genc["name"],
                load_type(genc["ty"]),
                genc["space"],
                genc.get("at_label"),
                genc.get("init"),
            )
        )
    pending_calls: List[Tuple[ir.CallFn, str]] = []
    for fenc in enc["functions"]:
        module.add_function(_FnLoader(fenc, module, pending_calls).load())
    for call, callee in pending_calls:
        if callee not in module.functions:
            raise ArtifactError(f"call to unknown function {callee!r}")
        call.callee = module.functions[callee]
    return module


# ---------------------------------------------------------------------------
# P4 programs
# ---------------------------------------------------------------------------


def _dump_pexpr(e: p4.PExpr):
    if isinstance(e, p4.PConst):
        return ["c", e.value, e.bits]
    if isinstance(e, p4.PField):
        return ["f", e.ref]
    if isinstance(e, p4.PParam):
        return ["a", e.name, e.bits]
    if isinstance(e, p4.PBin):
        return ["b", e.op, _dump_pexpr(e.lhs), _dump_pexpr(e.rhs), e.bits,
                e.signed]
    if isinstance(e, p4.PUn):
        return ["n", e.op, _dump_pexpr(e.operand), e.bits, e.signed]
    if isinstance(e, p4.PMux):
        return ["m", _dump_pexpr(e.cond), _dump_pexpr(e.a), _dump_pexpr(e.b),
                e.bits]
    raise ArtifactError(f"unserializable P4 expression {e!r}")


def _load_pexpr(enc) -> p4.PExpr:
    tag = enc[0]
    if tag == "c":
        return p4.PConst(enc[1], enc[2])
    if tag == "f":
        return p4.PField(enc[1])
    if tag == "a":
        return p4.PParam(enc[1], enc[2])
    if tag == "b":
        return p4.PBin(enc[1], _load_pexpr(enc[2]), _load_pexpr(enc[3]),
                       enc[4], bool(enc[5]))
    if tag == "n":
        return p4.PUn(enc[1], _load_pexpr(enc[2]), enc[3], bool(enc[4]))
    if tag == "m":
        return p4.PMux(_load_pexpr(enc[1]), _load_pexpr(enc[2]),
                       _load_pexpr(enc[3]), enc[4])
    raise ArtifactError(f"unknown P4 expression tag {tag!r}")


def _dump_prim(prim: p4.Primitive):
    if isinstance(prim, p4.PAssign):
        return ["set", prim.dst, _dump_pexpr(prim.expr)]
    if isinstance(prim, p4.PRegRead):
        return ["rrd", prim.dst, prim.reg, _dump_pexpr(prim.index)]
    if isinstance(prim, p4.PRegWrite):
        return ["rwr", prim.reg, _dump_pexpr(prim.index), _dump_pexpr(prim.expr)]
    raise ArtifactError(f"unserializable primitive {prim!r}")


def _load_prim(enc) -> p4.Primitive:
    tag = enc[0]
    if tag == "set":
        return p4.PAssign(enc[1], _load_pexpr(enc[2]))
    if tag == "rrd":
        return p4.PRegRead(enc[1], enc[2], _load_pexpr(enc[3]))
    if tag == "rwr":
        return p4.PRegWrite(enc[1], _load_pexpr(enc[2]), _load_pexpr(enc[3]))
    raise ArtifactError(f"unknown primitive tag {tag!r}")


def _dump_control(node: p4.ControlNode):
    if isinstance(node, p4.Apply):
        return ["apply", node.table]
    if isinstance(node, p4.Do):
        return ["do", node.action]
    if isinstance(node, p4.IfNode):
        return [
            "if",
            _dump_pexpr(node.cond),
            [_dump_control(n) for n in node.then_nodes],
            [_dump_control(n) for n in node.else_nodes],
        ]
    raise ArtifactError(f"unserializable control node {node!r}")


def _load_control(enc) -> p4.ControlNode:
    tag = enc[0]
    if tag == "apply":
        return p4.Apply(enc[1])
    if tag == "do":
        return p4.Do(enc[1])
    if tag == "if":
        return p4.IfNode(
            _load_pexpr(enc[1]),
            [_load_control(n) for n in enc[2]],
            [_load_control(n) for n in enc[3]],
        )
    raise ArtifactError(f"unknown control tag {tag!r}")


def dump_p4_program(prog: p4.P4Program):
    return {
        "name": prog.name,
        "headers": [
            {
                "name": ht.name,
                "fields": [[f.name, f.bits] for f in ht.fields],
            }
            for ht in prog.headers.values()
        ],
        "instances": dict(prog.instances),
        "metadata": dict(prog.metadata),
        "parser": [
            {
                "name": st.name,
                "extracts": list(st.extracts),
                "select_field": st.select_field,
                "transitions": [[v, nxt] for v, nxt in st.transitions],
                "default_next": st.default_next,
            }
            for st in prog.parser
        ],
        "actions": [
            {
                "name": a.name,
                "primitives": [_dump_prim(pr) for pr in a.primitives],
                "params": [[n, b] for n, b in a.params],
            }
            for a in prog.actions.values()
        ],
        "tables": [
            {
                "name": t.name,
                "keys": [[ref, kind] for ref, kind in t.keys],
                "actions": list(t.actions),
                "default_action": t.default_action,
                "default_args": list(t.default_args),
                "entries": [
                    {
                        "match": [
                            list(m) if isinstance(m, tuple) else m
                            for m in e.match
                        ],
                        "mkinds": [
                            "tern" if isinstance(m, tuple) else "exact"
                            for m in e.match
                        ],
                        "action": e.action,
                        "args": list(e.args),
                        "priority": e.priority,
                    }
                    for e in t.entries
                ],
                "managed_by": t.managed_by,
                "size": t.size,
            }
            for t in prog.tables.values()
        ],
        "registers": [
            {"name": r.name, "bits": r.bits, "size": r.size, "signed": r.signed}
            for r in prog.registers.values()
        ],
        "control": [_dump_control(n) for n in prog.control],
        "deparser": list(prog.deparser),
    }


def load_p4_program(enc) -> p4.P4Program:
    prog = p4.P4Program(enc["name"])
    for henc in enc["headers"]:
        prog.headers[henc["name"]] = p4.HeaderType(
            henc["name"], [(n, b) for n, b in henc["fields"]]
        )
    prog.instances = dict(enc["instances"])
    prog.metadata = dict(enc["metadata"])
    prog.parser = [
        p4.ParseState(
            st["name"],
            st["extracts"],
            st["select_field"],
            [(v, nxt) for v, nxt in st["transitions"]],
            st["default_next"],
        )
        for st in enc["parser"]
    ]
    for aenc in enc["actions"]:
        prog.add_action(
            p4.Action(
                aenc["name"],
                [_load_prim(pr) for pr in aenc["primitives"]],
                [(n, b) for n, b in aenc["params"]],
            )
        )
    for tenc in enc["tables"]:
        entries = [
            p4.TableEntry(
                [
                    tuple(m) if kind == "tern" else m
                    for m, kind in zip(e["match"], e["mkinds"])
                ],
                e["action"],
                e["args"],
                e["priority"],
            )
            for e in tenc["entries"]
        ]
        prog.add_table(
            p4.Table(
                tenc["name"],
                [(ref, kind) for ref, kind in tenc["keys"]],
                tenc["actions"],
                tenc["default_action"],
                tenc["default_args"],
                entries,
                tenc["managed_by"],
                tenc["size"],
            )
        )
    for renc in enc["registers"]:
        prog.add_register(
            p4.RegisterArray(
                renc["name"], renc["bits"], renc["size"], renc["signed"]
            )
        )
    prog.control = [_load_control(n) for n in enc["control"]]
    prog.deparser = list(enc["deparser"])
    prog.validate()
    return prog


# ---------------------------------------------------------------------------
# Unit summary (the runtime's view of the frontend output)
# ---------------------------------------------------------------------------


class ArtifactParam:
    """Kernel parameter as the runtime sees it (name, type, _ext_)."""

    __slots__ = ("name", "ty", "ext")

    def __init__(self, name: str, ty: T.Type, ext: bool):
        self.name = name
        self.ty = ty
        self.ext = ext

    def __repr__(self) -> str:
        return f"ArtifactParam({'_ext_ ' if self.ext else ''}{self.name}: {self.ty!r})"


class ArtifactKernelInfo:
    """KernelInfo-shaped summary reconstructed from an artifact."""

    def __init__(self, name: str, kind: str, at_label: Optional[str],
                 params: List[ArtifactParam]):
        self.name = name
        self.kind = kind
        self.at_label = at_label
        self.params = params

    @property
    def data_params(self) -> List[ArtifactParam]:
        return [p for p in self.params if not p.ext]

    @property
    def ext_params(self) -> List[ArtifactParam]:
        return [p for p in self.params if p.ext]

    def data_signature(self) -> Tuple[T.Type, ...]:
        return tuple(p.ty for p in self.data_params)

    def __repr__(self) -> str:
        return f"ArtifactKernelInfo({self.kind} {self.name})"


class ArtifactUnit:
    """TranslationUnit stand-in for programs loaded from artifacts.

    Carries exactly the semantic surface the runtime consumes: kernel
    signatures, pairing, and window fields. ``functions`` is empty --
    host-side ``ncl::exec`` needs the AST and thus an in-process compile.
    """

    def __init__(
        self,
        out_kernels: Dict[str, ArtifactKernelInfo],
        in_kernels: Dict[str, ArtifactKernelInfo],
        window_fields: List[Tuple[str, T.Type]],
    ):
        self.out_kernels = out_kernels
        self.in_kernels = in_kernels
        self.window_fields = window_fields
        #: no AST in artifacts: ncl::exec host functions are unavailable
        self.functions: Dict[str, object] = {}

    @property
    def kernels(self) -> Dict[str, ArtifactKernelInfo]:
        merged = dict(self.out_kernels)
        merged.update(self.in_kernels)
        return merged

    def window_field_type(self, name: str) -> Optional[T.Type]:
        for fname, fty in self.window_fields:
            if fname == name:
                return fty
        return None

    def paired_out_kernel(self, in_kernel: str) -> Optional[ArtifactKernelInfo]:
        info = self.in_kernels.get(in_kernel)
        if info is None:
            return None
        sig = info.data_signature()
        for out in self.out_kernels.values():
            if out.data_signature() == sig:
                return out
        return None


def _dump_kernel_info(info) -> Dict[str, object]:
    kind = getattr(info.kind, "name", info.kind)
    return {
        "name": info.name,
        "kind": kind,
        "at_label": info.at_label,
        "params": [
            {"name": p.name, "ty": dump_type(p.ty), "ext": bool(p.ext)}
            for p in info.params
        ],
    }


def _load_kernel_info(enc) -> ArtifactKernelInfo:
    return ArtifactKernelInfo(
        enc["name"],
        enc["kind"],
        enc.get("at_label"),
        [
            ArtifactParam(p["name"], load_type(p["ty"]), bool(p["ext"]))
            for p in enc["params"]
        ],
    )


def dump_unit(unit) -> Dict[str, object]:
    return {
        "out_kernels": [
            _dump_kernel_info(unit.out_kernels[k])
            for k in sorted(unit.out_kernels)
        ],
        "in_kernels": [
            _dump_kernel_info(unit.in_kernels[k])
            for k in sorted(unit.in_kernels)
        ],
        "window_fields": [
            [name, dump_type(ty)] for name, ty in unit.window_fields
        ],
    }


def load_unit(enc) -> ArtifactUnit:
    return ArtifactUnit(
        {k["name"]: _load_kernel_info(k) for k in enc["out_kernels"]},
        {k["name"]: _load_kernel_info(k) for k in enc["in_kernels"]},
        [(name, load_type(ty)) for name, ty in enc["window_fields"]],
    )


# ---------------------------------------------------------------------------
# Whole programs
# ---------------------------------------------------------------------------


def program_payload(program) -> Dict[str, object]:
    """The artifact as a JSON-ready dict (schema ``repro.nclc/1``)."""
    from repro.nclc.pm import NCLC_VERSION

    labels = sorted(program.switch_programs)
    return {
        "schema": SCHEMA,
        "nclc_version": NCLC_VERSION,
        "opt_level": program.opt_level,
        "profile": program.profile.name,
        "source": program.source,
        "and": program.and_spec.render(),
        "unit": dump_unit(program.unit),
        "window_configs": {
            name: {"mask": list(cfg.mask),
                   "ext": {k: cfg.ext[k] for k in sorted(cfg.ext)}}
            for name, cfg in program.window_configs.items()
        },
        "layouts": {
            name: {
                "kernel_id": lo.kernel_id,
                "kernel_name": lo.kernel_name,
                "chunks": [
                    {"name": c.name, "count": c.count, "bits": c.bits,
                     "signed": c.signed}
                    for c in lo.chunks
                ],
                "ext_fields": [[n, b, s] for n, b, s in lo.ext_fields],
            }
            for name, lo in program.layouts.items()
        },
        "ref_module": dump_module(program.ref_module),
        "switch_modules": {
            label: dump_module(program.switch_modules[label])
            for label in sorted(program.switch_modules)
        },
        "switch_programs": {
            label: dump_p4_program(program.switch_programs[label])
            for label in labels
        },
        "switch_sources": {
            label: program.switch_sources[label] for label in labels
        },
        "reports": {
            label: program.reports[label].as_dict() for label in labels
        },
        "split_info": {
            label: [
                {"name": s.name, "stride": s.stride,
                 "part_names": list(s.part_names)}
                for s in splits
            ]
            for label, splits in sorted(program.split_info.items())
        },
    }


def dump_program(program) -> str:
    """Canonical, byte-stable artifact JSON for a CompiledProgram."""
    return json.dumps(
        program_payload(program), sort_keys=True, separators=(",", ":")
    ) + "\n"


def load_program(text: str):
    """Reconstruct a CompiledProgram from ``repro.nclc/1`` artifact JSON."""
    from repro.ncp.wire import ChunkLayout, KernelLayout
    from repro.nir.passes.regsplit import SplitInfo
    from repro.pisa.arch import profile_by_name
    from repro.nclc.driver import CompiledProgram, WindowConfig

    try:
        enc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact is not valid JSON: {exc}") from None
    if not isinstance(enc, dict) or enc.get("schema") != SCHEMA:
        raise ArtifactError(
            f"unsupported artifact schema {enc.get('schema')!r} "
            f"(this reader understands {SCHEMA!r})"
        )
    try:
        profile = profile_by_name(enc["profile"])
    except KeyError:
        raise ArtifactError(f"unknown chip profile {enc['profile']!r}") from None
    try:
        and_spec: AndSpec = parse_and(enc["and"])
        unit = load_unit(enc["unit"])
        window_configs = {
            name: WindowConfig(cfg["mask"], cfg["ext"])
            for name, cfg in enc["window_configs"].items()
        }
        layouts = {
            name: KernelLayout(
                lo["kernel_id"],
                lo["kernel_name"],
                [
                    ChunkLayout(c["name"], c["count"], c["bits"], c["signed"])
                    for c in lo["chunks"]
                ],
                [(n, b, s) for n, b, s in lo["ext_fields"]],
            )
            for name, lo in enc["layouts"].items()
        }
        ref_module = load_module(enc["ref_module"])
        switch_modules = {
            label: load_module(menc)
            for label, menc in enc["switch_modules"].items()
        }
        switch_programs = {
            label: load_p4_program(penc)
            for label, penc in enc["switch_programs"].items()
        }
        reports = {
            label: AcceptanceReport(**renc)
            for label, renc in enc["reports"].items()
        }
        split_info = {
            label: [
                SplitInfo(s["name"], s["stride"], list(s["part_names"]))
                for s in splits
            ]
            for label, splits in enc["split_info"].items()
        }
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed artifact: {exc!r}") from None
    return CompiledProgram(
        unit=unit,
        ref_module=ref_module,
        and_spec=and_spec,
        layouts=layouts,
        window_configs=window_configs,
        switch_programs=switch_programs,
        switch_sources=dict(enc["switch_sources"]),
        reports=reports,
        stats={},
        stage_times={},
        profile=profile,
        source=enc["source"],
        split_info=split_info,
        compile_trace=None,
        opt_level=int(enc["opt_level"]),
        switch_modules=switch_modules,
    )
