"""Conformance checking (nclc stage 1, paper S5).

"Not all LLVM IR maps to PISA": this stage rejects NCL programs whose
switch-side IR cannot be realized on a match-action pipeline, before any
expensive transformation runs. Checks:

* no recursion in the helper-call graph (direct or mutual);
* no general division/modulo in outgoing kernels (power-of-two divisors
  are fine -- they strength-reduce to shifts later; the check here is a
  conservative early warning mirroring the pass pipeline's guarantees);
* location consistency: a kernel pinned to ``_at_("s1")`` may not touch
  switch memory pinned to another location (the paper names "location
  conflicts between kernels and switch memory" as a stage-1 check);
* all ``_at_``/``_pass``/``_locid`` labels exist in the AND and name
  switches;
* window masks match kernel signatures (delegated to the layout builder
  but validated here for early diagnostics).

Loop trip-count constancy is *not* checked here -- it cannot be decided
before window specialization, so the unroller performs it and raises the
same :class:`ConformanceError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.errors import ConformanceError
from repro.andspec.model import AndSpec
from repro.nir import ir


def check_module(module: ir.Module, and_spec: Optional[AndSpec] = None) -> List[str]:
    """Run all conformance checks; returns a list of informational notes.

    Raises :class:`ConformanceError` on the first hard violation.
    """
    notes: List[str] = []
    _check_no_recursion(module)
    for fn in module.kernels(ir.FunctionKind.OUT_KERNEL):
        _check_kernel_ops(fn)
        _check_location_conflicts(module, fn)
        if and_spec is not None:
            _check_labels(fn, and_spec)
    if and_spec is not None:
        _check_global_labels(module, and_spec)
    return notes


def _check_no_recursion(module: ir.Module) -> None:
    graph: Dict[str, Set[str]] = {}
    for fn in module.functions.values():
        callees = {
            instr.callee.name
            for instr in fn.instructions()
            if isinstance(instr, ir.CallFn)
        }
        graph[fn.name] = callees

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def visit(name: str, path: List[str]) -> None:
        color[name] = GRAY
        for callee in graph.get(name, ()):
            if color.get(callee) == GRAY:
                cycle = " -> ".join(path + [name, callee])
                raise ConformanceError(
                    f"recursive call chain cannot map to PISA: {cycle}"
                )
            if color.get(callee) == WHITE:
                visit(callee, path + [name])
        color[name] = BLACK

    for name in graph:
        if color[name] == WHITE:
            visit(name, [])


def _check_kernel_ops(fn: ir.Function) -> None:
    for instr in fn.instructions():
        if isinstance(instr, ir.BinOp) and instr.op in ("udiv", "sdiv", "urem", "srem"):
            divisor = instr.rhs
            if isinstance(divisor, ir.Const) and divisor.value > 0 and (
                divisor.value & (divisor.value - 1)
            ) == 0:
                continue  # strength-reduced to a shift/mask later
            raise ConformanceError(
                f"{fn.name}: {instr.op} with a non-power-of-two divisor "
                "cannot map to the PISA ALU"
            )


def _check_location_conflicts(module: ir.Module, fn: ir.Function) -> None:
    if fn.at_label is None:
        return
    for instr in fn.instructions():
        ref = getattr(instr, "ref", None)
        if isinstance(ref, ir.GlobalRef) and ref.space in ("net", "ctrl", "map", "bloom"):
            if ref.at_label is not None and ref.at_label != fn.at_label:
                raise ConformanceError(
                    f"location conflict: kernel {fn.name!r} at "
                    f'"{fn.at_label}" accesses {ref.name!r} pinned to '
                    f'"{ref.at_label}"'
                )
        if isinstance(instr, ir.Memcpy):
            for region in (instr.dst, instr.src):
                gref = region.ref
                if (
                    gref is not None
                    and gref.at_label is not None
                    and gref.at_label != fn.at_label
                ):
                    raise ConformanceError(
                        f"location conflict: kernel {fn.name!r} at "
                        f'"{fn.at_label}" memcpys {gref.name!r} pinned to '
                        f'"{gref.at_label}"'
                    )


def _kernel_labels(fn: ir.Function) -> Iterable[str]:
    for instr in fn.instructions():
        if isinstance(instr, ir.Fwd) and instr.label is not None:
            yield instr.label
        elif isinstance(instr, ir.LocLabel):
            yield instr.label


def _check_labels(fn: ir.Function, and_spec: AndSpec) -> None:
    known = set(and_spec.label_ids())
    if fn.at_label is not None and fn.at_label not in known:
        raise ConformanceError(
            f'kernel {fn.name!r}: _at_("{fn.at_label}") is not in the AND'
        )
    for label in _kernel_labels(fn):
        if label not in known:
            raise ConformanceError(
                f"kernel {fn.name!r}: label {label!r} is not in the AND"
            )


def _check_global_labels(module: ir.Module, and_spec: AndSpec) -> None:
    known = and_spec.label_ids()
    for ref in module.globals.values():
        if ref.at_label is None:
            continue
        if ref.at_label not in known:
            raise ConformanceError(
                f'global {ref.name!r}: _at_("{ref.at_label}") is not in the AND'
            )
        node = and_spec.node(ref.at_label)
        if ref.space in ("net", "ctrl", "map", "bloom") and not node.is_switch:
            raise ConformanceError(
                f"global {ref.name!r}: switch state cannot be pinned to "
                f"host {ref.at_label!r}"
            )
