"""Conformance checking (nclc stage 1, paper S5).

"Not all LLVM IR maps to PISA": this stage rejects NCL programs whose
switch-side IR cannot be realized on a match-action pipeline, before any
expensive transformation runs. Checks:

* no recursion in the helper-call graph (direct or mutual);
* no general division/modulo in outgoing kernels (power-of-two divisors
  are fine -- they strength-reduce to shifts later; the check here is a
  conservative early warning mirroring the pass pipeline's guarantees);
* location consistency: a kernel pinned to ``_at_("s1")`` may not touch
  switch memory pinned to another location (the paper names "location
  conflicts between kernels and switch memory" as a stage-1 check);
* all ``_at_``/``_pass``/``_locid`` labels exist in the AND and name
  switches;
* window masks match kernel signatures (delegated to the layout builder
  but validated here for early diagnostics).

Loop trip-count constancy is *not* checked here -- it cannot be decided
before window specialization, so the unroller performs it and raises the
same :class:`ConformanceError`.

Two failure modes, mirroring :mod:`repro.ncl.sema`: without a sink the
first violation raises :class:`ConformanceError` (the compile pipeline's
behaviour); with a :class:`repro.diag.DiagnosticSink` every violation is
recorded as a structured ``NCL06xx`` diagnostic -- with the source span
of the offending instruction when NIR carries one -- and checking
continues.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.diag import DiagnosticSink
from repro.errors import ConformanceError, SourceLocation
from repro.andspec.model import AndSpec
from repro.nir import ir

#: Diagnostic codes for the conformance stage.
CODE_RECURSION = "NCL0601"
CODE_DIVMOD = "NCL0602"
CODE_LOCATION_CONFLICT = "NCL0603"
CODE_UNKNOWN_LABEL = "NCL0604"
CODE_HOST_PINNED_STATE = "NCL0605"

_Fail = Callable[..., None]


def check_module(
    module: ir.Module,
    and_spec: Optional[AndSpec] = None,
    sink: Optional[DiagnosticSink] = None,
    unit: object = None,
) -> List[str]:
    """Run all conformance checks; returns a list of informational notes.

    Without *sink*, raises :class:`ConformanceError` on the first hard
    violation. With a sink, records every violation and returns.
    """
    notes: List[str] = []

    def fail(code: str, message: str, loc: Optional[SourceLocation] = None) -> None:
        if sink is None:
            raise ConformanceError(message)
        sink.error(code, message, loc, rule="conformance")

    _check_no_recursion(module, fail)
    for fn in module.kernels(ir.FunctionKind.OUT_KERNEL):
        _check_kernel_ops(fn, fail)
        _check_location_conflicts(module, fn, fail)
        if and_spec is not None:
            _check_labels(fn, and_spec, fail)
    if and_spec is not None:
        _check_global_labels(module, and_spec, fail)
    return notes


def _check_no_recursion(module: ir.Module, fail: _Fail) -> None:
    graph: Dict[str, Set[str]] = {}
    for fn in module.functions.values():
        callees = {
            instr.callee.name
            for instr in fn.instructions()
            if isinstance(instr, ir.CallFn)
        }
        graph[fn.name] = callees

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def visit(name: str, path: List[str]) -> None:
        color[name] = GRAY
        for callee in graph.get(name, ()):
            if color.get(callee) == GRAY:
                cycle = " -> ".join(path + [name, callee])
                fail(
                    CODE_RECURSION,
                    f"recursive call chain cannot map to PISA: {cycle}",
                )
            elif color.get(callee) == WHITE:
                visit(callee, path + [name])
        color[name] = BLACK

    for name in graph:
        if color[name] == WHITE:
            visit(name, [])


def _check_kernel_ops(fn: ir.Function, fail: _Fail) -> None:
    for instr in fn.instructions():
        if isinstance(instr, ir.BinOp) and instr.op in ("udiv", "sdiv", "urem", "srem"):
            divisor = instr.rhs
            if isinstance(divisor, ir.Const) and divisor.value > 0 and (
                divisor.value & (divisor.value - 1)
            ) == 0:
                continue  # strength-reduced to a shift/mask later
            fail(
                CODE_DIVMOD,
                f"{fn.name}: {instr.op} with a non-power-of-two divisor "
                "cannot map to the PISA ALU",
                instr.loc,
            )


def _check_location_conflicts(module: ir.Module, fn: ir.Function, fail: _Fail) -> None:
    if fn.at_label is None:
        return
    for instr in fn.instructions():
        ref = getattr(instr, "ref", None)
        if isinstance(ref, ir.GlobalRef) and ref.space in ("net", "ctrl", "map", "bloom"):
            if ref.at_label is not None and ref.at_label != fn.at_label:
                fail(
                    CODE_LOCATION_CONFLICT,
                    f"location conflict: kernel {fn.name!r} at "
                    f'"{fn.at_label}" accesses {ref.name!r} pinned to '
                    f'"{ref.at_label}"',
                    instr.loc,
                )
        if isinstance(instr, ir.Memcpy):
            for region in (instr.dst, instr.src):
                gref = region.ref
                if (
                    gref is not None
                    and gref.at_label is not None
                    and gref.at_label != fn.at_label
                ):
                    fail(
                        CODE_LOCATION_CONFLICT,
                        f"location conflict: kernel {fn.name!r} at "
                        f'"{fn.at_label}" memcpys {gref.name!r} pinned to '
                        f'"{gref.at_label}"',
                        instr.loc,
                    )


def _kernel_labels(fn: ir.Function) -> Iterable[ir.Instr]:
    for instr in fn.instructions():
        if isinstance(instr, ir.Fwd) and instr.label is not None:
            yield instr
        elif isinstance(instr, ir.LocLabel):
            yield instr


def _check_labels(fn: ir.Function, and_spec: AndSpec, fail: _Fail) -> None:
    known = set(and_spec.label_ids())
    if fn.at_label is not None and fn.at_label not in known:
        fail(
            CODE_UNKNOWN_LABEL,
            f'kernel {fn.name!r}: _at_("{fn.at_label}") is not in the AND',
        )
    for instr in _kernel_labels(fn):
        if instr.label not in known:
            fail(
                CODE_UNKNOWN_LABEL,
                f"kernel {fn.name!r}: label {instr.label!r} is not in the AND",
                instr.loc,
            )


def _check_global_labels(module: ir.Module, and_spec: AndSpec, fail: _Fail) -> None:
    known = and_spec.label_ids()
    for ref in module.globals.values():
        if ref.at_label is None:
            continue
        if ref.at_label not in known:
            fail(
                CODE_UNKNOWN_LABEL,
                f'global {ref.name!r}: _at_("{ref.at_label}") is not in the AND',
            )
            continue
        node = and_spec.node(ref.at_label)
        if ref.space in ("net", "ctrl", "map", "bloom") and not node.is_switch:
            fail(
                CODE_HOST_PINNED_STATE,
                f"global {ref.name!r}: switch state cannot be pinned to "
                f"host {ref.at_label!r}",
            )
