"""nclc: the NCL compiler (conformance, versioning, optimization, codegen)."""

from repro.nclc.driver import CompiledProgram, Compiler, WindowConfig

__all__ = ["CompiledProgram", "Compiler", "WindowConfig"]
