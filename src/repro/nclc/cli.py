"""Shared command-line plumbing for the nclc subcommands.

``python -m repro.nclc build`` (the default) and ``python -m repro.nclc
lint`` historically each built their own ``argparse`` parser and
duplicated the ``--and`` / ``-D`` / ``--profile`` handling; both now get
those from :func:`add_common_args` and the value parsing from the
helpers here, so a flag behaves identically in every subcommand.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, Optional


class UsageError(Exception):
    """Bad command-line input (malformed ``-D``, unreadable ``--and``
    file). Subcommand mains catch it, print ``error: ...``, and exit 2."""


def parse_kv(pairs, cast=int) -> Dict[str, int]:
    """Parse repeated ``NAME=VALUE`` options (``-D``, ``--ext``)."""
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise UsageError(f"expected NAME=VALUE, got {pair!r}")
        name, _, value = pair.partition("=")
        try:
            out[name.strip()] = cast(value)
        except ValueError:
            raise UsageError(f"bad value in {pair!r}")
    return out


def add_common_args(parser: argparse.ArgumentParser) -> None:
    """Options every nclc subcommand understands the same way."""
    parser.add_argument(
        "--profile",
        default="bmv2",
        help="target chip profile: bmv2 | tofino-like (default: bmv2)",
    )
    parser.add_argument("--and", dest="and_file", help="AND overlay file")
    parser.add_argument(
        "-D",
        dest="defines",
        action="append",
        metavar="NAME=VALUE",
        help="constant definition (repeatable)",
    )


def read_and_text(args) -> Optional[str]:
    """The AND overlay text named by ``--and``, or None."""
    if not args.and_file:
        return None
    try:
        return Path(args.and_file).read_text()
    except OSError as exc:
        raise UsageError(f"cannot read AND file: {exc}")


def build_parser() -> argparse.ArgumentParser:
    """The ``nclc build`` parser (also the bare ``nclc <src>`` form)."""
    parser = argparse.ArgumentParser(
        prog="nclc", description="NCL compiler (NCL -> P4 for PISA switches)"
    )
    parser.add_argument("source", help="NCL source file")
    add_common_args(parser)
    parser.add_argument(
        "-o", "--output", default=".", help="output directory (default: cwd)"
    )
    parser.add_argument(
        "-O",
        dest="opt_level",
        type=int,
        choices=(0, 1, 2),
        default=2,
        metavar="{0,1,2}",
        help="optimization level: -O0 minimum passes, -O1 adds DCE + store "
        "forwarding, -O2 the full menu with GVN and store merging "
        "(default: -O2)",
    )
    parser.add_argument(
        "--emit",
        choices=("ast", "nir", "absint", "effects", "p4", "artifact"),
        default="p4",
        help="what to produce: 'ast' prints the parse tree, 'nir' the "
        "optimized per-switch NIR, 'absint' the abstract-interpretation "
        "facts (value ranges + known bits) per switch kernel, 'effects' "
        "the replay-safety effect summaries per switch kernel, 'p4' writes "
        "per-switch .p4 + reports (default), 'artifact' writes one "
        "repro.nclc/1 JSON artifact loadable with CompiledProgram.load",
    )
    parser.add_argument(
        "--verify-opt",
        action="store_true",
        help="translation-validate every optimization pass: snapshot each "
        "kernel before the pass, then check the output via differential "
        "interpretation + abstract invariants; a miscompile fails the "
        "build naming the offending pass",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="content-addressed artifact cache directory; unchanged "
        "rebuilds become cache hits",
    )
    parser.add_argument(
        "--window",
        dest="windows",
        action="append",
        metavar="KERNEL=N[,N...]",
        help="window mask for an outgoing kernel (repeatable)",
    )
    parser.add_argument(
        "--ext",
        dest="exts",
        action="append",
        metavar="FIELD=VALUE",
        help="window extension field value (applies to all kernels)",
    )
    parser.add_argument(
        "--no-split",
        action="store_true",
        help="disable the register-array splitting transformation",
    )
    parser.add_argument(
        "--dump-ir",
        action="store_true",
        help="print the generated switch P4 instead of writing artifacts "
        "(alias of --emit p4 to stdout; use --emit nir for the NIR)",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print per-stage and per-pass wall time with IR-size deltas",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the compile timeline as Chrome trace-event JSON "
        "(open in chrome://tracing or Perfetto)",
    )
    return parser


def dump_ast(node, indent: int = 0, name: str = "") -> str:
    """Plain-text rendering of an NCL AST subtree (``--emit ast``)."""
    from repro.ncl import ast

    pad = "  " * indent
    label = f"{name}: " if name else ""
    if isinstance(node, ast.Node):
        scalars = []
        children = []
        for key, value in sorted(vars(node).items()):
            if key == "loc":
                continue
            if isinstance(value, (ast.Node, list)) and value:
                children.append((key, value))
            elif not isinstance(value, (ast.Node, list)):
                scalars.append(f"{key}={value!r}")
        head = f"{pad}{label}{type(node).__name__}"
        if scalars:
            head += " (" + ", ".join(scalars) + ")"
        lines = [head]
        for key, value in children:
            lines.append(dump_ast(value, indent + 1, key))
        return "\n".join(lines)
    if isinstance(node, list):
        lines = [f"{pad}{label}["]
        for item in node:
            lines.append(dump_ast(item, indent + 1))
        lines.append(f"{pad}]")
        return "\n".join(lines)
    return f"{pad}{label}{node!r}"
