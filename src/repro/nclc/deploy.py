"""``python -m repro.nclc check-deploy`` -- the whole-fabric checker CLI.

Statically admits (or rejects, with diagnostics) a multi-tenant
deployment manifest: N compiled programs mapped onto one physical
fabric. Runs every check in :mod:`repro.analysis.deploy.checks` --
resource admission, tenant isolation, placement/reachability, transport
invariants -- and renders either the human-readable report (per-switch
utilization, caret excerpts, verdict line) or the byte-deterministic
``repro.deploy/1`` JSON form for tooling and golden tests.

Exit codes match ``nclc lint``: 0 admissible (warnings allowed), 1
error-level findings (including promoted warnings under ``--werror``),
2 usage/manifest/compile errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.deploy import (
    all_checks,
    check_deployment,
    parse_deployment,
    render_report_json,
    render_report_text,
)
from repro.errors import DeployError, NclError, ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nclc check-deploy",
        description=(
            "Whole-fabric static admission for multi-tenant deployments"
        ),
    )
    parser.add_argument("manifest", nargs="?", help="deployment manifest file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic repro.deploy/1 JSON report",
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as errors (exit 1 on any finding)",
    )
    parser.add_argument(
        "-O",
        dest="opt_level",
        type=int,
        choices=(0, 1, 2),
        default=2,
        help="optimization level used when compiling tenant programs",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered deployment checks and exit",
    )
    return parser


def list_rules() -> None:
    """Print the check registry in the ``nclc lint --list-rules`` format."""
    for check in all_checks():
        codes = ", ".join(check.codes)
        print(f"{check.name:20} {codes:46} {check.about}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        list_rules()
        print()
        print("transport-safety checks (nclc check-proto):")
        from repro.nclc.proto import list_rules as list_proto_rules

        list_proto_rules()
        return 0
    if not args.manifest:
        print("error: no deployment manifest given", file=sys.stderr)
        return 2

    try:
        text = Path(args.manifest).read_text()
    except OSError as exc:
        print(f"error: cannot read {args.manifest}: {exc}", file=sys.stderr)
        return 2
    try:
        deployment = parse_deployment(
            text, args.manifest, opt_level=args.opt_level
        )
    except DeployError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except NclError as exc:
        print(f"error: tenant program failed to compile: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    ctx = check_deployment(deployment)
    if args.werror:
        ctx.sink.promote_warnings()

    if args.json:
        sys.stdout.write(render_report_json(ctx))
    else:
        sys.stdout.write(render_report_text(ctx))
    return 1 if ctx.sink.has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
