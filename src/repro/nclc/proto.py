"""``python -m repro.nclc check-proto`` -- the transport-safety CLI.

Compiles one or more NCL programs and verifies that every kernel's
shared-state updates are safe under the NCP transport's failure modes
(loss, duplication, reorder, retransmit, switch restart): the effect
summaries of :mod:`repro.analysis.effects` composed with the
explicit-state window model checker of :mod:`repro.analysis.proto`.
Renders either the human-readable report (per-kernel effect lattice,
verdict, minimal counterexample schedule) or the byte-deterministic
``repro.proto/1`` JSON form for tooling and golden tests.

Exit codes match ``nclc lint``: 0 replay-safe (warnings allowed), 1
error-level findings (including promoted warnings under ``--werror``),
2 usage/compile errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.proto import (
    ProtoContext,
    all_checks,
    render_report_json,
    render_report_text,
    run_checks,
)
from repro.diag import DiagnosticSink
from repro.errors import NclError, ReproError
from repro.nclc import cli
from repro.nclc.driver import Compiler, WindowConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nclc check-proto",
        description=(
            "Transport-safety verifier: kernel effect summaries + the "
            "NCP window model checker"
        ),
    )
    parser.add_argument("sources", nargs="*", help="NCL source files")
    cli.add_common_args(parser)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic repro.proto/1 JSON report",
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as errors (exit 1 on any finding)",
    )
    parser.add_argument(
        "-O",
        dest="opt_level",
        type=int,
        choices=(0, 1, 2),
        default=2,
        help="optimization level used when compiling the programs",
    )
    parser.add_argument(
        "--window",
        dest="windows",
        action="append",
        metavar="KERNEL=N[,N...]",
        help="window mask for an outgoing kernel (repeatable)",
    )
    parser.add_argument(
        "--ext",
        dest="exts",
        action="append",
        metavar="FIELD=VALUE",
        help="window extension field value (applies to all kernels)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered transport-safety checks and exit",
    )
    return parser


def list_rules() -> None:
    """Print the check registry in the ``nclc lint --list-rules`` format."""
    for check in all_checks():
        codes = ", ".join(check.codes)
        print(f"{check.name:20} {codes:46} {check.about}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        list_rules()
        return 0
    if not args.sources:
        print("error: no source files given", file=sys.stderr)
        return 2

    try:
        defines = cli.parse_kv(args.defines)
        and_text = cli.read_and_text(args)
        ext = cli.parse_kv(args.exts)
    except cli.UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    windows = {}
    for spec in args.windows or []:
        kernel, _, mask_text = spec.partition("=")
        try:
            mask = tuple(int(m) for m in mask_text.split(","))
        except ValueError:
            print(f"error: bad window spec {spec!r}", file=sys.stderr)
            return 2
        windows[kernel.strip()] = WindowConfig(mask=mask, ext=ext)

    exit_code = 0
    for src_path in args.sources:
        try:
            text = Path(src_path).read_text()
        except OSError as exc:
            print(f"error: cannot read {src_path}: {exc}", file=sys.stderr)
            return 2
        try:
            program = Compiler(
                profile=args.profile, opt_level=args.opt_level
            ).compile(
                text,
                and_text=and_text,
                windows=windows or None,
                defines=defines or None,
                filename=src_path,
            )
        except (NclError, ReproError) as exc:
            print(f"error: {src_path}: {exc}", file=sys.stderr)
            return 2

        ctx = ProtoContext(program, DiagnosticSink())
        run_checks(ctx)
        if args.werror:
            ctx.sink.promote_warnings()
        if args.json:
            sys.stdout.write(render_report_json(ctx))
        else:
            sys.stdout.write(render_report_text(ctx))
        if ctx.sink.has_errors:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
