"""The nclc pass manager.

The compile path is an explicit pipeline of *registered* passes, the
shape LLVM's ``PassBuilder`` gives a compiler: every stage of the
paper's Fig 6 trajectory (frontend lex -> parse -> sema -> conformance,
the per-kernel NIR pipelines, and the backend and-mapping -> codegen ->
P4 emission) is a named :class:`CompilePass` with declared inputs and
outputs, run by a :class:`PassManager` over a :class:`PipelineContext`.

Why this shape (vs the former ~140-line monolithic ``Compiler.compile``):

* pipelines are *data* -- the ``-O0/-O1/-O2`` presets select per-kernel
  NIR pass lists by name, and the full pipeline fingerprints into the
  artifact-cache key (:mod:`repro.nclc.cache`), so a pipeline change
  invalidates cached artifacts exactly like a source change;
* per-pass wall time is emitted uniformly by the manager (the
  :class:`repro.obs.CompileTrace` integration is in one place, not
  sprinkled through the driver);
* passes report failures through a :class:`repro.diag.DiagnosticSink`
  when one is supplied, so tooling sees structured diagnostics;
* *preserved-analysis invalidation*: analysis results ("conformance
  holds", "IR verified") are tracked per pass; a transform that does not
  declare an analysis preserved invalidates it, and a later pass
  requiring it triggers recomputation through its producer.

The registry here covers the driver-level (module/program) passes; the
function-level NIR passes have their own registry in
:mod:`repro.nir.passes` and are driven per kernel by the ``host-opt``
and ``switch-opt`` passes below.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.andspec.model import parse_and
from repro.errors import PipelineError, ReproError
from repro.ncl.parser import Parser
from repro.ncl.lexer import tokenize
from repro.ncl.sema import TranslationUnit, analyze
from repro.ncp.wire import KernelLayout, layout_for_kernel
from repro.nir import ir
from repro.nir.lower import lower_unit
from repro.nir.passes import (
    PassStats,
    host_pipeline,
    run_function_pipeline,
    switch_pipeline,
)
from repro.p4.backend import check_program
from repro.p4.printer import print_program
from repro.nclc.codegen import build_switch_program
from repro.nclc.conformance import check_module
from repro.nclc.versioning import version_module

#: Version string baked into every artifact and cache key. Bump on any
#: change that alters generated artifacts without changing pass names.
NCLC_VERSION = "nclc-1.1.0"


class PipelineContext:
    """Everything the passes read and write during one compilation.

    ``artifacts`` is the blackboard: passes declare which keys they
    require/provide. ``options`` carries the compiler configuration
    (profile, opt_level, max_unroll, split_arrays). ``valid_analyses``
    tracks which analysis results currently hold.
    """

    def __init__(
        self,
        source: str,
        filename: str = "<ncl>",
        defines=None,
        and_text: Optional[str] = None,
        windows=None,
        options: Optional[Dict[str, object]] = None,
        trace=None,
        sink=None,
    ):
        self.artifacts: Dict[str, object] = {
            "source": source,
            "filename": filename,
            "defines": dict(defines or {}),
            "and_text": and_text,
            "windows_in": windows,
        }
        self.options: Dict[str, object] = dict(options or {})
        self.trace = trace
        self.sink = sink
        self.valid_analyses: set = set()
        self.stage_times: Dict[str, float] = {}
        self.stats: Dict[str, PassStats] = {}

    # -- blackboard access ---------------------------------------------------

    def get(self, key: str):
        if key not in self.artifacts:
            raise PipelineError(f"pipeline artifact {key!r} not produced yet")
        return self.artifacts[key]

    def put(self, key: str, value) -> None:
        self.artifacts[key] = value

    def opt(self, key: str, default=None):
        return self.options.get(key, default)


class CompilePass:
    """One registered driver-level pass.

    ``requires``/``provides`` name blackboard keys; ``analysis`` marks a
    pass whose product is an analysis result (invalidated by transforms
    that do not preserve it); ``preserves`` lists analyses a transform
    keeps valid (``"*"`` = all).
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[PipelineContext], None],
        requires: Sequence[str] = (),
        provides: Sequence[str] = (),
        analysis: bool = False,
        preserves: Sequence[str] = (),
        about: str = "",
        trace_stage: Optional[str] = "",
    ):
        self.name = name
        self.fn = fn
        self.requires = tuple(requires)
        self.provides = tuple(provides)
        self.analysis = analysis
        self.preserves = tuple(preserves)
        self.about = about
        #: the coarse stage this pass reports under (CompileTrace stage
        #: records and ``stage_times`` keys); "" means "own name", None
        #: means untimed-in-trace (bookkeeping passes).
        self.trace_stage = name if trace_stage == "" else trace_stage

    def __repr__(self) -> str:
        return f"CompilePass({self.name})"


COMPILE_PASSES: Dict[str, CompilePass] = {}

#: analysis name -> the pass that (re)computes it
_ANALYSIS_PRODUCERS: Dict[str, str] = {}


def register_compile_pass(
    name: str,
    requires: Sequence[str] = (),
    provides: Sequence[str] = (),
    analysis: bool = False,
    preserves: Sequence[str] = (),
    about: str = "",
    trace_stage: Optional[str] = "",
):
    """Decorator registering a driver-level pass under a stable name."""

    def deco(fn: Callable[[PipelineContext], None]):
        if name in COMPILE_PASSES:
            raise PipelineError(f"duplicate compile pass {name!r}")
        cpass = CompilePass(
            name, fn, requires, provides, analysis, preserves, about, trace_stage
        )
        COMPILE_PASSES[name] = cpass
        if analysis:
            for key in provides:
                _ANALYSIS_PRODUCERS[key] = name
        return fn

    return deco


class PassManager:
    """Runs a named pipeline of compile passes over a context.

    Per-pass wall time lands in ``ctx.stage_times`` (and the
    :class:`repro.obs.CompileTrace`, when one rides along); failures are
    reported through the context's diagnostic sink before propagating.
    """

    def __init__(self, pipeline: Sequence[str]):
        unknown = [n for n in pipeline if n not in COMPILE_PASSES]
        if unknown:
            raise PipelineError(f"unknown compile passes: {unknown}")
        self.pipeline = list(pipeline)

    def run(self, ctx: PipelineContext) -> PipelineContext:
        # Consecutive passes sharing a trace stage become ONE coarse
        # CompileTrace stage record (lex/parse/sema -> "frontend"),
        # preserving the driver's historical stage trajectory.
        for stage, group in self._grouped():
            if stage is not None and ctx.trace is not None:
                with ctx.trace.stage(stage):
                    for cpass in group:
                        self._run_one(cpass, ctx)
            else:
                for cpass in group:
                    self._run_one(cpass, ctx)
        return ctx

    # -- internals -----------------------------------------------------------

    def _grouped(self) -> List[Tuple[Optional[str], List[CompilePass]]]:
        groups: List[Tuple[Optional[str], List[CompilePass]]] = []
        for name in self.pipeline:
            cpass = COMPILE_PASSES[name]
            stage = cpass.trace_stage
            if groups and groups[-1][0] == stage and stage is not None:
                groups[-1][1].append(cpass)
            else:
                groups.append((stage, [cpass]))
        return groups

    def _run_one(self, cpass: CompilePass, ctx: PipelineContext) -> None:
        for key in cpass.requires:
            if key in _ANALYSIS_PRODUCERS and key not in ctx.valid_analyses:
                # Preserved-analysis machinery: recompute through the
                # registered producer (it must not itself be broken).
                producer = COMPILE_PASSES[_ANALYSIS_PRODUCERS[key]]
                if producer.name != cpass.name:
                    self._run_one(producer, ctx)
            if key not in ctx.artifacts and key not in ctx.valid_analyses:
                raise PipelineError(
                    f"pass {cpass.name!r} requires {key!r}, which no earlier "
                    "pass produced"
                )
        t0 = time.perf_counter()
        try:
            cpass.fn(ctx)
        except ReproError as exc:
            if ctx.sink is not None:
                ctx.sink.error(
                    "NCL0990",
                    f"compile pass {cpass.name!r} failed: {exc}",
                    loc=getattr(exc, "loc", None),
                )
            raise
        finally:
            wall = time.perf_counter() - t0
            key = cpass.trace_stage or cpass.name
            ctx.stage_times[key] = ctx.stage_times.get(key, 0.0) + wall
        if cpass.analysis:
            ctx.valid_analyses.update(cpass.provides)
        else:
            # Transforms invalidate every analysis they do not preserve.
            if "*" not in cpass.preserves:
                ctx.valid_analyses &= set(cpass.preserves)


# ---------------------------------------------------------------------------
# Pipeline presets
# ---------------------------------------------------------------------------

#: The frontend pipeline (paper Fig 6, left half).
FRONTEND_PASSES: Tuple[str, ...] = ("lex", "parse", "sema")

#: The full build pipeline; identical pass *names* at every -O level --
#: the opt level parameterizes the per-kernel NIR pipelines inside
#: host-opt and switch-opt (see repro.nir.passes.HOST_PIPELINES).
BUILD_PASSES: Tuple[str, ...] = (
    *FRONTEND_PASSES,
    "irgen",
    "and-resolve",
    "conformance",
    "windows",
    "host-opt",
    "versioning",
    "switch-opt",
    "codegen+backend",
)


def build_pipeline(opt_level: int = 2) -> List[str]:
    """The preset driver pipeline for one ``-O`` level."""
    # Validates the level early (raises on unknown levels).
    switch_pipeline(opt_level)
    return list(BUILD_PASSES)


def pipeline_fingerprint(opt_level: int, extra: Sequence[str] = ()) -> str:
    """A stable digest of everything that determines what the pipeline
    *does*: driver pass names, the per-kernel NIR pass lists for this
    opt level, and the compiler version. Cache keys include this, so a
    pipeline or version change misses the cache exactly like a source
    change."""
    h = hashlib.sha256()
    h.update(NCLC_VERSION.encode())
    h.update(b"|driver:" + ",".join(build_pipeline(opt_level)).encode())
    h.update(b"|host:" + ",".join(host_pipeline(opt_level)).encode())
    h.update(b"|switch:" + ",".join(switch_pipeline(opt_level)).encode())
    for item in extra:
        h.update(b"|" + str(item).encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# The registered passes
# ---------------------------------------------------------------------------


@register_compile_pass(
    "lex",
    requires=("source",),
    provides=("tokens",),
    preserves=("*",),
    about="tokenize NCL source (applies -D defines)",
    trace_stage="frontend",
)
def _pass_lex(ctx: PipelineContext) -> None:
    ctx.put(
        "tokens",
        tokenize(ctx.get("source"), ctx.get("filename"), ctx.get("defines")),
    )


@register_compile_pass(
    "parse",
    requires=("tokens",),
    provides=("ast",),
    preserves=("*",),
    about="parse the token stream into the NCL AST",
    trace_stage="frontend",
)
def _pass_parse(ctx: PipelineContext) -> None:
    ctx.put("ast", Parser(ctx.get("tokens")).parse_program())


@register_compile_pass(
    "sema",
    requires=("ast",),
    provides=("unit",),
    preserves=("*",),
    about="semantic analysis: the TranslationUnit",
    trace_stage="frontend",
)
def _pass_sema(ctx: PipelineContext) -> None:
    ctx.put("unit", analyze(ctx.get("ast")))


@register_compile_pass(
    "irgen",
    requires=("unit",),
    provides=("module",),
    preserves=(),
    about="lower the TranslationUnit to NIR",
)
def _pass_irgen(ctx: PipelineContext) -> None:
    ctx.put("module", lower_unit(ctx.get("unit")))


@register_compile_pass(
    "and-resolve",
    requires=("unit",),
    provides=("and_spec",),
    preserves=("*",),
    about="parse/synthesize and validate the AND overlay",
    trace_stage=None,
)
def _pass_and_resolve(ctx: PipelineContext) -> None:
    unit: TranslationUnit = ctx.get("unit")
    required = required_labels(unit)
    and_text = ctx.get("and_text")
    spec = parse_and(and_text) if and_text is not None else default_and(required)
    spec.validate(required)
    ctx.put("and_spec", spec)


@register_compile_pass(
    "conformance",
    requires=("module", "and_spec"),
    provides=("conformance-ok",),
    analysis=True,
    about="stage-1 conformance check (paper S5)",
)
def _pass_conformance(ctx: PipelineContext) -> None:
    check_module(ctx.get("module"), ctx.get("and_spec"))


@register_compile_pass(
    "windows",
    requires=("unit",),
    provides=("window_configs", "layouts"),
    preserves=("*",),
    about="pin window geometry and derive NCP kernel layouts",
    trace_stage=None,
)
def _pass_windows(ctx: PipelineContext) -> None:
    unit: TranslationUnit = ctx.get("unit")
    configs = resolve_window_configs(unit, ctx.get("windows_in"))
    ctx.put("window_configs", configs)
    ctx.put("layouts", build_layouts(unit, configs))


@register_compile_pass(
    "host-opt",
    requires=("module", "conformance-ok"),
    provides=("host-opt-done",),
    preserves=("conformance-ok",),
    about="per-kernel host NIR pipeline (reference module)",
)
def _pass_host_opt(ctx: PipelineContext) -> None:
    module: ir.Module = ctx.get("module")
    opt_level = int(ctx.opt("opt_level", 2))
    host_stats = ctx.stats.setdefault("host", PassStats())
    label_ids = _verify_opt_label_ids(ctx)
    for fn in module.kernels():
        validator = None
        if ctx.opt("verify_opt"):
            from repro.analysis.transval import make_validator

            validator = make_validator(module, fn, label_ids=label_ids)
        run_function_pipeline(
            fn,
            host_pipeline(opt_level),
            stats=host_stats,
            trace=ctx.trace,
            stage="host",
            validator=validator,
        )
    ctx.put("host-opt-done", True)


def _verify_opt_label_ids(ctx: PipelineContext):
    """Label->id map for the --verify-opt interpreter runs (the AND is
    resolved before either opt pass, but only consult it when needed)."""
    if not ctx.opt("verify_opt"):
        return None
    return ctx.get("and_spec").label_ids()


@register_compile_pass(
    "versioning",
    requires=("module", "and_spec", "host-opt-done"),
    provides=("versions",),
    preserves=("conformance-ok",),
    about="per-AND-switch IR versioning (stage 2)",
)
def _pass_versioning(ctx: PipelineContext) -> None:
    ctx.put("versions", version_module(ctx.get("module"), ctx.get("and_spec")))


@register_compile_pass(
    "switch-opt",
    requires=("versions", "window_configs", "layouts"),
    provides=("compiled_kernels", "split_info", "switch_modules"),
    preserves=("conformance-ok",),
    about="per-kernel switch NIR pipeline + register-array splitting",
)
def _pass_switch_opt(ctx: PipelineContext) -> None:
    opt_level = int(ctx.opt("opt_level", 2))
    max_unroll = int(ctx.opt("max_unroll", 4096))
    window_configs = ctx.get("window_configs")
    layouts: Dict[str, KernelLayout] = ctx.get("layouts")
    profile = ctx.opt("profile")
    split_arrays = ctx.opt("split_arrays", "auto")

    compiled: Dict[str, List[Tuple[ir.Function, KernelLayout]]] = {}
    split_info: Dict[str, list] = {}
    switch_modules: Dict[str, ir.Module] = {}
    for version in ctx.get("versions"):
        loc_stats = ctx.stats.setdefault(version.label, PassStats())
        kernels: List[Tuple[ir.Function, KernelLayout]] = []
        for fn in version.module.kernels(ir.FunctionKind.OUT_KERNEL):
            config = window_configs[fn.name]
            pipeline = list(switch_pipeline(opt_level))
            if not config.ext:
                pipeline = [p for p in pipeline if p != "specialize-window"]
            validator = None
            if ctx.opt("verify_opt"):
                from repro.analysis.transval import make_validator

                label_ids = _verify_opt_label_ids(ctx)
                validator = make_validator(
                    version.module,
                    fn,
                    window_spec=config.ext,
                    label_ids=label_ids,
                    location_id=label_ids.get(version.label, 0),
                )
            run_function_pipeline(
                fn,
                pipeline,
                stats=loc_stats,
                trace=ctx.trace,
                stage=version.label,
                options={"window_spec": config.ext, "max_trips": max_unroll},
                validator=validator,
            )
            kernels.append((fn, layouts[fn.name]))
        # Arch-specific transformation: split register arrays when the
        # chip allows fewer accesses per array than the kernels make.
        want_split = split_arrays is True or (
            split_arrays == "auto"
            and profile is not None
            and profile.max_register_accesses_per_array <= 4
        )
        if want_split:
            from repro.nir.passes import split_register_arrays

            splits = split_register_arrays(
                version.module, profile.max_register_accesses_per_array
            )
            if splits:
                split_info[version.label] = splits
        compiled[version.label] = kernels
        switch_modules[version.label] = version.module
    ctx.put("compiled_kernels", compiled)
    ctx.put("split_info", split_info)
    ctx.put("switch_modules", switch_modules)


@register_compile_pass(
    "absint",
    requires=("switch_modules", "and_spec"),
    provides=("absint_facts",),
    analysis=True,
    about="per-kernel abstract-interpretation summaries (intervals + known-bits)",
)
def _pass_absint(ctx: PipelineContext) -> None:
    """Cached analysis: value-range + known-bits facts for every switch
    kernel. Not part of the build preset; any pass requiring
    ``absint_facts`` gets it (re)computed on demand, and transforms that
    do not preserve it invalidate it like any other analysis."""
    from repro.analysis.absint import analyze_module

    label_ids = ctx.get("and_spec").label_ids()
    switch_modules = ctx.get("switch_modules")
    ctx.put(
        "absint_facts",
        {
            label: analyze_module(switch_modules[label], label_ids=label_ids)
            for label in sorted(switch_modules)
        },
    )


@register_compile_pass(
    "codegen+backend",
    requires=("module", "versions", "compiled_kernels", "and_spec"),
    provides=("switch_programs", "switch_sources", "reports"),
    preserves=("conformance-ok",),
    about="P4 codegen, template merge, backend accept/reject",
)
def _pass_codegen(ctx: PipelineContext) -> None:
    module: ir.Module = ctx.get("module")
    and_spec = ctx.get("and_spec")
    compiled = ctx.get("compiled_kernels")
    profile = ctx.opt("profile")
    label_ids = and_spec.label_ids()
    switch_programs = {}
    switch_sources = {}
    reports = {}
    for version in ctx.get("versions"):
        program = build_switch_program(
            version.module,
            compiled[version.label],
            label_ids,
            name=f"{module.name}_{version.label}",
        )
        switch_programs[version.label] = program
        switch_sources[version.label] = print_program(program)
        reports[version.label] = check_program(program, profile)
    ctx.put("switch_programs", switch_programs)
    ctx.put("switch_sources", switch_sources)
    ctx.put("reports", reports)


# ---------------------------------------------------------------------------
# Helpers shared with the driver
# ---------------------------------------------------------------------------


def required_labels(unit: TranslationUnit) -> List[str]:
    labels = []
    for info in unit.out_kernels.values():
        if info.at_label:
            labels.append(info.at_label)
    for gvar in (
        list(unit.net_globals.values())
        + list(unit.ctrl_vars.values())
        + list(unit.maps.values())
        + list(unit.blooms.values())
    ):
        if gvar.at_label:
            labels.append(gvar.at_label)
    return sorted(set(labels))


def default_and(required: List[str]):
    """Synthesize a chain AND when the program does not supply one:
    h0 -- s1 -- ... -- h1, with one switch per required label."""
    from repro.andspec.model import AndSpec

    spec = AndSpec()
    spec.add_host("h0")
    labels = required or ["s1"]
    for label in labels:
        spec.add_switch(label)
    spec.add_host("h1")
    prev = "h0"
    for label in labels:
        spec.add_link(prev, label)
        prev = label
    spec.add_link(prev, "h1")
    return spec


def resolve_window_configs(unit: TranslationUnit, windows):
    from repro.errors import RuntimeApiError
    from repro.nclc.driver import WindowConfig

    windows = dict(windows or {})
    configs = {}
    ext_fields = [name for name, _ in unit.window_fields[3:]]  # skip builtins
    for name, info in unit.out_kernels.items():
        config = windows.pop(name, None)
        if config is None:
            config = WindowConfig(mask=(1,) * len(info.data_params))
        if len(config.mask) != len(info.data_params):
            raise RuntimeApiError(
                f"kernel {name!r}: window mask {config.mask} does not match "
                f"its {len(info.data_params)} data parameters"
            )
        missing = [f for f in ext_fields if f not in config.ext]
        if missing:
            raise RuntimeApiError(
                f"kernel {name!r}: window extension fields {missing} need "
                "compile-time values (pass them in WindowConfig.ext)"
            )
        configs[name] = config
    if windows:
        raise RuntimeApiError(
            f"window configs for unknown kernels: {sorted(windows)}"
        )
    return configs


def build_layouts(unit: TranslationUnit, configs) -> Dict[str, KernelLayout]:
    layouts: Dict[str, KernelLayout] = {}
    ext_fields = unit.window_fields[3:]  # user extension fields only
    for kid, name in enumerate(sorted(unit.out_kernels), start=1):
        info = unit.out_kernels[name]
        params = [(p.name, p.ty) for p in info.data_params]
        layouts[name] = layout_for_kernel(
            kid, name, params, configs[name].mask, ext_fields
        )
    return layouts
