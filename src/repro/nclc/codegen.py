"""NIR -> P4 code generation (nclc stage 4, paper S5).

Takes the per-location, window-specialized, fully-unrolled (acyclic) IR
of each outgoing kernel and produces one :class:`P4Program` per switch:

* window data elements become fields of a per-kernel payload header
  (``k<id>.d<param>_<elem>``) -- "window data is accessed through the
  packet part of the PHV";
* every SSA value becomes a metadata field (``meta.k<id>_v<n>``) -- the
  paper's reverse-SROA mapping of SSA registers to a metadata struct;
* ``_net_`` arrays become register extern arrays, ``_ctrl_`` variables
  become control-plane-written registers, ``ncl::Map`` becomes an exact
  match-action table whose hit action delivers the value as action data;
* basic blocks become actions; branches become control-flow gateways;
  merge points are tail-duplicated (acceptable at kernel scale, and what
  lets phis turn into per-edge metadata assignments);
* the result is merged with the template switch configuration: the
  Ethernet/IPv4/UDP/NCP parse graph, NCP kernel dispatch, and plain IPv4
  forwarding for non-NCP traffic (Fig 3b).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConformanceError
from repro.ncl.types import PointerType, Type, is_signed, scalar_bits, sizeof
from repro.ncp.wire import (
    ETH_FIELDS,
    ETHERTYPE_IPV4,
    IP_PROTO_UDP,
    IPV4_FIELDS,
    KernelLayout,
    NCP_FIELDS,
    NCP_PORT,
    UDP_FIELDS,
    FLAG_LAST,
)
from repro.nir import ir
from repro.p4.model import (
    Action,
    Apply,
    ControlNode,
    Do,
    FWD_BCAST,
    FWD_DROP,
    FWD_PASS,
    FWD_REFLECT,
    HeaderType,
    IfNode,
    META_FWD,
    META_FWD_LABEL,
    P4Program,
    ParseState,
    PAssign,
    PBin,
    PConst,
    PExpr,
    PField,
    PParam,
    PRegRead,
    PRegWrite,
    PUn,
    RegisterArray,
    Table,
)

#: metadata field carrying the chosen egress port for plain forwarding
META_EGRESS = "meta.egress_port"

_FWD_CODE = {
    ir.FwdKind.PASS: FWD_PASS,
    ir.FwdKind.DROP: FWD_DROP,
    ir.FwdKind.BCAST: FWD_BCAST,
    ir.FwdKind.REFLECT: FWD_REFLECT,
}

#: hard cap on control nodes emitted per kernel (tail-duplication guard)
MAX_CONTROL_NODES = 20_000


def _bits_of(ty: Type) -> int:
    if ty.is_pointer:
        return 8  # map tokens: materialized as found/value pairs; 8b flag
    return scalar_bits(ty)


class CodegenError(ConformanceError):
    """A construct that survived conformance checking but cannot be
    expressed on the PISA target (should not normally happen)."""


class KernelCodegen:
    """Generates the control subtree + actions for one outgoing kernel."""

    def __init__(
        self,
        program: P4Program,
        module: ir.Module,
        fn: ir.Function,
        layout: KernelLayout,
        label_ids: Dict[str, int],
    ):
        self.program = program
        self.module = module
        self.fn = fn
        self.layout = layout
        self.label_ids = label_ids
        self.kid = layout.kernel_id
        self.hdr = f"k{self.kid}"  # per-kernel payload header instance
        self._meta: Dict[int, str] = {}  # instr id -> meta field ref
        # Dense per-kernel value numbering: output must not depend on the
        # process-global instruction counter (artifact reproducibility).
        self._local_ids: Dict[int, int] = {}
        self._action_counter = 0
        self._uniq_counter = 0
        self._node_budget = MAX_CONTROL_NODES
        #: data params: param index -> chunk index in the layout
        self._chunk_index = {
            p.index: ci
            for ci, p in enumerate([p for p in fn.params if not p.ext])
        }

    # -- naming ------------------------------------------------------------

    def _lid(self, instr: ir.Instr) -> int:
        lid = self._local_ids.get(instr.id)
        if lid is None:
            lid = len(self._local_ids)
            self._local_ids[instr.id] = lid
        return lid

    def meta_field(self, instr: ir.Instr) -> str:
        ref = self._meta.get(instr.id)
        if ref is None:
            name = f"k{self.kid}_v{self._lid(instr)}"
            ref = self.program.add_metadata(name, _bits_of(instr.ty))
            self._meta[instr.id] = ref
        return ref

    def _fresh_action(self, hint: str) -> str:
        self._action_counter += 1
        return f"k{self.kid}_{hint}_{self._action_counter}"

    def data_field(self, param: ir.Param, elem: int) -> str:
        ci = self._chunk_index.get(param.index)
        if ci is None:
            raise CodegenError(
                f"{self.fn.name}: parameter {param.name!r} is not window data"
            )
        chunk = self.layout.chunks[ci]
        if not 0 <= elem < chunk.count:
            raise ConformanceError(
                f"{self.fn.name}: access to {param.name}[{elem}] is outside "
                f"the window (mask gives {chunk.count} elements per window)"
            )
        return f"{self.hdr}.d{ci}_{elem}"

    # -- operand lowering -------------------------------------------------------

    def expr_of(self, value: ir.Value) -> PExpr:
        if isinstance(value, ir.Const):
            bits = _bits_of(value.ty) if value.ty.is_scalar else 32
            return PConst(value.value & ((1 << bits) - 1) if value.value < 0 else value.value, bits)
        if isinstance(value, ir.Param):
            if isinstance(value.ty, PointerType):
                raise CodegenError(
                    f"{self.fn.name}: raw pointer {value.name!r} used as a value"
                )
            return PField(self.data_field(value, 0))
        if isinstance(value, ir.Undef):
            return PConst(0, 32)
        if isinstance(value, ir.Instr):
            return PField(self.meta_field(value))
        raise CodegenError(f"cannot lower operand {value!r}")

    def _const_index(self, value: ir.Value, what: str) -> int:
        if isinstance(value, ir.Const):
            return value.value
        raise ConformanceError(
            f"{self.fn.name}: {what} must be a compile-time constant after "
            "unrolling (window data lives in fixed PHV fields)"
        )

    # -- per-instruction translation -------------------------------------------

    def lower_instr(
        self, instr: ir.Instr, prims: List, nodes: List[ControlNode]
    ) -> None:
        """Append primitives for *instr* to the open primitive list
        ``prims``; instructions needing a table apply or control flow
        flush ``prims`` into ``nodes`` first."""
        if isinstance(instr, ir.BinOp):
            prims.append(PAssign(self.meta_field(instr), self._binop_expr(instr)))
        elif isinstance(instr, ir.UnOp):
            signed = is_signed(instr.ty) if instr.ty.is_scalar else False
            prims.append(
                PAssign(
                    self.meta_field(instr),
                    PUn(instr.op, self.expr_of(instr.operands[0]), _bits_of(instr.ty), signed),
                )
            )
        elif isinstance(instr, ir.Cast):
            prims.append(PAssign(self.meta_field(instr), self._cast_expr(instr)))
        elif isinstance(instr, ir.Select):
            from repro.p4.model import PMux

            prims.append(
                PAssign(
                    self.meta_field(instr),
                    PMux(
                        self.expr_of(instr.operands[0]),
                        self.expr_of(instr.operands[1]),
                        self.expr_of(instr.operands[2]),
                        _bits_of(instr.ty),
                    ),
                )
            )
        elif isinstance(instr, ir.LoadElem):
            reg = self._register_for(instr.ref)
            prims.append(
                PRegRead(self.meta_field(instr), reg, self.expr_of(instr.index))
            )
        elif isinstance(instr, ir.StoreElem):
            reg = self._register_for(instr.ref)
            prims.append(
                PRegWrite(reg, self.expr_of(instr.index), self.expr_of(instr.value))
            )
        elif isinstance(instr, ir.LoadParam):
            elem = self._const_index(instr.index, "window-data index")
            prims.append(
                PAssign(self.meta_field(instr), PField(self.data_field(instr.param, elem)))
            )
        elif isinstance(instr, ir.StoreParam):
            elem = self._const_index(instr.index, "window-data index")
            prims.append(
                PAssign(self.data_field(instr.param, elem), self.expr_of(instr.value))
            )
        elif isinstance(instr, ir.WinField):
            prims.append(PAssign(self.meta_field(instr), self._winfield_expr(instr)))
        elif isinstance(instr, (ir.LocField, ir.LocLabel)):
            raise CodegenError(
                f"{self.fn.name}: unresolved location reference (IR versioning "
                "must run before codegen)"
            )
        elif isinstance(instr, ir.CtrlRead):
            reg = self._register_for(instr.ref)
            index = self.expr_of(instr.index) if instr.index is not None else PConst(0, 32)
            prims.append(PRegRead(self.meta_field(instr), reg, index))
        elif isinstance(instr, ir.MapLookup):
            self._lower_map_lookup(instr, prims, nodes)
        elif isinstance(instr, ir.MapFound):
            token = instr.operands[0]
            assert isinstance(token, ir.MapLookup)
            prims.append(
                PAssign(self.meta_field(instr), PField(self._map_found_field(token)))
            )
        elif isinstance(instr, ir.MapValue):
            token = instr.operands[0]
            assert isinstance(token, ir.MapLookup)
            prims.append(
                PAssign(self.meta_field(instr), PField(self._map_value_field(token)))
            )
        elif isinstance(instr, ir.BloomOp):
            self._lower_bloom(instr, prims)
        elif isinstance(instr, ir.Memcpy):
            self._lower_memcpy(instr, prims)
        elif isinstance(instr, ir.Fwd):
            prims.append(PAssign(META_FWD, PConst(_FWD_CODE[instr.kind], 8)))
            if instr.label is not None:
                if instr.label not in self.label_ids:
                    raise ConformanceError(
                        f"{self.fn.name}: _pass label {instr.label!r} not in AND"
                    )
                prims.append(
                    PAssign(META_FWD_LABEL, PConst(self.label_ids[instr.label], 16))
                )
        elif isinstance(instr, ir.CallFn):
            raise CodegenError(
                f"{self.fn.name}: call to {instr.callee.name} survived inlining"
            )
        elif isinstance(instr, (ir.Load, ir.Store, ir.Alloca)):
            raise CodegenError(f"{self.fn.name}: stack slot survived mem2reg")
        else:
            raise CodegenError(f"{self.fn.name}: cannot lower {instr.render()}")

    def _binop_expr(self, instr: ir.BinOp) -> PExpr:
        op = instr.op
        if op in ("udiv", "sdiv", "urem", "srem"):
            raise ConformanceError(
                f"{self.fn.name}: {op} by a non-power-of-two is not supported "
                "by the PISA ALU model"
            )
        if op in ir.BinOp.COMPARES:
            bits = max(
                _bits_of(instr.lhs.ty) if instr.lhs.ty.is_scalar else 32,
                _bits_of(instr.rhs.ty) if instr.rhs.ty.is_scalar else 32,
            )
            return PBin(op, self.expr_of(instr.lhs), self.expr_of(instr.rhs), bits)
        bits = _bits_of(instr.ty)
        signed = is_signed(instr.ty) if instr.ty.is_scalar else False
        return PBin(op, self.expr_of(instr.lhs), self.expr_of(instr.rhs), bits, signed)

    def _cast_expr(self, instr: ir.Cast) -> PExpr:
        src = self.expr_of(instr.operands[0])
        src_ty = instr.operands[0].ty
        src_bits = _bits_of(src_ty) if src_ty.is_scalar else 32
        dst_bits = _bits_of(instr.ty)
        if instr.kind == "bool":
            return PBin("ne", src, PConst(0, src_bits), src_bits)
        if instr.kind == "trunc" or dst_bits <= src_bits:
            return PBin("and", src, PConst((1 << dst_bits) - 1, dst_bits), dst_bits)
        if instr.kind == "zext":
            return src
        # sext: (x ^ m) - m with m = 1 << (src_bits - 1), in dst width.
        sign_bit = 1 << (src_bits - 1)
        return PBin(
            "sub",
            PBin("xor", src, PConst(sign_bit, dst_bits), dst_bits),
            PConst(sign_bit, dst_bits),
            dst_bits,
        )

    def _winfield_expr(self, instr: ir.WinField) -> PExpr:
        field = instr.field
        if field == "seq":
            return PField("ncp.seq")
        if field == "from":
            return PField("ncp.from_node")
        if field == "last":
            return PBin("and", PField("ncp.flags"), PConst(FLAG_LAST, 8), 8)
        # user extension field
        for name, _bits, _signed in self.layout.ext_fields:
            if name == field:
                return PField(f"{self.hdr}.x_{field}")
        raise ConformanceError(
            f"{self.fn.name}: window field {field!r} is neither builtin nor "
            "in this kernel's window extension"
        )

    # -- maps ------------------------------------------------------------------

    def _map_table_name(self, ref: ir.GlobalRef) -> str:
        return f"map_{ref.name}"

    def _map_found_field(self, lookup: ir.MapLookup) -> str:
        return self.program.add_metadata(f"k{self.kid}_v{self._lid(lookup)}_found", 8)

    def _map_value_field(self, lookup: ir.MapLookup) -> str:
        bits = scalar_bits(lookup.ref.ty.value)  # type: ignore[union-attr]
        return self.program.add_metadata(f"k{self.kid}_v{self._lid(lookup)}_val", bits)

    def _ensure_map_table(self, ref: ir.GlobalRef) -> str:
        name = self._map_table_name(ref)
        if name in self.program.tables:
            return name
        key_bits = scalar_bits(ref.ty.key)  # type: ignore[union-attr]
        val_bits = scalar_bits(ref.ty.value)  # type: ignore[union-attr]
        key_field = self.program.add_metadata(f"map_{ref.name}_key", key_bits)
        found_field = self.program.add_metadata(f"map_{ref.name}_found", 8)
        val_field = self.program.add_metadata(f"map_{ref.name}_val", val_bits)
        hit = Action(
            f"map_{ref.name}_hit",
            [
                PAssign(found_field, PConst(1, 8)),
                PAssign(val_field, PParam("value", val_bits)),
            ],
            params=[("value", val_bits)],
        )
        miss = Action(
            f"map_{ref.name}_miss",
            [PAssign(found_field, PConst(0, 8)), PAssign(val_field, PConst(0, val_bits))],
        )
        self.program.add_action(hit)
        self.program.add_action(miss)
        self.program.add_table(
            Table(
                name,
                keys=[(key_field, "exact")],
                actions=[hit.name],
                default_action=miss.name,
                managed_by="control-plane",
                size=ref.ty.capacity,  # type: ignore[union-attr]
            )
        )
        return name

    def _lower_map_lookup(
        self, instr: ir.MapLookup, prims: List, nodes: List[ControlNode]
    ) -> None:
        table = self._ensure_map_table(instr.ref)
        key_field = f"meta.map_{instr.ref.name}_key"
        prims.append(PAssign(key_field, self.expr_of(instr.key)))
        self._flush(prims, nodes)
        nodes.append(Apply(table))
        # Latch the shared result fields into this lookup's own fields so
        # several lookups of the same Map can coexist in one kernel.
        prims.append(
            PAssign(self._map_found_field(instr), PField(f"meta.map_{instr.ref.name}_found"))
        )
        prims.append(
            PAssign(self._map_value_field(instr), PField(f"meta.map_{instr.ref.name}_val"))
        )

    # -- blooms ----------------------------------------------------------------

    def _lower_bloom(self, instr: ir.BloomOp, prims: List) -> None:
        from repro.ncl.types import BloomFilterType

        ty = instr.ref.ty
        assert isinstance(ty, BloomFilterType)
        reg = self._register_for(instr.ref)
        key = self.expr_of(instr.operands[0])
        results = []
        for i in range(ty.nhashes):
            idx_field = self.program.add_metadata(
                f"k{self.kid}_bf{self._lid(instr)}_i{i}", 32
            )
            # Mirrors BloomState._positions: two multiplicative hashes.
            h1 = PBin(
                "add",
                PBin("mul", key, PConst(0x9E3779B97F4A7C15, 64), 64),
                PConst(i, 64),
                64,
            )
            h2 = PBin(
                "mul",
                PBin("xor", key, PBin("lshr", key, PConst(33, 64), 64), 64),
                PConst(0xC2B2AE3D27D4EB4F, 64),
                64,
            )
            mixed = PBin("add", h1, PBin("mul", PConst(i, 64), h2, 64), 64)
            if ty.nbits & (ty.nbits - 1) == 0:
                pos = PBin("and", mixed, PConst(ty.nbits - 1, 64), 64)
            else:
                raise ConformanceError(
                    f"{self.fn.name}: BloomFilter size must be a power of two "
                    "for the PISA target (modulo is not available)"
                )
            prims.append(PAssign(idx_field, pos))
            if instr.op == "insert":
                prims.append(PRegWrite(reg, PField(idx_field), PConst(1, 8)))
            else:
                bit_field = self.program.add_metadata(
                    f"k{self.kid}_bf{self._lid(instr)}_b{i}", 8
                )
                prims.append(PRegRead(bit_field, reg, PField(idx_field)))
                results.append(PField(bit_field))
        if instr.op == "query":
            acc: PExpr = results[0]
            for r in results[1:]:
                acc = PBin("and", acc, r, 8)
            prims.append(PAssign(self.meta_field(instr), acc))

    # -- memcpy -----------------------------------------------------------------

    def _lower_memcpy(self, instr: ir.Memcpy, prims: List) -> None:
        nbytes = self._const_index(instr.nbytes, "memcpy length")
        elem_bytes = sizeof(instr.dst.elem_type)
        if sizeof(instr.src.elem_type) != elem_bytes:
            raise ConformanceError(
                f"{self.fn.name}: memcpy between different element widths"
            )
        if nbytes % elem_bytes:
            raise ConformanceError(
                f"{self.fn.name}: memcpy length {nbytes} is not a multiple of "
                f"the element size {elem_bytes}"
            )
        count = nbytes // elem_bytes
        bits = elem_bytes * 8
        for i in range(count):
            value_expr = self._region_read_expr(instr.src, instr.src_off, i, bits, prims)
            self._region_write(instr.dst, instr.dst_off, i, value_expr, prims)

    def _region_read_expr(
        self, region: ir.MemRegion, off: ir.Value, i: int, bits: int, prims: List
    ) -> PExpr:
        if region.kind == "param":
            base = self._const_index(off, "memcpy window offset")
            return PField(self.data_field(region.param, base + i))  # type: ignore[arg-type]
        reg = self._register_for(region.ref)  # type: ignore[arg-type]
        index = PBin("add", self.expr_of(off), PConst(i, 32), 32)
        self._uniq_counter += 1
        tmp = self.program.add_metadata(
            f"k{self.kid}_cp{self._uniq_counter}", bits
        )
        prims.append(PRegRead(tmp, reg, index))
        return PField(tmp)

    def _region_write(
        self, region: ir.MemRegion, off: ir.Value, i: int, value: PExpr, prims: List
    ) -> None:
        if region.kind == "param":
            base = self._const_index(off, "memcpy window offset")
            prims.append(PAssign(self.data_field(region.param, base + i), value))  # type: ignore[arg-type]
            return
        reg = self._register_for(region.ref)  # type: ignore[arg-type]
        index = PBin("add", self.expr_of(off), PConst(i, 32), 32)
        prims.append(PRegWrite(reg, index, value))

    # -- registers ---------------------------------------------------------------

    def _register_for(self, ref: ir.GlobalRef) -> str:
        name = f"reg_{ref.name}"
        if name not in self.program.registers:
            from repro.ncl.types import BloomFilterType

            if isinstance(ref.ty, BloomFilterType):
                self.program.add_register(RegisterArray(name, 8, ref.ty.nbits))
            else:
                elem = ref.elem_type
                self.program.add_register(
                    RegisterArray(
                        name,
                        scalar_bits(elem),
                        ref.total_elements,
                        signed=is_signed(elem),
                    )
                )
            reg = self.program.registers[name]
            init = getattr(ref, "init", None)
            reg.initial = list(init) if init else None  # type: ignore[attr-defined]
        return name

    # -- control structuring -------------------------------------------------------

    def _mk_action(self, hint: str, prims: List) -> str:
        name = self._fresh_action(hint)
        self.program.add_action(Action(name, prims))
        return name

    def _flush(self, prims: List, nodes: List[ControlNode]) -> None:
        if prims:
            nodes.append(Do(self._mk_action("blk", list(prims))))
            prims.clear()

    def generate(self) -> List[ControlNode]:
        """Emit this kernel's control subtree (run when ncp.kernel_id
        matches)."""
        self._check_acyclic()
        return self._emit_block(self.fn.entry, frozenset())

    def _check_acyclic(self) -> None:
        from repro.nir.cfg import natural_loops

        if natural_loops(self.fn):
            raise CodegenError(
                f"{self.fn.name}: loops survived unrolling; cannot map to PISA"
            )

    def _emit_block(self, block: ir.Block, on_path: frozenset) -> List[ControlNode]:
        if block in on_path:
            raise CodegenError(f"{self.fn.name}: cycle through {block.label}")
        self._node_budget -= 1
        if self._node_budget < 0:
            raise ConformanceError(
                f"{self.fn.name}: control-flow expansion exceeds "
                f"{MAX_CONTROL_NODES} nodes (too much branch duplication)"
            )
        nodes: List[ControlNode] = []
        prims: List = []
        for instr in block.non_phis():
            if instr.is_terminator:
                break
            self.lower_instr(instr, prims, nodes)
        term = block.terminator
        if isinstance(term, ir.Ret):
            self._flush(prims, nodes)
            return nodes
        if isinstance(term, ir.Br):
            self._emit_edge_phis(block, term.target, prims)
            self._flush(prims, nodes)
            nodes.extend(self._emit_block(term.target, on_path | {block}))
            return nodes
        if isinstance(term, ir.CondBr):
            cond_expr = self.expr_of(term.cond)
            self._flush(prims, nodes)
            then_prims: List = []
            self._emit_edge_phis(block, term.then, then_prims)
            then_nodes: List[ControlNode] = []
            self._flush(then_prims, then_nodes)
            then_nodes.extend(self._emit_block(term.then, on_path | {block}))
            else_prims: List = []
            self._emit_edge_phis(block, term.other, else_prims)
            else_nodes: List[ControlNode] = []
            self._flush(else_prims, else_nodes)
            else_nodes.extend(self._emit_block(term.other, on_path | {block}))
            nodes.append(IfNode(cond_expr, then_nodes, else_nodes))
            return nodes
        raise CodegenError(f"{self.fn.name}: unterminated block {block.label}")

    def _emit_edge_phis(self, pred: ir.Block, succ: ir.Block, prims: List) -> None:
        """SSA deconstruction: assign each successor phi its incoming
        value for this edge."""
        for phi in succ.phis():
            for value, inc in phi.incoming:
                if inc is pred:
                    prims.append(PAssign(self.meta_field(phi), self.expr_of(value)))
                    break


# ---------------------------------------------------------------------------
# Whole-switch program assembly (the "template switch configuration")
# ---------------------------------------------------------------------------

ETH_T = HeaderType("ethernet_t", ETH_FIELDS)
IPV4_T = HeaderType("ipv4_t", IPV4_FIELDS)
UDP_T = HeaderType("udp_t", UDP_FIELDS)
NCP_T = HeaderType("ncp_t", NCP_FIELDS)


def build_switch_program(
    module: ir.Module,
    kernels: Sequence[Tuple[ir.Function, KernelLayout]],
    label_ids: Dict[str, int],
    name: str = "switch",
) -> P4Program:
    """Assemble the full per-switch P4 program: template plumbing +
    per-kernel compute (the paper's "merged with a template switch
    configuration")."""
    program = P4Program(name)
    program.add_metadata("egress_port", 16)
    program.add_header(ETH_T, "eth")
    program.add_header(IPV4_T, "ipv4")
    program.add_header(UDP_T, "udp")
    program.add_header(NCP_T, "ncp")

    # Per-kernel payload headers.
    kernel_states: List[Tuple[int, str]] = []
    deparser = ["eth", "ipv4", "udp", "ncp"]
    for fn, layout in kernels:
        hdr_name = f"k{layout.kernel_id}"
        fields = layout.payload_field_layout()
        if not fields:
            fields = [("pad", 8)]
        program.add_header(HeaderType(f"{hdr_name}_t", fields), hdr_name)
        kernel_states.append((layout.kernel_id, hdr_name))
        deparser.append(hdr_name)
    program.deparser = deparser

    # Parse graph: Ethernet -> IPv4 -> UDP -> NCP -> per-kernel payload.
    program.parser = [
        ParseState(
            "start",
            extracts=["eth"],
            select_field="eth.ethertype",
            transitions=[(ETHERTYPE_IPV4, "parse_ipv4")],
            default_next="accept",
        ),
        ParseState(
            "parse_ipv4",
            extracts=["ipv4"],
            select_field="ipv4.proto",
            transitions=[(IP_PROTO_UDP, "parse_udp")],
            default_next="accept",
        ),
        ParseState(
            "parse_udp",
            extracts=["udp"],
            select_field="udp.dport",
            transitions=[(NCP_PORT, "parse_ncp")],
            default_next="accept",
        ),
        ParseState(
            "parse_ncp",
            extracts=["ncp"],
            select_field="ncp.kernel_id",
            transitions=[(kid, f"parse_k{kid}") for kid, _ in kernel_states],
            default_next="accept",
        ),
    ]
    for kid, hdr_name in kernel_states:
        program.parser.append(
            ParseState(f"parse_k{kid}", extracts=[hdr_name], default_next="accept")
        )

    # Plain forwarding (normal network operation, Fig 3b bottom path).
    program.add_action(
        Action(
            "ipv4_forward",
            [PAssign(META_EGRESS, PParam("port", 16))],
            params=[("port", 16)],
        )
    )
    program.add_action(Action("ipv4_miss", [PAssign(META_FWD, PConst(FWD_DROP, 8))]))
    program.add_table(
        Table(
            "ipv4_route",
            keys=[("ipv4.dst", "exact")],
            actions=["ipv4_forward"],
            default_action="ipv4_miss",
            managed_by="control-plane",
            size=4096,
        )
    )

    # Kernel dispatch + compute.
    dispatch: List[ControlNode] = []
    for fn, layout in kernels:
        gen = KernelCodegen(program, module, fn, layout, label_ids)
        subtree = gen.generate()
        dispatch.append(
            IfNode(
                PBin("eq", PField("ncp.kernel_id"), PConst(layout.kernel_id, 16), 16),
                subtree,
            )
        )

    # Reflected windows go back where they came from: swap L2/L3 addresses
    # so the previous hop delivers the window to the original sender.
    program.add_metadata("swap_tmp", 48)
    program.add_action(
        Action(
            "reflect_rewrite",
            [
                PAssign("meta.swap_tmp", PField("ipv4.src")),
                PAssign("ipv4.src", PField("ipv4.dst")),
                PAssign("ipv4.dst", PField("meta.swap_tmp")),
                PAssign("meta.swap_tmp", PField("eth.src")),
                PAssign("eth.src", PField("eth.dst")),
                PAssign("eth.dst", PField("meta.swap_tmp")),
            ],
        )
    )

    program.control = [
        IfNode(
            PField("valid.ncp"),
            dispatch,
            [Apply("ipv4_route")],
        ),
        # NCP windows that pass through still need normal forwarding;
        # reflected ones get their addresses swapped first.
        IfNode(
            PField("valid.ncp"),
            [
                IfNode(
                    PBin("eq", PField(META_FWD), PConst(FWD_PASS, 8), 8),
                    [Apply("ipv4_route")],
                ),
                IfNode(
                    PBin("eq", PField(META_FWD), PConst(FWD_REFLECT, 8), 8),
                    [Do("reflect_rewrite")],
                ),
            ],
        ),
    ]
    program.validate()
    return program
