"""``python -m repro.nclc lint`` -- the static-analysis CLI.

Lints one or more NCL sources with the full :mod:`repro.analysis`
pipeline (multi-error sema recovery, conformance explanations, the rule
set) and renders either human-readable text with caret excerpts or the
deterministic ``repro.diag/1`` JSON form.

Exit codes: 0 clean (warnings allowed), 1 error-level diagnostics
(including promoted warnings under ``--werror``), 2 usage errors
(unknown rule/profile, unreadable file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import all_rules, lint_source
from repro.diag import DiagnosticSink
from repro.diag.export import render_json
from repro.diag.render import SourceMap, render_text
from repro.errors import AndError
from repro.nclc import cli


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nclc lint",
        description="Static analysis for NCL programs (no code generation)",
    )
    parser.add_argument("sources", nargs="*", help="NCL source files")
    cli.add_common_args(parser)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic repro.diag/1 JSON report",
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as errors (exit 1 on any finding)",
    )
    parser.add_argument(
        "-W",
        "--rule",
        dest="rules",
        action="append",
        metavar="RULE",
        help="select rules: a name runs only the listed rules, "
        "'no-NAME' disables one (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered analysis rules and exit",
    )
    parser.add_argument(
        "--no-summary",
        action="store_true",
        help="omit the trailing summary line of the text report",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            codes = ", ".join(rule.codes)
            print(f"{rule.name:20} {codes:30} {rule.about}")
        print()
        print("deployment checks (nclc check-deploy):")
        from repro.nclc.deploy import list_rules as list_deploy_rules

        list_deploy_rules()
        print()
        print("transport-safety checks (nclc check-proto):")
        from repro.nclc.proto import list_rules as list_proto_rules

        list_proto_rules()
        return 0
    if not args.sources:
        print("error: no source files given", file=sys.stderr)
        return 2

    try:
        defines = cli.parse_kv(args.defines)
        and_text = cli.read_and_text(args)
    except cli.UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    sink = DiagnosticSink()
    sources = {}
    for src_path in args.sources:
        try:
            text = Path(src_path).read_text()
        except OSError as exc:
            print(f"error: cannot read {src_path}: {exc}", file=sys.stderr)
            return 2
        sources[src_path] = text
        try:
            lint_source(
                text,
                src_path,
                defines=defines or None,
                and_text=and_text,
                profile=args.profile,
                rules=args.rules,
                werror=False,  # promote once, after all files are in
                sink=sink,
            )
        except (ValueError, KeyError) as exc:
            # unknown rule name / unknown profile
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except AndError as exc:
            print(f"error: invalid AND: {exc}", file=sys.stderr)
            return 2

    if args.werror:
        sink.promote_warnings()

    if args.json:
        sys.stdout.write(render_json(sink))
    else:
        sys.stdout.write(
            render_text(sink, SourceMap(sources), summary=not args.no_summary)
        )
    return 1 if sink.has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
