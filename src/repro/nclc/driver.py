"""nclc -- the NCL compiler driver (the paper's Fig 6 trajectory).

Pipeline::

    NCL source ──frontend──> AST ──sema──> TranslationUnit
        │
        ├── host pipeline:  lower -> SSA -> early opts        (ref module)
        │
        └── device pipeline:
              lower -> conformance check           (stage 1)
              per-AND-switch IR versioning          (stage 2)
              window specialization + full unroll
                + constfold/GVN/DCE/simplify        (stage 3)
              P4 codegen + template merge           (stage 4)
              backend accept/reject per profile

The *window configuration* pins each outgoing kernel's mask (elements
per array per window) and static window-extension fields at compile
time -- the paper's prototype scope ("windows that fit a packet", S6).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.andspec.model import AndSpec, parse_and
from repro.errors import RuntimeApiError
from repro.ncl import frontend
from repro.ncl.sema import TranslationUnit
from repro.ncp.wire import KernelLayout, layout_for_kernel
from repro.nir import ir
from repro.nir.lower import lower_unit
from repro.nir.passes import PassStats, optimize_host, optimize_switch
from repro.p4.backend import AcceptanceReport, check_program
from repro.p4.model import P4Program
from repro.p4.printer import print_program
from repro.pisa.arch import ArchProfile, profile_by_name
from repro.nclc.codegen import build_switch_program
from repro.nclc.conformance import check_module
from repro.nclc.versioning import version_module


class WindowConfig:
    """Compile-time window geometry for one outgoing kernel."""

    def __init__(
        self,
        mask: Sequence[int] = (1,),
        ext: Optional[Mapping[str, int]] = None,
    ):
        self.mask = tuple(int(m) for m in mask)
        self.ext = dict(ext or {})

    def __repr__(self) -> str:
        return f"WindowConfig(mask={self.mask}, ext={self.ext})"


class CompiledProgram:
    """Everything the runtime needs to deploy and drive the program."""

    def __init__(
        self,
        unit: TranslationUnit,
        ref_module: ir.Module,
        and_spec: AndSpec,
        layouts: Dict[str, KernelLayout],
        window_configs: Dict[str, WindowConfig],
        switch_programs: Dict[str, P4Program],
        switch_sources: Dict[str, str],
        reports: Dict[str, AcceptanceReport],
        stats: Dict[str, PassStats],
        stage_times: Dict[str, float],
        profile: ArchProfile,
        source: str,
        split_info: Optional[Dict[str, list]] = None,
        compile_trace=None,
    ):
        self.unit = unit
        self.ref_module = ref_module
        self.and_spec = and_spec
        self.layouts = layouts
        self.window_configs = window_configs
        self.switch_programs = switch_programs
        self.switch_sources = switch_sources
        self.reports = reports
        self.stats = stats
        self.stage_times = stage_times
        self.profile = profile
        self.source = source
        #: the per-pass timing/IR-size trace, when the caller compiled
        #: with one (see repro.obs.CompileTrace / ``nclc --timing``)
        self.compile_trace = compile_trace
        #: per-location register splits performed by the arch-specific
        #: transformation (label -> [SplitInfo])
        self.split_info = dict(split_info or {})
        self.kernel_ids = {name: lo.kernel_id for name, lo in layouts.items()}
        self.kernel_by_id = {lo.kernel_id: name for name, lo in layouts.items()}

    @property
    def label_ids(self) -> Dict[str, int]:
        return self.and_spec.label_ids()

    def layout_by_id(self, kernel_id: int) -> KernelLayout:
        name = self.kernel_by_id.get(kernel_id)
        if name is None:
            raise RuntimeApiError(f"unknown kernel id {kernel_id}")
        return self.layouts[name]

    def paired_in_kernel(self, out_kernel: str) -> Optional[str]:
        """The incoming kernel paired with an outgoing one (S4.1)."""
        for name in self.unit.in_kernels:
            paired = self.unit.paired_out_kernel(name)
            if paired is not None and paired.name == out_kernel:
                return name
        return None

    def __repr__(self) -> str:
        return (
            f"CompiledProgram({len(self.layouts)} kernels, "
            f"{len(self.switch_programs)} switch programs)"
        )


class Compiler:
    def __init__(
        self,
        profile: Union[str, ArchProfile, None] = None,
        max_unroll: int = 4096,
        split_arrays: Union[bool, str] = "auto",
    ):
        if isinstance(profile, ArchProfile):
            self.profile = profile
        else:
            self.profile = profile_by_name(profile)
        self.max_unroll = max_unroll
        # "auto": split register arrays only when the chip's access
        # discipline demands it; True/False force the behaviour.
        self.split_arrays = split_arrays

    def compile(
        self,
        source: str,
        and_text: Optional[str] = None,
        windows: Optional[Mapping[str, WindowConfig]] = None,
        defines: Optional[Mapping[str, int]] = None,
        filename: str = "<ncl>",
        trace=None,
    ) -> CompiledProgram:
        """Compile *source*. Pass a :class:`repro.obs.CompileTrace` as
        ``trace`` to additionally record per-pass wall time and IR-size
        deltas (the coarse per-stage times are always collected)."""
        stage_times: Dict[str, float] = {}
        stats: Dict[str, PassStats] = {}

        def tstage(name):
            return trace.stage(name) if trace is not None else nullcontext()

        # -- frontend -------------------------------------------------------
        t0 = time.perf_counter()
        with tstage("frontend"):
            unit = frontend(source, filename, defines)
        stage_times["frontend"] = time.perf_counter() - t0

        # -- IR generation -----------------------------------------------------
        t0 = time.perf_counter()
        with tstage("irgen"):
            module = lower_unit(unit)
        stage_times["irgen"] = time.perf_counter() - t0

        # -- AND ---------------------------------------------------------------
        required = self._required_labels(unit)
        if and_text is not None:
            and_spec = parse_and(and_text)
        else:
            and_spec = self._default_and(required)
        and_spec.validate(required)

        # -- stage 1: conformance ------------------------------------------------
        t0 = time.perf_counter()
        with tstage("conformance"):
            check_module(module, and_spec)
        stage_times["conformance"] = time.perf_counter() - t0

        # -- window configuration ----------------------------------------------
        window_configs = self._window_configs(unit, windows)
        layouts = self._build_layouts(unit, window_configs)

        # -- host pipeline (reference module) --------------------------------
        t0 = time.perf_counter()
        with tstage("host-opt"):
            host_stats = PassStats()
            for fn in module.kernels():
                optimize_host(fn, host_stats, trace=trace, stage="host")
        stats["host"] = host_stats
        stage_times["host-opt"] = time.perf_counter() - t0

        # -- stage 2: versioning --------------------------------------------------
        t0 = time.perf_counter()
        with tstage("versioning"):
            versions = version_module(module, and_spec)
        stage_times["versioning"] = time.perf_counter() - t0

        # -- stage 3+4 per location -----------------------------------------------
        switch_programs: Dict[str, P4Program] = {}
        switch_sources: Dict[str, str] = {}
        reports: Dict[str, AcceptanceReport] = {}
        split_info: Dict[str, list] = {}
        t_opt = 0.0
        t_gen = 0.0
        label_ids = and_spec.label_ids()
        for version in versions:
            loc_stats = PassStats()
            t0 = time.perf_counter()
            compiled_kernels: List[Tuple[ir.Function, KernelLayout]] = []
            with tstage("switch-opt"):
                for fn in version.module.kernels(ir.FunctionKind.OUT_KERNEL):
                    config = window_configs[fn.name]
                    optimize_switch(
                        fn,
                        window_spec=config.ext,
                        stats=loc_stats,
                        max_trips=self.max_unroll,
                        trace=trace,
                        stage=version.label,
                    )
                    compiled_kernels.append((fn, layouts[fn.name]))
            # Arch-specific transformation: split register arrays when the
            # chip allows fewer accesses per array than the kernels make.
            want_split = self.split_arrays is True or (
                self.split_arrays == "auto"
                and self.profile.max_register_accesses_per_array <= 4
            )
            if want_split:
                from repro.nir.passes import split_register_arrays

                splits = split_register_arrays(
                    version.module, self.profile.max_register_accesses_per_array
                )
                if splits:
                    split_info[version.label] = splits
            t_opt += time.perf_counter() - t0
            stats[version.label] = loc_stats

            t0 = time.perf_counter()
            with tstage("codegen+backend"):
                program = build_switch_program(
                    version.module,
                    compiled_kernels,
                    label_ids,
                    name=f"{module.name}_{version.label}",
                )
                switch_programs[version.label] = program
                switch_sources[version.label] = print_program(program)
                reports[version.label] = check_program(program, self.profile)
            t_gen += time.perf_counter() - t0
        stage_times["switch-opt"] = t_opt
        stage_times["codegen+backend"] = t_gen

        return CompiledProgram(
            unit=unit,
            ref_module=module,
            and_spec=and_spec,
            layouts=layouts,
            window_configs=window_configs,
            switch_programs=switch_programs,
            switch_sources=switch_sources,
            reports=reports,
            stats=stats,
            stage_times=stage_times,
            profile=self.profile,
            source=source,
            split_info=split_info,
            compile_trace=trace,
        )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _required_labels(unit: TranslationUnit) -> List[str]:
        labels = []
        for info in unit.out_kernels.values():
            if info.at_label:
                labels.append(info.at_label)
        for gvar in list(unit.net_globals.values()) + list(unit.ctrl_vars.values()) + list(
            unit.maps.values()
        ) + list(unit.blooms.values()):
            if gvar.at_label:
                labels.append(gvar.at_label)
        return sorted(set(labels))

    @staticmethod
    def _default_and(required_labels: List[str]) -> AndSpec:
        """Synthesize a chain AND when the program does not supply one:
        h0 -- s1 -- ... -- h1, with one switch per required label."""
        spec = AndSpec()
        spec.add_host("h0")
        labels = required_labels or ["s1"]
        for label in labels:
            spec.add_switch(label)
        spec.add_host("h1")
        prev = "h0"
        for label in labels:
            spec.add_link(prev, label)
            prev = label
        spec.add_link(prev, "h1")
        return spec

    @staticmethod
    def _window_configs(
        unit: TranslationUnit, windows: Optional[Mapping[str, WindowConfig]]
    ) -> Dict[str, WindowConfig]:
        windows = dict(windows or {})
        configs: Dict[str, WindowConfig] = {}
        ext_fields = [name for name, _ in unit.window_fields[3:]]  # skip builtins
        for name, info in unit.out_kernels.items():
            config = windows.pop(name, None)
            if config is None:
                config = WindowConfig(mask=(1,) * len(info.data_params))
            if len(config.mask) != len(info.data_params):
                raise RuntimeApiError(
                    f"kernel {name!r}: window mask {config.mask} does not match "
                    f"its {len(info.data_params)} data parameters"
                )
            missing = [f for f in ext_fields if f not in config.ext]
            if missing:
                raise RuntimeApiError(
                    f"kernel {name!r}: window extension fields {missing} need "
                    "compile-time values (pass them in WindowConfig.ext)"
                )
            configs[name] = config
        if windows:
            raise RuntimeApiError(
                f"window configs for unknown kernels: {sorted(windows)}"
            )
        return configs

    @staticmethod
    def _build_layouts(
        unit: TranslationUnit, configs: Dict[str, WindowConfig]
    ) -> Dict[str, KernelLayout]:
        layouts: Dict[str, KernelLayout] = {}
        ext_fields = unit.window_fields[3:]  # user extension fields only
        for kid, name in enumerate(sorted(unit.out_kernels), start=1):
            info = unit.out_kernels[name]
            params = [(p.name, p.ty) for p in info.data_params]
            layouts[name] = layout_for_kernel(
                kid, name, params, configs[name].mask, ext_fields
            )
        return layouts
