"""nclc -- the NCL compiler driver (the paper's Fig 6 trajectory).

Pipeline (now an explicit :class:`repro.nclc.pm.PassManager` run)::

    NCL source ──lex/parse/sema──> TranslationUnit        ("frontend")
        │
        ├── host pipeline:  lower -> SSA -> early opts        (ref module)
        │
        └── device pipeline:
              lower -> conformance check           (stage 1)
              per-AND-switch IR versioning          (stage 2)
              window specialization + full unroll
                + constfold/GVN/DCE/simplify        (stage 3)
              P4 codegen + template merge           (stage 4)
              backend accept/reject per profile

The *window configuration* pins each outgoing kernel's mask (elements
per array per window) and static window-extension fields at compile
time -- the paper's prototype scope ("windows that fit a packet", S6).

The driver owns three policies on top of the pass manager:

* ``opt_level`` selects the ``-O0/-O1/-O2`` pipeline presets (see
  :mod:`repro.nir.passes`);
* an optional :class:`repro.nclc.cache.ArtifactCache` short-circuits the
  whole run on a content-address hit, returning the cached
  :class:`CompiledProgram` deserialized from its artifact JSON;
* :class:`CompiledProgram` serializes to the versioned ``repro.nclc/1``
  artifact (:meth:`CompiledProgram.save` / :meth:`CompiledProgram.load`)
  so runtimes and benchmarks can run precompiled programs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

from repro.andspec.model import AndSpec
from repro.errors import RuntimeApiError
from repro.ncp.wire import KernelLayout
from repro.nir import ir
from repro.nir.passes import PassStats
from repro.p4.backend import AcceptanceReport
from repro.p4.model import P4Program
from repro.pisa.arch import ArchProfile, profile_by_name


class WindowConfig:
    """Compile-time window geometry for one outgoing kernel."""

    def __init__(
        self,
        mask: Sequence[int] = (1,),
        ext: Optional[Mapping[str, int]] = None,
    ):
        self.mask = tuple(int(m) for m in mask)
        self.ext = dict(ext or {})

    def __repr__(self) -> str:
        return f"WindowConfig(mask={self.mask}, ext={self.ext})"


class CompiledProgram:
    """Everything the runtime needs to deploy and drive the program."""

    def __init__(
        self,
        unit,
        ref_module: ir.Module,
        and_spec: AndSpec,
        layouts: Dict[str, KernelLayout],
        window_configs: Dict[str, WindowConfig],
        switch_programs: Dict[str, P4Program],
        switch_sources: Dict[str, str],
        reports: Dict[str, AcceptanceReport],
        stats: Dict[str, PassStats],
        stage_times: Dict[str, float],
        profile: ArchProfile,
        source: str,
        split_info: Optional[Dict[str, list]] = None,
        compile_trace=None,
        opt_level: int = 2,
        switch_modules: Optional[Dict[str, ir.Module]] = None,
    ):
        self.unit = unit
        self.ref_module = ref_module
        self.and_spec = and_spec
        self.layouts = layouts
        self.window_configs = window_configs
        self.switch_programs = switch_programs
        self.switch_sources = switch_sources
        self.reports = reports
        self.stats = stats
        self.stage_times = stage_times
        self.profile = profile
        self.source = source
        #: the per-pass timing/IR-size trace, when the caller compiled
        #: with one (see repro.obs.CompileTrace / ``nclc --timing``)
        self.compile_trace = compile_trace
        #: per-location register splits performed by the arch-specific
        #: transformation (label -> [SplitInfo])
        self.split_info = dict(split_info or {})
        #: the -O level this program was compiled at
        self.opt_level = opt_level
        #: per-location optimized switch NIR (label -> Module); feeds
        #: differential testing and the serialized artifact
        self.switch_modules = dict(switch_modules or {})
        self.kernel_ids = {name: lo.kernel_id for name, lo in layouts.items()}
        self.kernel_by_id = {lo.kernel_id: name for name, lo in layouts.items()}

    @property
    def label_ids(self) -> Dict[str, int]:
        return self.and_spec.label_ids()

    def layout_by_id(self, kernel_id: int) -> KernelLayout:
        name = self.kernel_by_id.get(kernel_id)
        if name is None:
            raise RuntimeApiError(f"unknown kernel id {kernel_id}")
        return self.layouts[name]

    def paired_in_kernel(self, out_kernel: str) -> Optional[str]:
        """The incoming kernel paired with an outgoing one (S4.1)."""
        for name in self.unit.in_kernels:
            paired = self.unit.paired_out_kernel(name)
            if paired is not None and paired.name == out_kernel:
                return name
        return None

    # -- abstract-interpretation summaries ----------------------------------

    def absint_facts(self):
        """Per-switch abstract-interpretation facts (value ranges + known
        bits) for the optimized kernels: label -> {fn name -> facts}.
        Computed from ``switch_modules``, so it works on cache hits and
        loaded artifacts alike."""
        from repro.analysis.absint import analyze_module

        label_ids = self.label_ids
        return {
            label: analyze_module(self.switch_modules[label], label_ids=label_ids)
            for label in sorted(self.switch_modules)
        }

    def render_absint(self) -> str:
        """Byte-deterministic dump of :meth:`absint_facts` (the output of
        ``nclc build --emit absint``, golden-tested)."""
        from repro.analysis.absint import render_module_facts

        parts = []
        for label, facts in self.absint_facts().items():
            parts.append(
                f"; ===== switch {label} (absint facts, -O{self.opt_level}) =====\n"
                + render_module_facts(facts)
            )
        return "\n".join(parts)

    def effect_summaries(self):
        """Per-switch kernel effect summaries (replay-safety lattice:
        idempotent / commutative-monoid / unsafe-on-replay, plus dedup
        guards): label -> {fn name -> KernelEffects}. Computed from
        ``switch_modules`` like :meth:`absint_facts`, so it works on
        cache hits and loaded artifacts alike."""
        from repro.analysis.effects import analyze_module_effects

        label_ids = self.label_ids
        return {
            label: analyze_module_effects(
                self.switch_modules[label], label_ids=label_ids
            )
            for label in sorted(self.switch_modules)
        }

    def render_effects(self) -> str:
        """Byte-deterministic dump of :meth:`effect_summaries` (the
        output of ``nclc build --emit effects``, golden-tested)."""
        from repro.analysis.effects import render_module_effects

        parts = []
        for label, summaries in self.effect_summaries().items():
            parts.append(
                f"; ===== switch {label} (effect summaries, -O{self.opt_level}) =====\n"
                + render_module_effects(summaries)
            )
        return "\n".join(parts)

    # -- the repro.nclc/1 artifact ------------------------------------------

    def to_json(self) -> str:
        """Serialize to canonical (byte-stable) ``repro.nclc/1`` JSON."""
        from repro.nclc.artifact import dump_program

        return dump_program(self)

    def save(self, path) -> None:
        """Write the ``repro.nclc/1`` artifact JSON to *path*."""
        import pathlib

        pathlib.Path(path).write_text(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "CompiledProgram":
        from repro.nclc.artifact import load_program

        return load_program(text)

    @classmethod
    def load(cls, path) -> "CompiledProgram":
        """Reconstruct a program from a saved artifact; the result drives
        the runtime/cluster without re-invoking the frontend."""
        import pathlib

        return cls.from_json(pathlib.Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"CompiledProgram({len(self.layouts)} kernels, "
            f"{len(self.switch_programs)} switch programs)"
        )


class Compiler:
    def __init__(
        self,
        profile: Union[str, ArchProfile, None] = None,
        max_unroll: int = 4096,
        split_arrays: Union[bool, str] = "auto",
        opt_level: int = 2,
        cache=None,
        verify_opt: bool = False,
    ):
        from repro.nir.passes import OPT_LEVELS

        if isinstance(profile, ArchProfile):
            self.profile = profile
        else:
            self.profile = profile_by_name(profile)
        self.max_unroll = max_unroll
        # "auto": split register arrays only when the chip's access
        # discipline demands it; True/False force the behaviour.
        self.split_arrays = split_arrays
        if opt_level not in OPT_LEVELS:
            raise RuntimeApiError(
                f"unknown opt level {opt_level!r} (have {OPT_LEVELS})"
            )
        self.opt_level = opt_level
        #: optional repro.nclc.cache.ArtifactCache consulted per compile
        self.cache = cache
        #: translation-validate every optimization pass (--verify-opt)
        self.verify_opt = verify_opt

    def compile(
        self,
        source: str,
        and_text: Optional[str] = None,
        windows: Optional[Mapping[str, WindowConfig]] = None,
        defines: Optional[Mapping[str, int]] = None,
        filename: str = "<ncl>",
        trace=None,
        sink=None,
    ) -> CompiledProgram:
        """Compile *source*. Pass a :class:`repro.obs.CompileTrace` as
        ``trace`` to additionally record per-pass wall time and IR-size
        deltas (the coarse per-stage times are always collected); pass a
        :class:`repro.diag.DiagnosticSink` as ``sink`` for structured
        pass-failure diagnostics."""
        from repro.nclc import pm

        cache_key = None
        if self.cache is not None:
            cache_key = self.cache.key_for(
                source=source,
                and_text=and_text,
                windows=windows,
                defines=defines,
                profile=self.profile,
                opt_level=self.opt_level,
                max_unroll=self.max_unroll,
                split_arrays=self.split_arrays,
            )
            # A cache hit would skip the optimization passes entirely, so
            # there would be nothing for the validator to check; verified
            # builds always run the pipeline.
            cached = None if self.verify_opt else self.cache.get(
                cache_key, trace=trace
            )
            if cached is not None:
                return CompiledProgram.from_json(cached)

        ctx = pm.PipelineContext(
            source=source,
            filename=filename,
            defines=defines,
            and_text=and_text,
            windows=windows,
            options={
                "profile": self.profile,
                "opt_level": self.opt_level,
                "max_unroll": self.max_unroll,
                "split_arrays": self.split_arrays,
                "verify_opt": self.verify_opt,
            },
            trace=trace,
            sink=sink,
        )
        manager = pm.PassManager(pm.build_pipeline(self.opt_level))
        manager.run(ctx)

        program = CompiledProgram(
            unit=ctx.get("unit"),
            ref_module=ctx.get("module"),
            and_spec=ctx.get("and_spec"),
            layouts=ctx.get("layouts"),
            window_configs=ctx.get("window_configs"),
            switch_programs=ctx.get("switch_programs"),
            switch_sources=ctx.get("switch_sources"),
            reports=ctx.get("reports"),
            stats=ctx.stats,
            stage_times=ctx.stage_times,
            profile=self.profile,
            source=source,
            split_info=ctx.get("split_info"),
            compile_trace=trace,
            opt_level=self.opt_level,
            switch_modules=ctx.get("switch_modules"),
        )
        if self.cache is not None and cache_key is not None:
            self.cache.put(cache_key, program.to_json())
        return program
