"""IR versioning (nclc stage 2, paper S5).

"This stage uses location info from kernel signatures and the AND to
create multiple IR modules, containing each location's kernels and
location struct implementation. It may also attempt to split
location-less kernels by inspecting top-level branching on location
struct fields."

For every switch in the AND we clone the module, keep the kernels that
run there (pinned via ``_at_`` or location-less/SPMD), resolve the
location struct and ``_locid`` labels to that switch's node id, and keep
only the switch state that exists there. Constant folding + CFG
simplification then *are* the location-split: branches on
``location.id`` collapse to the arm for this switch.
"""

from __future__ import annotations

from typing import Dict, List

from repro.andspec.model import AndSpec
from repro.nir import ir
from repro.nir.passes.clone import clone_function
from repro.nir.passes.constfold import fold_constants
from repro.nir.passes.simplify_cfg import simplify_cfg
from repro.nir.passes.specialize import specialize_location


class LocationModule:
    """The IR version for one switch location."""

    def __init__(self, label: str, node_id: int, module: ir.Module):
        self.label = label
        self.node_id = node_id
        self.module = module

    def __repr__(self) -> str:
        return f"LocationModule({self.label}#{self.node_id})"


def version_module(module: ir.Module, and_spec: AndSpec) -> List[LocationModule]:
    """Produce one specialized module per AND switch."""
    label_ids = and_spec.label_ids()
    versions: List[LocationModule] = []
    for switch in and_spec.switches:
        versions.append(
            _version_for(module, switch.label, switch.node_id, label_ids)
        )
    return versions


def _version_for(
    module: ir.Module, label: str, node_id: int, label_ids: Dict[str, int]
) -> LocationModule:
    version = ir.Module(f"{module.name}@{label}")
    version.window_fields = list(module.window_fields)

    # State that exists on this switch: pinned here, or location-less.
    for ref in module.globals.values():
        if ref.space == "host":
            continue
        if ref.at_label is None or ref.at_label == label:
            version.add_global(
                ir.GlobalRef(ref.name, ref.ty, ref.space, ref.at_label, ref.init)
            )

    # Kernels that run here. Helpers come along for inlining.
    for fn in module.functions.values():
        if fn.kind is ir.FunctionKind.IN_KERNEL:
            continue  # incoming kernels exist on hosts only
        if fn.kind is ir.FunctionKind.OUT_KERNEL:
            if fn.at_label is not None and fn.at_label != label:
                continue
        clone = clone_function(fn)
        _rebind_globals(clone, version)
        version.add_function(clone)

    for fn in version.kernels(ir.FunctionKind.OUT_KERNEL):
        specialize_location(fn, node_id, label_ids)
        fold_constants(fn)
        simplify_cfg(fn)
    return LocationModule(label, node_id, version)


def _rebind_globals(fn: ir.Function, version: ir.Module) -> None:
    """Point cloned instructions at the version module's GlobalRefs (so a
    device instantiated from the version sees consistent identities).

    A kernel may reference state that does not exist at this location
    (location-less kernel touching pinned memory); that reference is kept
    pointing at the original ref and will fault at conformance or run
    time, which is the correct diagnosis for an SPMD kernel that was not
    split by location before touching pinned state.
    """
    for instr in fn.instructions():
        ref = getattr(instr, "ref", None)
        if isinstance(ref, ir.GlobalRef) and ref.name in version.globals:
            instr.ref = version.globals[ref.name]  # type: ignore[attr-defined]
        if isinstance(instr, ir.Memcpy):
            for region in (instr.dst, instr.src):
                if region.ref is not None and region.ref.name in version.globals:
                    region.ref = version.globals[region.ref.name]
