"""Content-addressed artifact cache for nclc.

A cache key is the sha256 of everything that determines compiler
output: the NCL source, ``-D`` defines, the AND text, window configs,
the chip profile, the optimization level and unroll/split options, and
the *pipeline fingerprint* (driver + NIR pass lists plus the compiler
version, :func:`repro.nclc.pm.pipeline_fingerprint`). Change any of
them -- including just upgrading the compiler or reordering a pass --
and the key changes, so a hit is always safe to reuse.

The cached value is the byte-stable ``repro.nclc/1`` artifact JSON
(:mod:`repro.nclc.artifact`); a warm hit skips the whole pipeline and
deserializes, which is what makes unchanged rebuilds fast.

Layout on disk (when a root directory is given)::

    <root>/<key[:2]>/<key>.nclc.json

Entries are written atomically (temp file + rename) so a crashed
compile never leaves a truncated artifact behind. An in-memory layer
fronts the disk in all cases; a purely in-memory cache (``root=None``)
works for single-process reuse and tests.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Mapping, Optional

from repro.nclc.pm import pipeline_fingerprint


class CacheStats:
    """Hit/miss/write counters for one cache instance."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def __repr__(self) -> str:
        return f"CacheStats(hits={self.hits}, misses={self.misses}, puts={self.puts})"


class ArtifactCache:
    """Content-addressed store of compile artifacts.

    ``registry`` (optional) is a :class:`repro.obs.MetricsRegistry`; hits
    and misses are counted under ``nclc.cache`` with an ``event`` label.
    """

    def __init__(self, root=None, registry=None):
        self.root = os.fspath(root) if root is not None else None
        self.registry = registry
        self.stats = CacheStats()
        self._mem: Dict[str, str] = {}

    # -- keying --------------------------------------------------------------

    def key_for(
        self,
        source: str,
        and_text: Optional[str] = None,
        windows: Optional[Mapping[str, object]] = None,
        defines: Optional[Mapping[str, int]] = None,
        profile=None,
        opt_level: int = 2,
        max_unroll: int = 4096,
        split_arrays="auto",
    ) -> str:
        """The content address of one compile's inputs + configuration."""
        window_enc = {}
        for name, cfg in (windows or {}).items():
            mask = list(getattr(cfg, "mask", cfg))
            ext = dict(getattr(cfg, "ext", {}))
            window_enc[name] = {
                "mask": mask, "ext": {k: ext[k] for k in sorted(ext)}
            }
        payload = {
            "source": source,
            "and": and_text,
            "windows": window_enc,
            "defines": dict(defines or {}),
            "profile": getattr(profile, "name", profile),
            "opt_level": opt_level,
            "max_unroll": max_unroll,
            "split_arrays": split_arrays,
            "pipeline": pipeline_fingerprint(opt_level),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- storage -------------------------------------------------------------

    def _path(self, key: str) -> Optional[str]:
        if self.root is None:
            return None
        return os.path.join(self.root, key[:2], f"{key}.nclc.json")

    def get(self, key: str, trace=None) -> Optional[str]:
        """The artifact JSON for *key*, or None on miss. Records the
        hit/miss in stats, the metrics registry, and the compile trace."""
        text = self._mem.get(key)
        if text is None:
            path = self._path(key)
            if path is not None and os.path.exists(path):
                with open(path) as fp:
                    text = fp.read()
                self._mem[key] = text
        event = "hit" if text is not None else "miss"
        if event == "hit":
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        self._count(event)
        if trace is not None and hasattr(trace, "cache_event"):
            trace.cache_event(event, key)
        return text

    def put(self, key: str, text: str) -> None:
        """Store artifact JSON under its content address (atomic on disk)."""
        self._mem[key] = text
        self.stats.puts += 1
        path = self._path(key)
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fp:
                fp.write(text)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are left in place)."""
        self._mem.clear()

    def _count(self, event: str) -> None:
        if self.registry is None:
            return
        self.registry.counter(
            "nclc.cache", "artifact cache lookups, by outcome", ("event",)
        ).labels(event=event).inc()

    def __repr__(self) -> str:
        where = self.root or "<memory>"
        return f"ArtifactCache({where}, {self.stats!r})"
