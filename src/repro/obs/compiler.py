"""Compiler instrumentation: per-stage and per-pass wall time plus
IR-size deltas.

The nclc driver already aggregates coarse stage times; a
:class:`CompileTrace` adds the layer below -- every individual pass
invocation with its wall time and the function's instruction count
before/after -- which is what you need to see *which* pass ate the
compile time or exploded the IR after a full unroll.

The clock is caller-supplied (defaults to ``time.perf_counter``): tests
inject a fake monotonic counter so trace output is deterministic.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, IO, List, Optional

from repro.nir import ir


def ir_size(fn: "ir.Function") -> int:
    """Instruction count -- the IR-size measure passes are judged by."""
    return sum(1 for _ in fn.instructions())


class CompileTrace:
    """Per-pass and per-stage accounting for one ``Compiler.compile``."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock or time.perf_counter
        self._t0 = self.clock()
        #: [{stage, wall_s, start_s}]
        self.stages: List[Dict[str, object]] = []
        #: [{stage, pass, fn, wall_s, ir_before, ir_after, start_s}]
        self.passes: List[Dict[str, object]] = []
        #: [{event, key, at_s}] -- artifact-cache lookups (hit/miss)
        self.cache_events: List[Dict[str, object]] = []

    # -- recording -------------------------------------------------------------

    @contextmanager
    def stage(self, name: str):
        start = self.clock()
        try:
            yield
        finally:
            end = self.clock()
            self.stages.append(
                {
                    "stage": name,
                    "start_s": start - self._t0,
                    "wall_s": end - start,
                }
            )

    @contextmanager
    def measure(self, stage: str, pass_name: str, fn: "ir.Function"):
        before = ir_size(fn)
        start = self.clock()
        try:
            yield
        finally:
            end = self.clock()
            self.passes.append(
                {
                    "stage": stage,
                    "pass": pass_name,
                    "fn": fn.name,
                    "start_s": start - self._t0,
                    "wall_s": end - start,
                    "ir_before": before,
                    "ir_after": ir_size(fn),
                }
            )

    def cache_event(self, event: str, key: str) -> None:
        """Record an artifact-cache lookup (``event`` is hit/miss); the
        cache calls this when a trace rides along with the compile."""
        self.cache_events.append(
            {"event": event, "key": key, "at_s": self.clock() - self._t0}
        )

    # -- reporting -------------------------------------------------------------

    def stage_times(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for rec in self.stages:
            out[rec["stage"]] = out.get(rec["stage"], 0.0) + rec["wall_s"]
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "stages": [
                {"stage": r["stage"], "wall_s": r["wall_s"]} for r in self.stages
            ],
            "passes": [
                {
                    "stage": r["stage"],
                    "pass": r["pass"],
                    "fn": r["fn"],
                    "wall_s": r["wall_s"],
                    "ir_before": r["ir_before"],
                    "ir_after": r["ir_after"],
                }
                for r in self.passes
            ],
            "cache": [
                {"event": r["event"], "key": r["key"]}
                for r in self.cache_events
            ],
        }

    def format_table(self) -> str:
        """The ``nclc --timing`` report."""
        lines = []
        for rec in self.cache_events:
            lines.append(
                f"== artifact cache: {rec['event']} "
                f"({str(rec['key'])[:12]}…) =="
            )
        lines.append("== compile stages ==")
        for rec in self.stages:
            lines.append(f"  {rec['stage']:<20} {rec['wall_s'] * 1e3:8.3f} ms")
        lines.append("== passes (wall ms, IR instrs before -> after) ==")
        for rec in self.passes:
            delta = rec["ir_after"] - rec["ir_before"]
            sign = f"{delta:+d}" if delta else "="
            lines.append(
                f"  {rec['stage']:<14} {rec['pass']:<18} {rec['fn']:<16} "
                f"{rec['wall_s'] * 1e3:8.3f}  {rec['ir_before']:>5} -> "
                f"{rec['ir_after']:<5} ({sign})"
            )
        return "\n".join(lines)

    def write_chrome(self, fp: IO[str]) -> None:
        """Compile timeline in trace-event format (stages as one track,
        passes as another), viewable next to a simulation trace."""
        events: List[Dict[str, object]] = [
            {
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "nclc"},
            },
            {"ph": "M", "pid": 2, "tid": 1, "name": "thread_name",
             "args": {"name": "stages"}},
            {"ph": "M", "pid": 2, "tid": 2, "name": "thread_name",
             "args": {"name": "passes"}},
        ]
        for rec in self.stages:
            events.append(
                {
                    "ph": "X",
                    "pid": 2,
                    "tid": 1,
                    "name": rec["stage"],
                    "cat": "compile",
                    "ts": round(rec["start_s"] * 1e6, 3),
                    "dur": round(rec["wall_s"] * 1e6, 3),
                }
            )
        for rec in self.passes:
            events.append(
                {
                    "ph": "X",
                    "pid": 2,
                    "tid": 2,
                    "name": f"{rec['pass']}:{rec['fn']}",
                    "cat": "compile",
                    "ts": round(rec["start_s"] * 1e6, 3),
                    "dur": round(rec["wall_s"] * 1e6, 3),
                    "args": {
                        "stage": rec["stage"],
                        "ir_before": rec["ir_before"],
                        "ir_after": rec["ir_after"],
                    },
                }
            )
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fp, sort_keys=True)
        fp.write("\n")
