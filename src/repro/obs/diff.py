"""Cross-run regression diffing: two runs' artifacts -> one report.

The bench harness and budget gate accumulate byte-deterministic
artifacts per run -- ``repro.profile/1`` documents, ``repro.timeseries/1``
dumps, metrics-registry snapshots, flat measured-metric dicts.
:func:`build_report` compares any mix of them between a baseline run A
and a candidate run B into a single byte-deterministic ``repro.diff/1``
report: per-key deltas, series that appeared or vanished, the handlers
whose wall time regressed most, and where two time series first
diverged. Two identical runs produce a byte-identical *zero-delta*
report -- the gate for "this refactor changed nothing observable".

Surfaced as ``python -m repro.obs.query diff A B`` (A/B are artifact
files or run directories) and driven by ``benchmarks/compare_runs.py``
and the budget gate's ``--history`` mode, which uses the profile section
to name *which handler* regressed when a throughput floor fails.

Artifact kinds are sniffed, never declared: a dict with a known
``schema`` is a profile/timeseries document, a dict of
``{"kind": ..., "series": [...]}`` families is a metrics snapshot, a
flat ``{name: number}`` dict is a measured-metrics map, and anything
else is flattened to its numeric leaves. Wall-clock-derived keys
(``*wall*``, ``*_per_sec``, ``avg_us``) are tagged in the report so
consumers can separate real regressions from timer noise.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Sequence, Tuple

DIFF_SCHEMA = "repro.diff/1"

#: substrings marking a metric as wall-clock-derived (nondeterministic
#: across runs even when the simulation is identical)
_WALL_MARKERS = ("wall", "_per_sec", "avg_us", "bytes_per_sec")


def is_wall_metric(key: str) -> bool:
    return any(marker in key for marker in _WALL_MARKERS)


# -- artifact sniffing + flattening ------------------------------------------


def sniff_kind(doc) -> str:
    """Which artifact family a loaded JSON document belongs to."""
    if isinstance(doc, dict):
        schema = doc.get("schema")
        if schema == "repro.profile/1":
            return "profile"
        if schema == "repro.timeseries/1":
            return "timeseries"
        if isinstance(schema, str):
            return "generic"
        values = list(doc.values())
        if values and all(
            isinstance(v, dict) and "kind" in v and "series" in v
            for v in values
        ):
            return "metrics"
        if values and all(isinstance(v, (int, float)) for v in values):
            return "scalars"
    return "generic"


def _series_key(name: str, labels: Dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def flatten_metrics(snapshot: Dict) -> Dict[str, float]:
    """A registry snapshot as flat ``name{labels}[.field] -> number``.

    Histogram series contribute their summary scalars (count/sum/min/
    max/p50/p90/p99) as dotted subkeys; bucket maps are folded into
    count-per-bound subkeys so a shifted distribution shows up even
    when the percentiles round the same."""
    out: Dict[str, float] = {}
    for name in sorted(snapshot):
        family = snapshot[name]
        for entry in family.get("series", ()):
            key = _series_key(name, entry.get("labels") or {})
            value = entry.get("value")
            if isinstance(value, dict):
                for field in sorted(value):
                    sub = value[field]
                    if isinstance(sub, dict):  # histogram buckets
                        for bound in sorted(sub):
                            out[f"{key}.{field}.le={bound}"] = sub[bound]
                    elif isinstance(sub, (int, float)):
                        out[f"{key}.{field}"] = sub
            elif isinstance(value, (int, float)):
                out[key] = value
        if family.get("overflow_routed"):
            out[f"{name}.__overflow_routed__"] = family["overflow_routed"]
    return out


def flatten_profile(report: Dict) -> Dict[str, float]:
    """A ``repro.profile/1`` document as flat numbers: run-level meters
    plus per-label ``entry{label}.wall_s`` / ``.count``."""
    out: Dict[str, float] = {}
    for field in (
        "total_wall_s",
        "attributed_wall_s",
        "named_wall_s",
        "attributed_fraction",
        "events",
        "events_per_sec",
        "packets_per_sec",
    ):
        if field in report:
            out[field] = report[field]
    for entry in report.get("entries", ()):
        label = entry["label"]
        out[f"entry{{{label}}}.count"] = entry.get("count", 0)
        out[f"entry{{{label}}}.wall_s"] = entry.get("wall_s", 0.0)
    return out


def flatten_generic(doc, prefix: str = "") -> Dict[str, float]:
    """Every numeric leaf of an arbitrary JSON document, dotted-path
    keyed (lists index numerically). Booleans and strings are skipped."""
    out: Dict[str, float] = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_generic(doc[key], path))
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            out.update(flatten_generic(item, f"{prefix}[{i}]"))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[prefix] = doc
    return out


# -- section diffs -----------------------------------------------------------


def diff_scalars(a: Dict[str, float], b: Dict[str, float]) -> Dict[str, object]:
    """Generic flat-map diff: changed/added/removed keys with deltas."""
    changed: List[Dict[str, object]] = []
    unchanged = 0
    for key in sorted(set(a) & set(b)):
        va, vb = a[key], b[key]
        if va == vb:
            unchanged += 1
            continue
        entry: Dict[str, object] = {
            "key": key,
            "a": va,
            "b": vb,
            "delta": vb - va,
        }
        if va:
            entry["pct"] = round(100.0 * (vb - va) / abs(va), 4)
        if is_wall_metric(key):
            entry["wall_clock"] = True
        changed.append(entry)
    added = [
        {"key": k, "b": b[k]} for k in sorted(set(b) - set(a))
    ]
    removed = [
        {"key": k, "a": a[k]} for k in sorted(set(a) - set(b))
    ]
    return {
        "changed": changed,
        "added": added,
        "removed": removed,
        "unchanged": unchanged,
    }


def diff_profile(a: Dict, b: Dict, top: int = 10) -> Dict[str, object]:
    """Profile diff: the scalar diff plus ``top_regressed`` -- labels
    ranked by wall-time growth (the "which handler got slower" answer
    the budget gate wants when a floor fails)."""
    out = diff_scalars(flatten_profile(a), flatten_profile(b))
    walls_a = {e["label"]: e.get("wall_s", 0.0) for e in a.get("entries", ())}
    walls_b = {e["label"]: e.get("wall_s", 0.0) for e in b.get("entries", ())}
    regressed = []
    for label in sorted(set(walls_a) | set(walls_b)):
        wa = walls_a.get(label, 0.0)
        wb = walls_b.get(label, 0.0)
        delta = wb - wa
        if delta > 0:
            entry = {"label": label, "a_wall_s": wa, "b_wall_s": wb,
                     "delta_wall_s": delta}
            if wa:
                entry["pct"] = round(100.0 * delta / wa, 4)
            regressed.append(entry)
    regressed.sort(key=lambda e: (-e["delta_wall_s"], e["label"]))
    out["top_regressed"] = regressed[:top]
    return out


def diff_timeseries(a: Dict, b: Dict) -> Dict[str, object]:
    """Time-series diff: run-level scalars, per-series final values,
    series that appeared/vanished, and for every changed series the
    first bucket index where the two runs diverge (``first_divergence``)
    plus the largest absolute gap (``max_divergence``)."""
    run_scalars = diff_scalars(
        {k: a.get(k) for k in ("interval", "buckets", "end_time")
         if isinstance(a.get(k), (int, float))},
        {k: b.get(k) for k in ("interval", "buckets", "end_time")
         if isinstance(b.get(k), (int, float))},
    )

    def series_map(doc) -> Dict[str, Dict[int, float]]:
        out = {}
        for series in doc.get("series", ()):
            key = _series_key(series["name"], series.get("labels") or {})
            out[key] = {int(i): v for i, v in series.get("points", ())}
        return out

    sa, sb = series_map(a), series_map(b)
    changed: List[Dict[str, object]] = []
    unchanged = 0
    for key in sorted(set(sa) & set(sb)):
        pa, pb = sa[key], sb[key]
        if pa == pb:
            unchanged += 1
            continue
        diverged = sorted(
            idx for idx in set(pa) | set(pb)
            if pa.get(idx, 0.0) != pb.get(idx, 0.0)
        )
        gaps = [abs(pb.get(i, 0.0) - pa.get(i, 0.0)) for i in diverged]
        final_a = pa[max(pa)] if pa else 0.0
        final_b = pb[max(pb)] if pb else 0.0
        entry: Dict[str, object] = {
            "key": key,
            "a": final_a,
            "b": final_b,
            "delta": final_b - final_a,
            "first_divergence": diverged[0],
            "max_divergence": max(gaps),
        }
        if final_a:
            entry["pct"] = round(
                100.0 * (final_b - final_a) / abs(final_a), 4
            )
        changed.append(entry)
    added = [{"key": k} for k in sorted(set(sb) - set(sa))]
    removed = [{"key": k} for k in sorted(set(sa) - set(sb))]
    return {
        "changed": run_scalars["changed"] + changed,
        "added": added,
        "removed": removed,
        "unchanged": run_scalars["unchanged"] + unchanged,
    }


_FLATTENERS = {
    "profile": None,  # handled by diff_profile
    "timeseries": None,  # handled by diff_timeseries
    "metrics": flatten_metrics,
    "scalars": lambda doc: dict(doc),
    "generic": flatten_generic,
}


def diff_section(kind: str, a, b, top: int = 10) -> Dict[str, object]:
    if kind == "profile":
        section = diff_profile(a, b, top=top)
    elif kind == "timeseries":
        section = diff_timeseries(a, b)
    else:
        flatten = _FLATTENERS[kind]
        section = diff_scalars(flatten(a), flatten(b))
    section["kind"] = kind
    return section


# -- the report --------------------------------------------------------------


def section_is_zero(section: Dict) -> bool:
    """No changed, added or removed keys (wall-clock keys excepted --
    two executions of the *same* code never share wall time)."""
    changed = [
        e for e in section.get("changed", ())
        if not e.get("wall_clock")
    ]
    return not changed and not section.get("added") and not section.get("removed")


def build_report(
    sections: Sequence[Tuple[str, str, object, object]],
    a_label: str = "A",
    b_label: str = "B",
    top: int = 10,
) -> Dict[str, object]:
    """The ``repro.diff/1`` report for ``(name, kind, a_doc, b_doc)``
    sections. Pure data, deterministically ordered: identical inputs
    give byte-identical JSON."""
    out_sections: Dict[str, object] = {}
    for name, kind, doc_a, doc_b in sections:
        out_sections[name] = diff_section(kind, doc_a, doc_b, top=top)
    zero = all(section_is_zero(s) for s in out_sections.values())
    changed = sum(len(s["changed"]) for s in out_sections.values())
    return {
        "schema": DIFF_SCHEMA,
        "a": a_label,
        "b": b_label,
        "zero_delta": zero,
        "changed_total": changed,
        "sections": {
            name: out_sections[name] for name in sorted(out_sections)
        },
    }


def validate_report(report: Dict) -> List[str]:
    """Schema problems in a loaded ``repro.diff/1`` document (empty list
    when valid) -- the CI gate's checker."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not an object"]
    if report.get("schema") != DIFF_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {DIFF_SCHEMA!r}"
        )
    for field in ("a", "b"):
        if not isinstance(report.get(field), str):
            problems.append(f"missing run label {field!r}")
    if not isinstance(report.get("zero_delta"), bool):
        problems.append("missing zero_delta flag")
    sections = report.get("sections")
    if not isinstance(sections, dict):
        return problems + ["missing sections object"]
    for name, section in sections.items():
        if not isinstance(section, dict):
            problems.append(f"section {name!r} is not an object")
            continue
        if section.get("kind") not in (
            "profile", "timeseries", "metrics", "scalars", "generic"
        ):
            problems.append(
                f"section {name!r}: unknown kind {section.get('kind')!r}"
            )
        for part in ("changed", "added", "removed"):
            if not isinstance(section.get(part), list):
                problems.append(f"section {name!r}: missing {part!r} list")
        for entry in section.get("changed") or ():
            if not isinstance(entry, dict) or "key" not in entry:
                problems.append(f"section {name!r}: malformed changed entry")
                break
    zero = report.get("zero_delta")
    if isinstance(zero, bool) and isinstance(sections, dict):
        actual = all(
            section_is_zero(s)
            for s in sections.values() if isinstance(s, dict)
        )
        if zero != actual:
            problems.append(
                f"zero_delta says {zero} but sections say {actual}"
            )
    return problems


def write_report(report: Dict, fp: IO[str]) -> None:
    json.dump(report, fp, sort_keys=True)
    fp.write("\n")


# -- rendering ---------------------------------------------------------------


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_report(report: Dict, limit: int = 20) -> str:
    """The report as a terminal-friendly listing."""
    lines = [f"diff {report['a']} -> {report['b']}"]
    if report.get("zero_delta"):
        lines.append(
            "zero-delta: runs are observationally identical "
            "(wall-clock metrics excepted)"
        )
    for name in sorted(report.get("sections", {})):
        section = report["sections"][name]
        changed = section.get("changed") or []
        added = section.get("added") or []
        removed = section.get("removed") or []
        lines.append(
            f"\n[{name}] ({section.get('kind')}) "
            f"{len(changed)} changed, {len(added)} new, "
            f"{len(removed)} vanished, {section.get('unchanged', 0)} unchanged"
        )
        shown = sorted(
            changed,
            key=lambda e: (-abs(e.get("delta", 0)), e["key"]),
        )[:limit]
        for entry in shown:
            pct = f" ({entry['pct']:+g}%)" if "pct" in entry else ""
            wall = "  [wall-clock]" if entry.get("wall_clock") else ""
            extra = ""
            if "first_divergence" in entry:
                extra = f"  diverges@bucket {entry['first_divergence']}"
            lines.append(
                f"  {entry['key']}: {_fmt(entry['a'])} -> "
                f"{_fmt(entry['b'])}  delta {_fmt(entry['delta'])}"
                f"{pct}{extra}{wall}"
            )
        if len(changed) > limit:
            lines.append(f"  ... {len(changed) - limit} more changed")
        for entry in added[:limit]:
            lines.append(f"  + {entry['key']} (new in {report['b']})")
        for entry in removed[:limit]:
            lines.append(f"  - {entry['key']} (vanished from {report['b']})")
        for entry in (section.get("top_regressed") or ())[:5]:
            pct = f" ({entry['pct']:+g}%)" if "pct" in entry else ""
            lines.append(
                f"  regressed: {entry['label']}  "
                f"+{entry['delta_wall_s']:.6f}s{pct}"
            )
    return "\n".join(lines)


# -- loading runs from disk --------------------------------------------------

#: artifact-file suffixes recognized inside a run directory, mapped to
#: section names (directory mode pairs files by shared suffix)
_DIR_SUFFIXES = (
    (".profile.json", "profile"),
    (".timeseries.json", "timeseries"),
    (".metrics.json", "metrics"),
    (".lineage.json", "lineage"),
    (".results.json", "results"),
)


def load_run(spec: str) -> Dict[str, Tuple[str, object]]:
    """A run's diffable artifacts: ``{section: (kind, document)}``.

    ``spec`` is either one JSON artifact file (section named after the
    sniffed kind) or a run directory, where every recognized
    ``*.profile.json`` / ``*.timeseries.json`` / ``*.metrics.json`` /
    ``*.lineage.json`` / ``*.results.json`` becomes its own section
    keyed by file stem, so two directories pair up by artifact name."""
    from pathlib import Path

    path = Path(spec)
    if path.is_dir():
        out: Dict[str, Tuple[str, object]] = {}
        for child in sorted(path.iterdir()):
            for suffix, _section in _DIR_SUFFIXES:
                if child.name.endswith(suffix):
                    doc = json.loads(child.read_text())
                    out[child.name] = (sniff_kind(doc), doc)
                    break
        if not out:
            raise FileNotFoundError(
                f"{spec}: no diffable artifacts "
                f"(*.profile.json, *.timeseries.json, *.metrics.json, "
                f"*.lineage.json, *.results.json)"
            )
        return out
    if not path.exists():
        raise FileNotFoundError(spec)
    doc = json.loads(path.read_text())
    return {sniff_kind(doc): (sniff_kind(doc), doc)}


def diff_runs(
    spec_a: str,
    spec_b: str,
    top: int = 10,
    a_label: Optional[str] = None,
    b_label: Optional[str] = None,
) -> Dict[str, object]:
    """Load two runs (files or directories) and build their report.
    Sections present in only one run are diffed against an empty
    document so every artifact difference is visible."""
    run_a = load_run(spec_a)
    run_b = load_run(spec_b)
    sections = []
    for name in sorted(set(run_a) | set(run_b)):
        kind_a, doc_a = run_a.get(name, (None, None))
        kind_b, doc_b = run_b.get(name, (None, None))
        kind = kind_a or kind_b
        if kind_a and kind_b and kind_a != kind_b:
            kind = "generic"
        empty = {} if kind not in ("profile", "timeseries") else {"entries": [], "series": []}
        sections.append(
            (name, kind, doc_a if doc_a is not None else empty,
             doc_b if doc_b is not None else empty)
        )
    return build_report(
        sections,
        a_label=a_label or spec_a,
        b_label=b_label or spec_b,
        top=top,
    )
