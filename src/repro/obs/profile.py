"""Continuous low-overhead profiling of the discrete-event core.

The :class:`Profiler` hangs off the run's :class:`~repro.obs.context.
Observability` (``obs.profiler``); when present, the simulator's
instrumented run loop times every event callback with the wall clock and
hands the measurement here, attributed to the *schedule label* the
scheduling site supplied (``"component;instance;handler"`` -- e.g.
``"switch;s1;pipeline"`` or ``"host;w0;deliver"``). Events scheduled
without a label fall back to the callback's qualified name under the
``other`` component, so 100% of callback time is always accounted for
and the *named* fraction is an honest coverage number.

Unlike every other part of ``repro.obs``, profiles are inherently
wall-clock data (they answer "where does the *real* time go"), so their
output is not byte-deterministic across runs -- only across exports of
the same run.

Outputs:

* :meth:`Profiler.report` -- the ``repro.profile/1`` JSON: per-label
  wall time/count/average, attribution fraction, and the throughput
  meters (events/sec, packets/sec);
* :meth:`Profiler.collapsed` -- collapsed-stack lines
  (``sim;switch;s1;pipeline 1234``) for any flamegraph renderer;
* :meth:`Profiler.chrome_dict` -- an aggregate Chrome trace-event JSON
  (one span per label, grouped by component instance) that loads in
  ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Tuple

PROFILE_SCHEMA = "repro.profile/1"

#: labels use this separator: component;instance;handler
LABEL_SEP = ";"

#: handler name the net layer uses for frame-arrival events; the count
#: of these is the run's delivered-frame count, which is what the
#: packets/sec meter divides by wall time
RX_HANDLER = "rx"


def split_label(label: str) -> Tuple[str, str, str]:
    """``"switch;s1;pipeline"`` -> ("switch", "s1", "pipeline")."""
    parts = label.split(LABEL_SEP)
    while len(parts) < 3:
        parts.append("")
    return parts[0], parts[1], parts[2]


class Profiler:
    """Per-label wall-time and event-count accumulator.

    The hot-path surface is exactly one method (:meth:`record`, a dict
    upsert); everything else runs at report time. ``keep_samples``
    optionally retains the last N (label, virtual_ts, wall_dur) samples
    for fine-grained exports -- off by default to keep memory flat on
    million-event runs.
    """

    def __init__(self, keep_samples: int = 0) -> None:
        #: label -> [count, wall_seconds]
        self._entries: Dict[str, List[float]] = {}
        #: wall time spent inside instrumented run loops (includes the
        #: scheduler's own heap work, so attribution has a denominator)
        self.loop_wall = 0.0
        self.events = 0
        self._keep = keep_samples
        self.samples: List[Tuple[str, float, float]] = []

    # -- hot path --------------------------------------------------------------

    def record(self, label: Optional[str], callback, virtual_ts: float,
               wall_dur: float) -> None:
        """Attribute one event callback's execution (simulator-internal)."""
        if label is None:
            label = "other;;" + getattr(
                callback, "__qualname__", type(callback).__name__
            )
        entry = self._entries.get(label)
        if entry is None:
            entry = [0, 0.0]
            self._entries[label] = entry
        entry[0] += 1
        entry[1] += wall_dur
        self.events += 1
        if self._keep:
            self.samples.append((label, virtual_ts, wall_dur))
            if len(self.samples) > self._keep:
                del self.samples[: len(self.samples) - self._keep]

    def add_loop_wall(self, wall: float) -> None:
        self.loop_wall += wall

    # -- derived numbers -------------------------------------------------------

    @property
    def attributed_wall(self) -> float:
        return sum(e[1] for e in self._entries.values())

    @property
    def named_wall(self) -> float:
        """Wall time attributed to *named* components (labelled schedule
        sites), excluding the ``other;;<qualname>`` fallback bucket."""
        return sum(
            e[1] for label, e in self._entries.items()
            if not label.startswith("other" + LABEL_SEP)
        )

    @property
    def total_wall(self) -> float:
        """The attribution denominator: loop wall time when a run loop
        was instrumented, else the attributed sum (step-driven sims)."""
        return self.loop_wall if self.loop_wall > 0 else self.attributed_wall

    def attributed_fraction(self) -> float:
        total = self.total_wall
        return self.named_wall / total if total > 0 else 0.0

    def events_per_sec(self) -> float:
        total = self.total_wall
        return self.events / total if total > 0 else 0.0

    def packets_per_sec(self) -> float:
        total = self.total_wall
        if total <= 0:
            return 0.0
        rx = sum(
            e[0] for label, e in self._entries.items()
            if split_label(label)[2] == RX_HANDLER
        )
        return rx / total

    # -- exports ---------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """The ``repro.profile/1`` document (pure data, JSON-ready)."""
        total = self.total_wall
        entries = []
        for label in sorted(
            self._entries, key=lambda k: (-self._entries[k][1], k)
        ):
            count, wall = self._entries[label]
            component, instance, handler = split_label(label)
            entries.append(
                {
                    "label": label,
                    "component": component,
                    "instance": instance,
                    "handler": handler,
                    "count": int(count),
                    "wall_s": wall,
                    "wall_pct": 100.0 * wall / total if total > 0 else 0.0,
                    "avg_us": wall / count * 1e6 if count else 0.0,
                }
            )
        return {
            "schema": PROFILE_SCHEMA,
            "total_wall_s": total,
            "attributed_wall_s": self.attributed_wall,
            "named_wall_s": self.named_wall,
            "attributed_fraction": self.attributed_fraction(),
            "events": self.events,
            "events_per_sec": self.events_per_sec(),
            "packets_per_sec": self.packets_per_sec(),
            "entries": entries,
        }

    def write_json(self, fp: IO[str]) -> None:
        json.dump(self.report(), fp, sort_keys=True)
        fp.write("\n")

    def collapsed(self) -> str:
        """Collapsed-stack lines (``sim;switch;s1;pipeline 1234``): one
        line per label, value = integer microseconds of wall time, the
        input format of every flamegraph renderer."""
        lines = []
        for label in sorted(self._entries):
            _, wall = self._entries[label]
            lines.append(f"sim{LABEL_SEP}{label} {max(1, int(round(wall * 1e6)))}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, fp: IO[str]) -> None:
        fp.write(self.collapsed())

    def chrome_dict(self, process_name: str = "repro-profile") -> Dict[str, object]:
        """An aggregate Chrome trace: one complete (``X``) span per
        label, laid out sequentially on one thread per component
        instance, with count/average in args. Not a per-event timeline
        (the profiler aggregates on the hot path); it loads in any
        trace viewer as a proportional where-does-the-time-go view."""
        tids: Dict[str, int] = {}
        cursors: Dict[int, float] = {}
        trace_events: List[Dict[str, object]] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": process_name},
            }
        ]
        for label in sorted(self._entries):
            component, instance, _ = split_label(label)
            thread = f"{component} {instance}".strip()
            if thread not in tids:
                tids[thread] = len(tids) + 1
                trace_events.append(
                    {
                        "ph": "M",
                        "pid": 1,
                        "tid": tids[thread],
                        "name": "thread_name",
                        "args": {"name": thread},
                    }
                )
        for label in sorted(
            self._entries, key=lambda k: (-self._entries[k][1], k)
        ):
            count, wall = self._entries[label]
            component, instance, handler = split_label(label)
            thread = f"{component} {instance}".strip()
            tid = tids[thread]
            start = cursors.get(tid, 0.0)
            dur = round(wall * 1e6, 3)
            trace_events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": round(start, 3),
                    "dur": dur,
                    "name": handler or label,
                    "cat": component,
                    "args": {
                        "count": int(count),
                        "avg_us": round(wall / count * 1e6, 3) if count else 0.0,
                    },
                }
            )
            cursors[tid] = start + dur
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome(self, fp: IO[str], process_name: str = "repro-profile") -> None:
        json.dump(self.chrome_dict(process_name), fp, sort_keys=True)
        fp.write("\n")
