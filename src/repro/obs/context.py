"""The observability context threaded through a simulation.

One :class:`Observability` bundles the metrics registry and the tracer
for a run. It hangs off the :class:`~repro.net.events.Simulator`
(``sim.obs``), so every component that can reach the simulator --
links, nodes, switches, the host runtime -- reaches observability the
same way.

**Disabled must cost (almost) nothing.** The default is the module-level
:data:`NULL_OBS` singleton whose ``enabled`` is ``False``; every
instrumentation site is written as::

    obs = self.sim.obs
    if obs.enabled:
        ...build args, emit events...

so the disabled fast path is one attribute load and a branch -- no
allocation, no string formatting, no registry lookups. A micro-benchmark
in the test suite asserts this stays sub-microsecond.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


class Observability:
    """Registry + tracer for one run.

    ``wall_clock`` is the *caller-supplied* wall clock (defaults to
    nothing): simulation traces only ever use the simulator's virtual
    clock, so they stay deterministic; components that genuinely need
    wall time (the compiler) receive the clock explicitly.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        wall_clock: Optional[Callable[[], float]] = None,
        int_config=None,
        profiler=None,
        sampler=None,
        health=None,
        flight=None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.wall_clock = wall_clock
        #: an :class:`repro.obs.int.IntConfig` turns on in-band telemetry
        #: stamping for the run; None keeps the data plane untouched
        self.int_config = int_config
        #: a :class:`repro.obs.profile.Profiler` switches the simulator
        #: onto the instrumented run loop and attributes wall time
        self.profiler = profiler
        #: a :class:`repro.obs.timeseries.TimeSeriesSampler` samples
        #: probes on virtual-clock bucket boundaries during the run
        self.sampler = sampler
        #: a :class:`repro.obs.health.AlertEngine`; evaluated on every
        #: completed sampler bucket
        self.health = health
        #: a :class:`repro.obs.flight.FlightRecorder`; rides the tracer
        #: as a sink and dumps bundles on escalation/failure
        self.flight = flight
        if flight is not None:
            flight.bind(self)
            self.tracer.add_sink(flight.record)
        if health is not None:
            health.bind(self)
            if sampler is not None:
                sampler.on_bucket(health.observe)
            if flight is not None:
                health.escalate_to(flight.trigger)
        # Self-accounting: the observer reports its own overhead as
        # obs.* gauges at snapshot time (events recorded vs sampled
        # out, bytes streamed to disk, peak resident events, metric
        # cardinality) so the cost of watching is itself watched.
        self.registry.register_collector(self._collect_self)

    def _collect_self(self, registry: MetricsRegistry) -> None:
        stats = self.tracer.stats()
        registry.gauge(
            "obs.events_recorded", "trace events recorded (pre-sampling)"
        ).set(stats["events_recorded"])
        registry.gauge(
            "obs.events_sampled_out", "trace events dropped by sampling"
        ).set(stats["events_sampled_out"])
        registry.gauge(
            "obs.bytes_written", "bytes written by streaming trace sinks"
        ).set(stats["bytes_written"])
        registry.gauge(
            "obs.peak_resident_events",
            "peak trace events held in memory (retained + sampler-pending)",
        ).set(stats["peak_resident_events"])
        registry.gauge(
            "obs.metric_series", "distinct metric series in the registry"
        ).set(registry.total_series())

    def snapshot(self):
        """Registry snapshot (runs collectors)."""
        return self.registry.snapshot()


class _NullObservability:
    """The disabled singleton: a falsy ``enabled`` and no state.

    Instrumented code never calls anything else on it -- every site
    guards on ``enabled`` first -- but ``snapshot`` exists so generic
    reporting code need not special-case the disabled run.
    """

    enabled = False
    registry = None
    tracer = None
    wall_clock = None
    int_config = None
    profiler = None
    sampler = None
    health = None
    flight = None

    def snapshot(self):
        return {}

    def __repr__(self) -> str:
        return "NULL_OBS"


#: the process-wide disabled context (do not mutate)
NULL_OBS = _NullObservability()
