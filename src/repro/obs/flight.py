"""The crash flight recorder: last-N events + metrics, dumped on failure.

Full traces of million-packet runs are too big to keep, and end-of-run
snapshots are too late to explain a crash. The :class:`FlightRecorder`
is the middle ground: a bounded ring of the most recent trace events
(it subscribes to the run's :class:`~repro.obs.trace.Tracer` as a
*sink*, the pre-sampling stream -- so the ring stays complete even when
a :class:`~repro.obs.sinks.TraceSampler` is dropping most events from
the exported trace, and it works even when nothing ever exports the
full trace), plus
whatever else the observability context knows -- registry snapshot,
time-series curves, alert state -- bundled into one self-contained
``repro.flight/1`` JSON document the moment something goes wrong.

Two triggers:

* **alert escalation** -- a ``!critical`` health rule firing calls
  :meth:`trigger` (wired by :class:`~repro.obs.context.Observability`);
* **unhandled failure** -- wrap the run in :func:`flight_guard`; an
  escaping exception dumps a bundle and re-raises.

``python -m repro.obs.query alerts --flight bundle.json`` reconstructs
the firing alerts and their triggering time-series windows from the
bundle alone.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, IO, List, Optional

FLIGHT_SCHEMA = "repro.flight/1"


class FlightRecorder:
    """Bounded ring of recent trace events + bundle dumping.

    ``capacity`` bounds retained events; ``out_dir`` (optional) is where
    triggered bundles are written as ``flight-<n>.json``. Memory stays
    flat no matter how long the run is.
    """

    def __init__(self, capacity: int = 256,
                 out_dir: Optional[str] = None) -> None:
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.events_seen = 0
        #: every dumped bundle, in trigger order: (reason, dict, path)
        self.bundles: List = []
        self._obs = None

    def bind(self, obs) -> None:
        """Back-reference to the run's context, so a bundle can include
        the registry snapshot, time series, and alert state (wired by
        :class:`~repro.obs.context.Observability`)."""
        self._obs = obs

    # -- tracer sink (hot when tracing is on) ----------------------------------

    def record(self, event) -> None:
        self._ring.append(event)
        self.events_seen += 1

    def recent(self) -> List[Dict[str, object]]:
        return [event.as_dict() for event in self._ring]

    # -- bundling --------------------------------------------------------------

    def bundle(self, reason: str, now: Optional[float] = None) -> Dict[str, object]:
        """The self-contained diagnostic document."""
        obs = self._obs
        out: Dict[str, object] = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "virtual_time": now,
            "capacity": self.capacity,
            "events_seen": self.events_seen,
            "events": self.recent(),
            "metrics": obs.snapshot() if obs is not None else {},
            "timeseries": None,
            "alerts": None,
        }
        if obs is not None and getattr(obs, "sampler", None) is not None:
            out["timeseries"] = obs.sampler.dump()
        if obs is not None and getattr(obs, "health", None) is not None:
            out["alerts"] = obs.health.export()
        return out

    def trigger(self, reason: str, now: Optional[float] = None) -> Dict[str, object]:
        """Dump a bundle (called on alert escalation or by
        :func:`flight_guard`); returns the bundle dict. When ``out_dir``
        is set, also writes ``flight-<n>.json`` there."""
        data = self.bundle(reason, now)
        path = None
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            path = self.out_dir / f"flight-{len(self.bundles)}.json"
            with open(path, "w") as fp:
                json.dump(data, fp, sort_keys=True, indent=1)
                fp.write("\n")
        self.bundles.append((reason, data, path))
        return data

    def write_json(self, fp: IO[str], reason: str = "manual",
                   now: Optional[float] = None) -> None:
        json.dump(self.bundle(reason, now), fp, sort_keys=True, indent=1)
        fp.write("\n")


@contextmanager
def flight_guard(obs, clock=None, reason: str = "exception"):
    """Dump a flight bundle when an exception escapes the block, then
    re-raise. ``clock`` (optional callable) stamps the bundle's virtual
    time -- pass ``sim.now``."""
    try:
        yield
    except BaseException as exc:
        flight = getattr(obs, "flight", None)
        if flight is not None:
            now = clock() if clock is not None else None
            flight.trigger(f"{reason}:{type(exc).__name__}", now)
        raise


_REQUIRED_KEYS = (
    "schema", "reason", "virtual_time", "capacity", "events_seen",
    "events", "metrics", "timeseries", "alerts",
)


def validate_bundle(data: Dict[str, object]) -> List[str]:
    """Structural check of a ``repro.flight/1`` bundle; returns the list
    of problems (empty means valid). Used by tests and the CI gate."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["bundle is not an object"]
    if data.get("schema") != FLIGHT_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, expected {FLIGHT_SCHEMA!r}"
        )
    for key in _REQUIRED_KEYS:
        if key not in data:
            problems.append(f"missing key {key!r}")
    events = data.get("events")
    if not isinstance(events, list):
        problems.append("events is not a list")
    else:
        if isinstance(data.get("capacity"), int) and \
                len(events) > data["capacity"]:
            problems.append(
                f"{len(events)} events exceed capacity {data['capacity']}"
            )
        for i, event in enumerate(events):
            if not isinstance(event, dict) or "ts" not in event \
                    or "name" not in event or "track" not in event:
                problems.append(f"event {i} lacks ts/name/track")
                break
    if not isinstance(data.get("metrics"), dict):
        problems.append("metrics is not an object")
    ts = data.get("timeseries")
    if ts is not None:
        if not isinstance(ts, dict) or ts.get("schema") != "repro.timeseries/1":
            problems.append("timeseries is not a repro.timeseries/1 document")
    alerts = data.get("alerts")
    if alerts is not None:
        if not isinstance(alerts, dict) or \
                alerts.get("schema") != "repro.alerts/1":
            problems.append("alerts is not a repro.alerts/1 document")
    return problems
