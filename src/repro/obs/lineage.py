"""Causal packet lineage: every window's life, reconstructed per hop.

The trace (:mod:`repro.obs.trace`) is a flat event log; the INT stacks
(:mod:`repro.obs.int`) are per-packet hop records scattered across it.
This module folds both into a **lineage index**: for every
``(kernel_id, seq)`` window it reconstructs the causal graph

    emit -> [fragments ->] per-hop INT records -> delivery at a host
         -> retransmit attempts (distinct branches)
         -> or a drop, with the cause and the partial stack at death

keyed the way an operator asks questions ("what happened to window 3 of
the aggregate kernel?"). A window has one **branch** per ``from_node``
(an AllReduce window exists once per worker plus once as the broadcast
result) and one **attempt** per (re)transmission of that branch; INT
stacks carry the attempt number on the wire, so a retransmission's hop
records never blur into the original's.

Everything is plain data built from the virtual clock, so
:meth:`LineageIndex.to_json` is byte-identical across identical runs;
:meth:`LineageIndex.from_json` round-trips it for offline querying
(``python -m repro.obs.query``).
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError

#: kernel-id bit marking NCP fragments (mirrors repro.ncp.fragment,
#: duplicated here so lineage can read traces without the transport)
_FRAG_KERNEL_BIT = 0x8000

_NS = 1e9


class LineageError(ReproError):
    """Malformed lineage input (unknown window, bad JSON schema ...)."""


class Attempt:
    """One (re)transmission of a window branch.

    ``number`` 0 is the original send; retransmissions count up. The
    attempt collects every observation made of its packets: the send
    event, INT stacks surfaced at delivery or at a drop site, plain
    window:recv deliveries, and non-INT drop events attributed by time.
    """

    __slots__ = ("number", "kind", "sent_ts", "dst", "bytes", "stacks",
                 "deliveries", "drops")

    def __init__(self, number: int, kind: str = "send",
                 sent_ts: Optional[float] = None,
                 dst: Optional[str] = None, nbytes: Optional[int] = None):
        self.number = number
        self.kind = kind  # 'send' | 'retransmit'
        self.sent_ts = sent_ts
        self.dst = dst
        self.bytes = nbytes
        #: INT stacks observed for this attempt: dicts with ts, site,
        #: outcome, hops, and optional frag/truncated
        self.stacks: List[Dict[str, object]] = []
        #: window:recv events (post-reassembly decode at a host)
        self.deliveries: List[Dict[str, object]] = []
        #: drops without an INT stack (non-INT runs), by cause
        self.drops: List[Dict[str, object]] = []

    @property
    def outcome(self) -> str:
        """``delivered``, ``drop:<cause>``, or ``in-flight``."""
        if self.deliveries or any(
            s["outcome"] == "delivered" for s in self.stacks
        ):
            return "delivered"
        for stack in self.stacks:
            outcome = str(stack["outcome"])
            if outcome.startswith("drop:"):
                return outcome
        if self.drops:
            return f"drop:{self.drops[0]['cause']}"
        return "in-flight"

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "attempt": self.number,
            "kind": self.kind,
            "outcome": self.outcome,
        }
        if self.sent_ts is not None:
            d["sent_ts"] = self.sent_ts
        if self.dst is not None:
            d["dst"] = self.dst
        if self.bytes is not None:
            d["bytes"] = self.bytes
        if self.stacks:
            d["stacks"] = self.stacks
        if self.deliveries:
            d["deliveries"] = self.deliveries
        if self.drops:
            d["drops"] = self.drops
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Attempt":
        attempt = cls(
            int(d["attempt"]), str(d.get("kind", "send")),
            d.get("sent_ts"), d.get("dst"), d.get("bytes"),
        )
        attempt.stacks = list(d.get("stacks", ()))
        attempt.deliveries = list(d.get("deliveries", ()))
        attempt.drops = list(d.get("drops", ()))
        return attempt


class Branch:
    """All attempts of one ``from_node``'s copy of a window."""

    __slots__ = ("from_node", "label", "attempts")

    def __init__(self, from_node: int, label: Optional[str] = None):
        self.from_node = from_node
        self.label = label
        self.attempts: Dict[int, Attempt] = {}

    def attempt(self, number: int) -> Attempt:
        a = self.attempts.get(number)
        if a is None:
            a = Attempt(number, "send" if number == 0 else "retransmit")
            self.attempts[number] = a
        return a

    def latest_sent_before(self, ts: float) -> Attempt:
        """The attempt a timestamp-only observation belongs to: the last
        one put on the wire at or before ``ts`` (attempt 0 if none has a
        send event -- the trace may predate attempt tracking)."""
        best: Optional[Attempt] = None
        for a in self.attempts.values():
            if a.sent_ts is not None and a.sent_ts <= ts:
                if best is None or a.sent_ts > best.sent_ts:  # type: ignore[operator]
                    best = a
        return best if best is not None else self.attempt(0)

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "from": self.from_node,
            "attempts": [
                self.attempts[n].as_dict() for n in sorted(self.attempts)
            ],
        }
        if self.label is not None:
            d["label"] = self.label
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Branch":
        branch = cls(int(d["from"]), d.get("label"))
        for ad in d.get("attempts", ()):
            attempt = Attempt.from_dict(ad)
            branch.attempts[attempt.number] = attempt
        return branch


class WindowLineage:
    """The full causal record of one ``(kernel_id, seq)`` window."""

    __slots__ = ("kernel_id", "kernel", "seq", "branches")

    def __init__(self, kernel_id: int, seq: int, kernel: Optional[str] = None):
        self.kernel_id = kernel_id
        self.kernel = kernel  # source-level kernel name, when known
        self.seq = seq
        self.branches: Dict[int, Branch] = {}

    def branch(self, from_node: int) -> Branch:
        b = self.branches.get(from_node)
        if b is None:
            b = Branch(from_node)
            self.branches[from_node] = b
        return b

    # -- derived views ---------------------------------------------------------

    def first_sent_ts(self) -> Optional[float]:
        times = [
            a.sent_ts
            for b in self.branches.values()
            for a in b.attempts.values()
            if a.sent_ts is not None
        ]
        return min(times) if times else None

    def last_delivery_ts(self) -> Optional[float]:
        times: List[float] = []
        for b in self.branches.values():
            for a in b.attempts.values():
                times.extend(float(d["ts"]) for d in a.deliveries)
                times.extend(
                    float(s["ts"]) for s in a.stacks
                    if s["outcome"] == "delivered"
                )
        return max(times) if times else None

    def latency(self) -> Optional[float]:
        """First emit to last delivery (None until delivered)."""
        start, end = self.first_sent_ts(), self.last_delivery_ts()
        if start is None or end is None:
            return None
        return end - start

    def drop_records(self) -> List[Tuple[Branch, Attempt, Dict[str, object]]]:
        out = []
        for fn in sorted(self.branches):
            branch = self.branches[fn]
            for n in sorted(branch.attempts):
                attempt = branch.attempts[n]
                for stack in attempt.stacks:
                    if str(stack["outcome"]).startswith("drop:"):
                        out.append((branch, attempt, stack))
                for drop in attempt.drops:
                    out.append((branch, attempt, drop))
        return out

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "kernel_id": self.kernel_id,
            "seq": self.seq,
            "branches": [
                self.branches[fn].as_dict() for fn in sorted(self.branches)
            ],
        }
        if self.kernel is not None:
            d["kernel"] = self.kernel
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "WindowLineage":
        window = cls(int(d["kernel_id"]), int(d["seq"]), d.get("kernel"))
        for bd in d.get("branches", ()):
            branch = Branch.from_dict(bd)
            window.branches[branch.from_node] = branch
        return window


class LineageIndex:
    """Every window of a run, queryable by (kernel, seq).

    Build from a live tracer (:meth:`from_events`), from a saved trace
    JSONL, or from a previously written lineage JSON.
    """

    SCHEMA = "repro.lineage/1"

    def __init__(self) -> None:
        self.windows: Dict[Tuple[int, int], WindowLineage] = {}
        #: hop id -> human label, merged from every annotated event
        self.node_names: Dict[int, str] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable) -> "LineageIndex":
        """Fold trace events (TraceEvent objects or their JSONL dicts)
        into a lineage index. Events without a window identity are
        ignored; fragment kernel ids are mapped back to their kernel."""
        index = cls()
        for event in events:
            if isinstance(event, dict):
                name = event.get("name")
                ts = event.get("ts")
                track = event.get("track", "")
                args = event.get("args") or {}
            else:
                name = event.name
                ts = event.ts
                track = event.track
                args = event.args or {}
            if name in ("window:send", "window:retransmit"):
                index._fold_send(name, float(ts), track, args)
            elif name == "int:stack":
                index._fold_stack(float(ts), track, args)
            elif name == "window:recv":
                index._fold_recv(float(ts), track, args)
            elif name == "drop":
                index._fold_drop(float(ts), track, args)
        return index

    @classmethod
    def from_jsonl(cls, spec) -> "LineageIndex":
        """Fold a trace straight off disk, streaming line by line --
        ``spec`` is a trace file, a shard directory, a shard manifest,
        or a sharded sink's base path (anything
        :func:`repro.obs.sinks.resolve_trace_paths` accepts). Memory
        stays O(windows), never O(events): no shard is loaded whole."""
        from repro.obs.sinks import iter_trace_events

        return cls.from_events(iter_trace_events(spec))

    def _window(self, kernel_id: int, seq: int,
                kernel: Optional[str] = None) -> WindowLineage:
        key = (kernel_id, seq)
        window = self.windows.get(key)
        if window is None:
            window = WindowLineage(kernel_id, seq, kernel)
            self.windows[key] = window
        elif window.kernel is None and kernel is not None:
            window.kernel = kernel
        return window

    @staticmethod
    def _host_label(track: str) -> Optional[str]:
        return track[5:] if track.startswith("host ") else None

    def _fold_send(self, name: str, ts: float, track: str, args: Dict) -> None:
        kernel_id = args.get("kernel_id")
        if kernel_id is None or "seq" not in args or "from" not in args:
            return
        window = self._window(int(kernel_id), int(args["seq"]),
                              kernel=args.get("kernel"))
        branch = window.branch(int(args["from"]))
        if branch.label is None:
            branch.label = self._host_label(track)
        attempt = branch.attempt(int(args.get("attempt", 0)))
        attempt.kind = "send" if name == "window:send" else "retransmit"
        attempt.sent_ts = ts
        attempt.dst = args.get("dst")
        attempt.bytes = args.get("bytes")

    def _fold_stack(self, ts: float, track: str, args: Dict) -> None:
        # int:stack carries the *numeric* kernel id in "kernel".
        kernel_id = int(args["kernel"]) & ~_FRAG_KERNEL_BIT
        window = self._window(kernel_id, int(args["seq"]))
        branch = window.branch(int(args["from"]))
        attempt = branch.attempt(int(args.get("attempt", 0)))
        record: Dict[str, object] = {
            "ts": ts,
            "site": track,
            "outcome": args["outcome"],
            "hops": list(args.get("hops", ())),
        }
        if args.get("truncated"):
            record["truncated"] = 1
        if "frag" in args:
            record["frag"] = args["frag"]
        attempt.stacks.append(record)
        for hop in record["hops"]:  # type: ignore[union-attr]
            if "node" in hop:
                self.node_names[int(hop["hop"])] = str(hop["node"])

    def _fold_recv(self, ts: float, track: str, args: Dict) -> None:
        kernel_id = args.get("kernel_id")
        if kernel_id is None or "seq" not in args or "from" not in args:
            return
        window = self._window(int(kernel_id), int(args["seq"]),
                              kernel=args.get("kernel"))
        branch = window.branch(int(args["from"]))
        attempt = branch.latest_sent_before(ts)
        host = self._host_label(track) or track
        attempt.deliveries.append({"ts": ts, "host": host})

    def _fold_drop(self, ts: float, track: str, args: Dict) -> None:
        # Link/host drop instants; INT-carrying frames also emit an
        # int:stack at the drop site, so only keep stack-less drops.
        if "kernel" not in args or "seq" not in args or "from" not in args:
            return
        kernel = args["kernel"]
        if not isinstance(kernel, int):
            return
        window = self._window(kernel & ~_FRAG_KERNEL_BIT, int(args["seq"]))
        branch = window.branch(int(args["from"]))
        attempt = branch.latest_sent_before(ts)
        if any(str(s["outcome"]).startswith("drop:") for s in attempt.stacks):
            return
        attempt.drops.append({
            "ts": ts,
            "site": track,
            "cause": args.get("cause", "unknown"),
        })

    # -- queries ---------------------------------------------------------------

    def window(self, kernel: Union[int, str], seq: int) -> WindowLineage:
        """Look up one window; ``kernel`` is a numeric id or a name."""
        if isinstance(kernel, str) and kernel.isdigit():
            kernel = int(kernel)
        if isinstance(kernel, int):
            found = self.windows.get((kernel, seq))
        else:
            found = next(
                (w for w in self.windows.values()
                 if w.kernel == kernel and w.seq == seq),
                None,
            )
        if found is None:
            known = ", ".join(
                f"{k}:{s}" for k, s in sorted(self.windows)
            ) or "(none)"
            raise LineageError(
                f"no lineage for window {kernel}:{seq}; known windows: {known}"
            )
        return found

    def slowest(self, top: int = 10) -> List[WindowLineage]:
        """Delivered windows by emit-to-delivery latency, worst first."""
        timed = [
            (w.latency(), key) for key, w in self.windows.items()
            if w.latency() is not None
        ]
        timed.sort(key=lambda t: (-t[0], t[1]))
        return [self.windows[key] for _, key in timed[:top]]

    def drops(self) -> List[Tuple[WindowLineage, Branch, Attempt, Dict]]:
        """Every drop in the run, in (kernel, seq) order."""
        out = []
        for key in sorted(self.windows):
            window = self.windows[key]
            for branch, attempt, record in window.drop_records():
                out.append((window, branch, attempt, record))
        return out

    def hop_latencies(self) -> List[Dict[str, object]]:
        """Per-hop-record latencies (ns) across all delivered stacks --
        hop *i* is ingress-to-next-ingress; the last hop runs to the
        stack's delivery timestamp (matching ``int.hop_latency_ns``)."""
        out: List[Dict[str, object]] = []
        for key in sorted(self.windows):
            window = self.windows[key]
            for fn in sorted(window.branches):
                branch = window.branches[fn]
                for n in sorted(branch.attempts):
                    attempt = branch.attempts[n]
                    for stack in attempt.stacks:
                        if stack["outcome"] != "delivered":
                            continue
                        hops = stack["hops"]
                        if not hops:
                            continue
                        deliver_ns = int(round(float(stack["ts"]) * _NS))
                        for rec, nxt in zip(hops, hops[1:]):
                            out.append(self._hop_entry(
                                window, attempt, rec,
                                int(nxt["ingress_ns"]) - int(rec["ingress_ns"]),
                            ))
                        last = hops[-1]
                        out.append(self._hop_entry(
                            window, attempt, last,
                            deliver_ns - int(last["ingress_ns"]),
                        ))
        return out

    def _hop_entry(self, window: WindowLineage, attempt: Attempt,
                   rec: Dict, latency_ns: int) -> Dict[str, object]:
        return {
            "kernel_id": window.kernel_id,
            "kernel": window.kernel,
            "seq": window.seq,
            "attempt": attempt.number,
            "hop": rec["hop"],
            "node": self.node_names.get(int(rec["hop"])),
            "qdepth": rec["qdepth"],
            "latency_ns": latency_ns,
        }

    # -- human-readable explanation --------------------------------------------

    def node_label(self, node_id: int) -> str:
        name = self.node_names.get(node_id)
        return f"{name} (#{node_id})" if name else f"#{node_id}"

    def explain(self, kernel: Union[int, str], seq: int) -> str:
        """The full causal story of one window, as indented text."""
        window = self.window(kernel, seq)
        kname = window.kernel or f"#{window.kernel_id}"
        lines = [f"window {kname}:{window.seq} (kernel_id={window.kernel_id})"]
        for fn in sorted(window.branches):
            branch = window.branches[fn]
            origin = branch.label or self.node_names.get(fn)
            origin = f"{origin} (node {fn})" if origin else f"node {fn}"
            lines.append(f"  branch from {origin}")
            for n in sorted(branch.attempts):
                lines.extend(self._explain_attempt(branch.attempts[n]))
        return "\n".join(lines)

    def _explain_attempt(self, attempt: Attempt) -> List[str]:
        head = f"    attempt {attempt.number} ({attempt.kind})"
        if attempt.sent_ts is not None:
            head += f"  emit t={attempt.sent_ts * 1e6:.3f}us"
        if attempt.dst is not None:
            head += f" -> {attempt.dst}"
        if attempt.bytes is not None:
            head += f"  {attempt.bytes}B"
        lines = [head]
        for stack in sorted(attempt.stacks,
                            key=lambda s: (s["ts"], str(s.get("frag", "")))):
            frag = f" frag {stack['frag']}" if "frag" in stack else ""
            for hop in stack["hops"]:
                label = self.node_label(int(hop["hop"]))
                dropped = " DROPPED" if int(hop.get("flags", 0)) & 0x01 else ""
                lines.append(
                    f"      hop {label}:{frag} ingress={hop['ingress_ns']}ns "
                    f"egress={hop['egress_ns']}ns qdepth={hop['qdepth']}B "
                    f"tables={hop['tables']}{dropped}"
                )
            outcome = str(stack["outcome"])
            ts_us = float(stack["ts"]) * 1e6
            if outcome == "delivered":
                lines.append(
                    f"      delivered at {stack['site']}{frag} t={ts_us:.3f}us"
                )
            elif outcome == "drop:switch":
                lines.append(
                    f"      consumed at {stack['site']}{frag} t={ts_us:.3f}us "
                    "(kernel verdict: drop -- e.g. aggregated in-network)"
                )
            else:
                lines.append(
                    f"      dropped at {stack['site']}{frag} t={ts_us:.3f}us "
                    f"({outcome})"
                )
            if stack.get("truncated"):
                lines.append("      (stack truncated: hop cap/byte budget hit)")
        for drop in attempt.drops:
            lines.append(
                f"      dropped at {drop['site']} "
                f"t={float(drop['ts']) * 1e6:.3f}us (cause: {drop['cause']})"
            )
        for delivery in attempt.deliveries:
            lines.append(
                f"      window decoded at host {delivery['host']} "
                f"t={float(delivery['ts']) * 1e6:.3f}us"
            )
        if attempt.outcome == "in-flight":
            lines.append("      (no delivery or drop observed: in flight "
                         "at end of trace)")
        return lines

    # -- (de)serialization -----------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """Pure data, deterministically ordered: byte-identical across
        identical runs once serialized with sorted keys."""
        return {
            "schema": self.SCHEMA,
            "nodes": {
                str(k): self.node_names[k] for k in sorted(self.node_names)
            },
            "windows": [
                self.windows[key].as_dict() for key in sorted(self.windows)
            ],
        }

    def write_json(self, fp: IO[str]) -> None:
        json.dump(self.to_json(), fp, sort_keys=True, indent=1)
        fp.write("\n")

    @classmethod
    def from_json(cls, obj: Dict[str, object]) -> "LineageIndex":
        if obj.get("schema") != cls.SCHEMA:
            raise LineageError(
                f"unsupported lineage schema {obj.get('schema')!r} "
                f"(expected {cls.SCHEMA!r})"
            )
        index = cls()
        for k, name in obj.get("nodes", {}).items():  # type: ignore[union-attr]
            index.node_names[int(k)] = str(name)
        for wd in obj.get("windows", ()):  # type: ignore[union-attr]
            window = WindowLineage.from_dict(wd)
            index.windows[(window.kernel_id, window.seq)] = window
        return index
