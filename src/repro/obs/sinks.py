"""Streaming trace sinks and deterministic sampling policies.

PR 1's tracer keeps every event in one Python list, which is fine for a
benchmark round and fatal for a fat-tree run pushing millions of
packets: the observer OOMs before the simulator does. This module is
observability phase 3's memory discipline:

* :class:`JsonlSink` -- an incremental JSONL writer that streams each
  event to disk the moment it is recorded, optionally rolling to a new
  shard every N events (plus a ``repro.tracemanifest/1`` index so
  readers find the shards); memory stays flat no matter how long the
  run is, and the sink self-accounts ``bytes_written``/
  ``events_written`` so the observer can report its own overhead;
* :class:`BoundedBufferSink` -- a last-N in-memory ring for callers
  that want recent events without the disk (the generic cousin of the
  crash flight recorder's ring);
* :class:`TraceSampler` -- deterministic **head sampling** keyed on a
  stable hash of the window identity ``(kernel, seq)`` (identical runs
  keep identical windows -- no RNG, no wall clock), composed with
  **anomaly retention**: a bounded pending buffer holds the events of
  sampled-out windows just long enough that a drop, a retransmit, or a
  slowest-percentile delivery can *promote* the window, flushing its
  full history to the output. ``query explain`` therefore still
  reconstructs every anomalous window at any sampling rate.

Sampling sits *between* the tracer's two subscriber lists: pre-sampling
sinks (``Tracer.add_sink`` -- the flight recorder) see every event;
post-sampling streams (``Tracer.add_stream`` -- these sinks) see only
what the policy keeps.

Readers: :func:`resolve_trace_paths` turns a file, shard base, manifest
or directory into the ordered shard list, and :func:`iter_jsonl` yields
parsed events line by line so lineage and the query CLI never hold a
full trace in memory.
"""

from __future__ import annotations

import json
from collections import OrderedDict, deque
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.obs.registry import ObservabilityError

MANIFEST_SCHEMA = "repro.tracemanifest/1"

#: kernel-id bit marking NCP fragments (mirrors repro.ncp.fragment);
#: masked off so a fragment samples with its parent window
_FRAG_KERNEL_BIT = 0x8000

#: head-sampling hash space; rate quantizes to 1/HASH_SPACE steps
_HASH_SPACE = 1_000_000

#: latency histogram bucket bounds (simulated seconds) for the
#: slowest-percentile promotion -- log-spaced from 1us to 1s
_SLOW_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 1e-1, 1.0,
)


def stable_hash(text: str) -> int:
    """64-bit FNV-1a: stable across processes, platforms and Python
    versions (``hash()`` is salted per process, so it would break the
    byte-identical-traces guarantee)."""
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def _event_fields(event) -> Tuple[str, float, Dict]:
    """(name, ts, args) from a TraceEvent or its JSONL dict."""
    if isinstance(event, dict):
        return event.get("name", ""), event.get("ts", 0.0), event.get("args") or {}
    return event.name, event.ts, event.args or {}


def window_key(event) -> Optional[Tuple[str, int]]:
    """The sampling identity of an event: ``(kernel, seq)``.

    Numeric kernel ids are preferred (hosts carry ``kernel_id``, the
    link/switch layers carry the raw id in ``kernel``) and the fragment
    bit is masked so every fragment samples with its window. Events
    without a window identity (health alerts, decode drops, bare spans)
    return None and are never sampled out.
    """
    _, _, args = _event_fields(event)
    if "seq" not in args:
        return None
    kernel = args.get("kernel_id", args.get("kernel"))
    if kernel is None:
        return None
    if isinstance(kernel, int):
        kernel &= ~_FRAG_KERNEL_BIT
    return (str(kernel), int(args["seq"]))


class TraceSampler:
    """Deterministic head sampling + anomaly/tail retention.

    ``rate`` is the head-kept fraction of windows: a window is kept iff
    ``stable_hash(salt:kernel:seq) % 1e6 < rate * 1e6``, so identical
    runs keep identical windows and two trace consumers configured the
    same way agree without coordination.

    Sampled-out windows are not discarded immediately: their events sit
    in a FIFO **pending buffer** (bounded by ``max_pending`` windows) so
    that an anomaly can still promote the whole window:

    * a ``drop`` event or an ``int:stack`` whose outcome is a real drop
      (``drop:switch`` is in-network consumption, not an anomaly);
    * a ``window:retransmit``;
    * a delivery whose emit-to-recv latency lands in the slowest
      ``slow_percentile`` bucket of the run so far (tail sampling; the
      bucket histogram evolves identically in identical runs, so the
      promotion set is deterministic).

    Promotion flushes the buffered history and keeps every later event
    of that window. Windows that age out of the pending buffer, or are
    still pending at :meth:`drain`, count as sampled out.
    """

    def __init__(
        self,
        rate: float = 0.01,
        keep_anomalies: bool = True,
        slow_percentile: Optional[float] = None,
        max_pending: int = 4096,
        salt: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ObservabilityError(f"sampling rate {rate} outside [0, 1]")
        if slow_percentile is not None and not 0 < slow_percentile < 100:
            raise ObservabilityError(
                f"slow percentile {slow_percentile} outside (0, 100)"
            )
        if max_pending < 1:
            raise ObservabilityError("max_pending must be at least 1")
        self.rate = rate
        self.keep_anomalies = keep_anomalies
        self.slow_percentile = slow_percentile
        self.max_pending = max_pending
        self.salt = salt
        self._threshold = int(rate * _HASH_SPACE)
        self._emit = None
        #: key -> {"events": [..] or None (decided: kept), "first_ts": t}
        self._pending: "OrderedDict[Tuple[str, int], Dict]" = OrderedDict()
        self.pending_events = 0
        self._promoted: set = set()
        self._latency_counts = [0] * (len(_SLOW_BUCKETS) + 1)
        self._latency_total = 0
        # -- self-accounting
        self.events_seen = 0
        self.events_kept = 0
        self.events_sampled_out = 0
        self.windows_promoted = 0
        self.windows_sampled_out = 0
        self.late_anomalies = 0

    def bind(self, emit) -> None:
        """``emit(event)`` receives every kept event (tracer-internal)."""
        self._emit = emit

    # -- decisions -------------------------------------------------------------

    def head_keep(self, key: Tuple[str, int]) -> bool:
        """The stateless head decision for a window key."""
        if self._threshold >= _HASH_SPACE:
            return True
        if self._threshold <= 0:
            return False
        h = stable_hash(f"{self.salt}:{key[0]}:{key[1]}")
        return h % _HASH_SPACE < self._threshold

    @staticmethod
    def _is_anomaly(name: str, args: Dict) -> bool:
        if name == "drop" or name == "window:retransmit":
            return True
        if name == "int:stack":
            outcome = str(args.get("outcome", ""))
            # drop:switch is the kernel's own verdict (e.g. a window
            # aggregated in-network) -- expected, not anomalous
            return outcome.startswith("drop:") and outcome != "drop:switch"
        return False

    def _is_slow(self, latency: float) -> bool:
        """Does this delivery land in the slowest-percentile bucket set?

        Graded against the run-so-far latency histogram *before* this
        observation is folded in; needs a few observations before it can
        fire, which is the standard warm-up of any tail sampler."""
        idx = self._bucket(latency)
        self._latency_counts[idx] += 1
        self._latency_total += 1
        prior = self._latency_total - 1  # observations before this one
        if self.slow_percentile is None or prior < 8:
            return False
        # strictly-faster deliveries seen so far (the fold-in above put
        # this one in bucket idx, which is not counted as "below")
        below = sum(self._latency_counts[:idx])
        return below >= prior * self.slow_percentile / 100.0

    @staticmethod
    def _bucket(latency: float) -> int:
        for i, bound in enumerate(_SLOW_BUCKETS):
            if latency <= bound:
                return i
        return len(_SLOW_BUCKETS)

    # -- the tracer-facing hot path --------------------------------------------

    def feed(self, event) -> None:
        self.events_seen += 1
        name, ts, args = _event_fields(event)
        key = window_key(event)
        if key is None:
            # no window identity: always keep (low-volume by nature --
            # health instants, decode drops, unannotated spans)
            self._out(event)
            return
        anomaly = self.keep_anomalies and self._is_anomaly(name, args)
        entry = self._pending.get(key)
        if key in self._promoted or self.head_keep(key):
            self._out(event)
            return
        fresh = entry is None
        if fresh:
            entry = {"events": [], "first_ts": ts}
            self._pending[key] = entry
            self._evict()
        slow = (
            name == "window:recv"
            and entry["events"] is not None
            and self._is_slow(ts - entry["first_ts"])
        )
        if anomaly or slow:
            if anomaly and fresh:
                # the window's earlier events were already evicted (a
                # real trace always opens with a send): the promotion
                # keeps everything from here on, but the head is gone
                self.late_anomalies += 1
            self._promote(key, entry)
            self._out(event)
            return
        if entry["events"] is None:  # already promoted and re-buffered
            self._out(event)
            return
        entry["events"].append(event)
        self.pending_events += 1

    def _out(self, event) -> None:
        self.events_kept += 1
        if self._emit is not None:
            self._emit(event)

    def _promote(self, key: Tuple[str, int], entry: Dict) -> None:
        buffered = entry["events"]
        if buffered:
            self.pending_events -= len(buffered)
            for event in buffered:
                self._out(event)
        entry["events"] = None
        self._promoted.add(key)
        self.windows_promoted += 1

    def _evict(self) -> None:
        while len(self._pending) > self.max_pending:
            _, entry = self._pending.popitem(last=False)
            events = entry["events"]
            if events:
                self.pending_events -= len(events)
                self.events_sampled_out += len(events)
                self.windows_sampled_out += 1

    # -- end of run ------------------------------------------------------------

    def drain(self) -> None:
        """Finalize: windows still pending are sampled out for good."""
        for entry in self._pending.values():
            events = entry["events"]
            if events:
                self.pending_events -= len(events)
                self.events_sampled_out += len(events)
                self.windows_sampled_out += 1
        self._pending.clear()

    def stats(self) -> Dict[str, object]:
        return {
            "rate": self.rate,
            "events_seen": self.events_seen,
            "events_kept": self.events_kept,
            "events_sampled_out": self.events_sampled_out,
            "events_pending": self.pending_events,
            "windows_promoted": self.windows_promoted,
            "windows_sampled_out": self.windows_sampled_out,
            "late_anomalies": self.late_anomalies,
        }


# -- sinks ---------------------------------------------------------------------


class JsonlSink:
    """Incremental JSONL writer, optionally rolling to sharded files.

    ``JsonlSink("run.trace.jsonl")`` streams one file;
    ``JsonlSink("run.trace.jsonl", shard_events=100_000)`` writes
    ``run.trace-00000.jsonl``, ``run.trace-00001.jsonl``, ... rolling
    every ``shard_events`` events, and :meth:`close` drops a
    ``run.trace.manifest.json`` (``repro.tracemanifest/1``) listing the
    shards so readers reassemble the stream in order.

    Self-accounts ``events_written`` and ``bytes_written`` -- the
    observer's own overhead is itself observable (and budget-gated).
    """

    def __init__(self, path: Union[str, Path],
                 shard_events: Optional[int] = None) -> None:
        if shard_events is not None and shard_events < 1:
            raise ObservabilityError("shard_events must be at least 1")
        self.base = Path(path)
        self.shard_events = shard_events
        self.events_written = 0
        self.bytes_written = 0
        self._fp = None
        self._shard_idx = 0
        self._shard_count = 0
        #: [(path, events, bytes)] per closed-or-open shard, in order
        self.shards: List[List] = []
        self._closed = False

    # -- paths -----------------------------------------------------------------

    def _stem(self) -> str:
        name = self.base.name
        return name[: -len(".jsonl")] if name.endswith(".jsonl") else name

    def shard_path(self, idx: int) -> Path:
        return self.base.with_name(f"{self._stem()}-{idx:05d}.jsonl")

    def manifest_path(self) -> Path:
        return self.base.with_name(f"{self._stem()}.manifest.json")

    def paths(self) -> List[Path]:
        return [Path(s[0]) for s in self.shards]

    # -- writing ---------------------------------------------------------------

    def _roll(self) -> None:
        if self._fp is not None:
            self._fp.close()
        path = (
            self.base if self.shard_events is None
            else self.shard_path(self._shard_idx)
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        self._fp = open(path, "w")
        self._shard_idx += 1
        self._shard_count = 0
        self.shards.append([str(path), 0, 0])

    def write(self, event) -> None:
        if self._closed:
            raise ObservabilityError("write to a closed JsonlSink")
        if self._fp is None or (
            self.shard_events is not None
            and self._shard_count >= self.shard_events
        ):
            self._roll()
        record = event if isinstance(event, dict) else event.as_dict()
        line = json.dumps(record, sort_keys=True)
        self._fp.write(line)
        self._fp.write("\n")
        nbytes = len(line) + 1
        self.events_written += 1
        self.bytes_written += nbytes
        self._shard_count += 1
        self.shards[-1][1] += 1
        self.shards[-1][2] += nbytes

    # sinks are callables too, so one can ride Tracer.add_sink directly
    __call__ = write

    def flush(self) -> None:
        if self._fp is not None:
            self._fp.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._fp is not None:
            self._fp.close()
            self._fp = None
        if self.shard_events is not None and self.shards:
            manifest = {
                "schema": MANIFEST_SCHEMA,
                "events": self.events_written,
                "bytes": self.bytes_written,
                "shards": [
                    {"path": Path(p).name, "events": ev, "bytes": by}
                    for p, ev, by in self.shards
                ],
            }
            with open(self.manifest_path(), "w") as fp:
                json.dump(manifest, fp, sort_keys=True, indent=1)
                fp.write("\n")

    def stats(self) -> Dict[str, int]:
        return {
            "events_written": self.events_written,
            "bytes_written": self.bytes_written,
            "shards": len(self.shards),
        }


class BoundedBufferSink:
    """A last-N in-memory ring of events (the generic cousin of the
    flight recorder's ring): bounded retention for callers that want
    recent history without any disk."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ObservabilityError("capacity must be at least 1")
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        self.events_seen = 0
        self.bytes_written = 0

    def write(self, event) -> None:
        self._ring.append(event)
        self.events_seen += 1

    __call__ = write

    def events(self) -> List:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


# -- streaming readers ---------------------------------------------------------


def resolve_trace_paths(spec: Union[str, Path]) -> List[Path]:
    """The ordered file list behind a trace spec: a plain JSONL file, a
    shard-set base path (``run.trace.jsonl`` written with sharding), a
    ``*.manifest.json``, or a directory of shards."""
    p = Path(spec)
    if p.is_dir():
        paths = sorted(p.glob("*.jsonl"))
        if not paths:
            raise FileNotFoundError(f"no *.jsonl files in directory {p}")
        return paths
    if p.name.endswith(".manifest.json") and p.exists():
        return _manifest_shards(p)
    if p.exists():
        return [p]
    # the base path of a sharded sink: look for its manifest, then for
    # bare shards matching the naming scheme
    stem = p.name[: -len(".jsonl")] if p.name.endswith(".jsonl") else p.name
    manifest = p.with_name(f"{stem}.manifest.json")
    if manifest.exists():
        return _manifest_shards(manifest)
    shards = sorted(p.parent.glob(f"{stem}-[0-9][0-9][0-9][0-9][0-9].jsonl"))
    if shards:
        return shards
    raise FileNotFoundError(f"no trace at {p} (nor shards/manifest for it)")


def _manifest_shards(manifest: Path) -> List[Path]:
    with open(manifest) as fp:
        data = json.load(fp)
    if data.get("schema") != MANIFEST_SCHEMA:
        raise ObservabilityError(
            f"{manifest} is not a {MANIFEST_SCHEMA} manifest "
            f"(schema={data.get('schema')!r})"
        )
    return [manifest.parent / shard["path"] for shard in data["shards"]]


def iter_jsonl(paths: Iterable[Union[str, Path]]) -> Iterator[Dict]:
    """Parsed events, one at a time, across a shard list -- the
    streaming reader lineage and the query CLI fold from, so a sharded
    multi-gigabyte trace is never resident in memory."""
    for path in paths:
        with open(path) as fp:
            for line in fp:
                line = line.strip()
                if line:
                    yield json.loads(line)


def iter_trace_events(spec: Union[str, Path]) -> Iterator[Dict]:
    """:func:`resolve_trace_paths` + :func:`iter_jsonl` in one call."""
    return iter_jsonl(resolve_trace_paths(spec))
