"""Virtual-clock time series: windowed aggregation of run metrics.

End-of-run registry snapshots answer "how much, in total"; for
million-packet runs the interesting questions are curves -- *when* did
the drop rate spike, how did the queue depth evolve, did retransmits
cluster around the link failure. The :class:`TimeSeriesSampler` turns
the simulator's always-on component stats into those curves:

* the simulator's instrumented run loop calls :meth:`advance` before
  processing each event, so samples land exactly on fixed-width bucket
  boundaries of the **virtual clock** -- identical seeded runs produce
  byte-identical ``repro.timeseries/1`` JSON;
* *probes* are cheap callables read at each boundary: counter probes
  record the cumulative value (rates are derived as deltas / interval),
  gauge probes record the instantaneous value;
* observers (the :mod:`repro.obs.health` alert engine) are notified
  after every completed boundary, which is what makes alerting
  *continuous* rather than post-hoc.

:func:`attach_network_probes` and :func:`attach_cluster_probes` wire the
standard curves (per-link drops by cause, frames, bytes, queue depth;
NCP windows sent/received/retransmitted) without touching the hot path.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, IO, List, Optional, Tuple

from repro.obs.registry import ObservabilityError

TIMESERIES_SCHEMA = "repro.timeseries/1"


class _Series:
    __slots__ = ("name", "labels", "kind", "fn", "points")

    def __init__(self, name: str, labels: Dict[str, str], kind: str,
                 fn: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.kind = kind
        self.fn = fn
        #: [(bucket_index, value), ...] in sampling order
        self.points: List[Tuple[int, float]] = []

    def key(self) -> Tuple:
        return (self.name, tuple(sorted(self.labels.items())))


class TimeSeriesSampler:
    """Fixed-width bucket sampling over the simulator's virtual clock.

    ``interval`` is in simulated seconds. Bucket *k* covers
    ``[k*interval, (k+1)*interval)``; the sample recorded at boundary
    ``k`` reflects the state after every event strictly before that
    boundary (events scheduled exactly on a boundary land in the bucket
    it opens). ``max_samples`` bounds per-series memory and trips an
    :class:`~repro.obs.registry.ObservabilityError` on runaway
    configurations (tiny interval against a long run).
    """

    def __init__(self, interval: float, max_samples: int = 200_000) -> None:
        if interval <= 0:
            raise ObservabilityError("sampling interval must be positive")
        self.interval = interval
        self.max_samples = max_samples
        self._series: List[_Series] = []
        self._next_idx = 0
        self._observers: List[Callable[["TimeSeriesSampler", float, int], None]] = []
        self.end_time: Optional[float] = None

    # -- configuration ---------------------------------------------------------

    def add_probe(
        self,
        name: str,
        fn: Callable[[], float],
        labels: Optional[Dict[str, str]] = None,
        kind: str = "counter",
    ) -> None:
        """Register one probed series. ``kind`` is ``"counter"`` (probe
        returns a cumulative value; rates derive from deltas) or
        ``"gauge"`` (instantaneous)."""
        if kind not in ("counter", "gauge"):
            raise ObservabilityError(f"unknown series kind {kind!r}")
        series = _Series(name, dict(labels or {}), kind, fn)
        if any(s.key() == series.key() for s in self._series):
            raise ObservabilityError(
                f"duplicate time series {name!r} labels {series.labels}"
            )
        self._series.append(series)

    def on_bucket(
        self, fn: Callable[["TimeSeriesSampler", float, int], None]
    ) -> None:
        """Run ``fn(sampler, boundary_time, bucket_index)`` after every
        completed boundary (the alert engine's evaluation hook)."""
        self._observers.append(fn)

    # -- sampling (simulator-facing) -------------------------------------------

    @property
    def next_due(self) -> float:
        return self._next_idx * self.interval

    def advance(self, when: float) -> None:
        """Sample every boundary at or before virtual time ``when``
        (called by the instrumented run loop before each event)."""
        while self._next_idx * self.interval <= when:
            self._sample(self._next_idx)
            self._next_idx += 1

    def finish(self, now: float) -> None:
        """Record one trailing sample at the next boundary so the final
        partial bucket's end state is captured, and stamp the run's end
        time. Idempotent: the first call wins."""
        if self.end_time is not None:
            return
        self.advance(now)
        self._sample(self._next_idx)
        self._next_idx += 1
        self.end_time = now

    def _sample(self, idx: int) -> None:
        for series in self._series:
            if len(series.points) >= self.max_samples:
                raise ObservabilityError(
                    f"time series {series.name!r} exceeded {self.max_samples} "
                    "samples; raise the interval or max_samples"
                )
            series.points.append((idx, series.fn()))
        t = idx * self.interval
        for observer in self._observers:
            observer(self, t, idx)

    # -- queries ---------------------------------------------------------------

    def series_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for series in sorted(self._series, key=_Series.key):
            seen.setdefault(series.name, None)
        return list(seen)

    def matching(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> List[_Series]:
        """Every series with ``name`` whose labels include ``labels``."""
        want = labels or {}
        return [
            s for s in sorted(self._series, key=_Series.key)
            if s.name == name
            and all(s.labels.get(k) == v for k, v in want.items())
        ]

    def summed(self, name: str, labels: Optional[Dict[str, str]] = None,
               ) -> List[Tuple[int, float]]:
        """Matching series pointwise-summed by bucket index (the shape
        alert rules evaluate against)."""
        acc: Dict[int, float] = {}
        for series in self.matching(name, labels):
            for idx, value in series.points:
                acc[idx] = acc.get(idx, 0.0) + value
        return sorted(acc.items())

    # -- export ----------------------------------------------------------------

    def dump(self) -> Dict[str, object]:
        """The ``repro.timeseries/1`` document: pure data, series sorted
        by (name, labels), byte-identical across identical runs."""
        series_out = []
        for series in sorted(self._series, key=_Series.key):
            series_out.append(
                {
                    "name": series.name,
                    "labels": dict(sorted(series.labels.items())),
                    "kind": series.kind,
                    "points": [[idx, value] for idx, value in series.points],
                }
            )
        return {
            "schema": TIMESERIES_SCHEMA,
            "interval": self.interval,
            "buckets": self._next_idx,
            "end_time": self.end_time,
            "series": series_out,
        }

    def write_json(self, fp: IO[str]) -> None:
        json.dump(self.dump(), fp, sort_keys=True)
        fp.write("\n")


def rates(points: List[Tuple[int, float]], interval: float,
          ) -> List[Tuple[int, float]]:
    """Per-bucket rate curve from cumulative counter samples: entry at
    bucket ``k`` is ``(v_k - v_prev) / ((k - k_prev) * interval)``."""
    out: List[Tuple[int, float]] = []
    prev: Optional[Tuple[int, float]] = None
    for idx, value in points:
        if prev is not None and idx > prev[0]:
            out.append((idx, (value - prev[1]) / ((idx - prev[0]) * interval)))
        prev = (idx, value)
    return out


# -- standard probe sets -------------------------------------------------------


def attach_network_probes(sampler: TimeSeriesSampler, net) -> None:
    """Wire the standard network curves of a :class:`repro.net.network.
    Network`: per-link frames/bytes/drops-by-cause (counters), per-link
    directional queue depth (gauges), aggregate drop and event counters.
    """
    for link in net.links:
        name = f"{link.a.name}<->{link.b.name}"
        stats = link.stats
        sampler.add_probe(
            "link.frames", (lambda s=stats: s.frames), {"link": name}
        )
        sampler.add_probe(
            "link.bytes", (lambda s=stats: s.bytes), {"link": name}
        )
        for cause in ("loss", "overflow", "down"):
            sampler.add_probe(
                "link.drops",
                (lambda s=stats, c=cause: getattr(s, f"drops_{c}")),
                {"link": name, "cause": cause},
            )
        for endpoint in (link.a, link.b):
            sampler.add_probe(
                "link.qdepth_bytes",
                (lambda lk=link, ep=endpoint: lk.backlog_bytes(
                    ep, ep.sim.now()
                )),
                {"link": name, "dir": f"{endpoint.name}->"},
                kind="gauge",
            )
    sampler.add_probe(
        "net.drops",
        lambda: sum(lk.stats.drops for lk in net.links),
    )
    sampler.add_probe("sim.events", lambda: net.sim.events_processed)


def attach_cluster_probes(sampler: TimeSeriesSampler, cluster) -> None:
    """Wire the NCP curves of a :class:`repro.runtime.cluster.Cluster`:
    windows sent/received/retransmitted summed over all hosts (the
    ``ncp.retransmits`` stream health rules watch)."""
    hosts = list(cluster.hosts.values())
    sampler.add_probe(
        "ncp.windows_sent", lambda: sum(h.windows_sent for h in hosts)
    )
    sampler.add_probe(
        "ncp.windows_received", lambda: sum(h.windows_received for h in hosts)
    )
    sampler.add_probe(
        "ncp.retransmits",
        lambda: sum(h.windows_retransmitted for h in hosts),
    )
