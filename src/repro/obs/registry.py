"""The metrics registry: counters, gauges and histograms with labels.

Every layer of the stack publishes into one :class:`MetricsRegistry` --
the net simulator, links, the PISA pipeline, the NCP windower and the
host runtime -- so a benchmark can snapshot a single object and get the
whole per-layer breakdown (bytes on the wire vs. bytes aggregated
in-switch, per-stage occupancy, drop causes) instead of scraping each
module's private stats.

Model
-----
A *family* is declared once per registry (``registry.counter("link.bytes",
labels=("link",))``) and fans out into one *series* per distinct label
assignment (``family.labels(link="h0<->s1").inc(n)``). Label names are
fixed at declaration; every ``labels()`` call must bind exactly that set.
A family declared with no labels is used directly (``family.inc()``).

Snapshots are pure data (nested dicts, deterministically ordered) so
they serialize to JSON byte-identically across identical runs.

*Collectors* bridge the always-on ad-hoc stats the simulator keeps
(``Link.stats``, ``Pipeline.stats`` ...) into the registry: a collector
is a callback run at snapshot time that sets gauges from those structs.
This keeps the packet hot path free of registry lookups while still
surfacing everything through one schema.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class ObservabilityError(ReproError):
    """Misuse of the metrics/trace API (wrong labels, kind clash ...)."""


#: default histogram bucket upper bounds (seconds-ish scale; callers
#: pass their own for byte- or count-valued histograms)
DEFAULT_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2, 1e-1, 1.0,
)


class Counter:
    """A monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time series (set/add freely)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def add(self, amount) -> None:
        self.value += amount


class Histogram:
    """A distribution series.

    Keeps exact observations (simulation scale makes that affordable)
    so percentiles are computed by linear interpolation over the sorted
    sample, plus cumulative bucket counts for the snapshot.
    """

    __slots__ = ("values", "total", "buckets")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.values: List[float] = []
        self.total = 0.0
        self.buckets = tuple(buckets)

    def observe(self, value) -> None:
        self.values.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, p: float) -> float:
        """Exact percentile (0 <= p <= 100) with linear interpolation.

        The extremes short-circuit to min/max so p=0 and p=100 never go
        through rank arithmetic (float rounding there could otherwise
        index past the sample or interpolate the endpoints)."""
        if not 0 <= p <= 100:
            raise ObservabilityError(f"percentile {p} outside [0, 100]")
        if not self.values:
            raise ObservabilityError("percentile of an empty histogram")
        ordered = sorted(self.values)
        if p == 0:
            return float(ordered[0])
        if p == 100 or len(ordered) == 1:
            return float(ordered[-1])
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = min(math.ceil(rank), len(ordered) - 1)
        if lo == hi:
            return float(ordered[lo])
        frac = rank - lo
        return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative counts per upper bound, Prometheus-style, with a
        trailing ``+Inf`` bucket."""
        ordered = sorted(self.values)
        out: Dict[str, int] = {}
        i = 0
        for bound in self.buckets:
            while i < len(ordered) and ordered[i] <= bound:
                i += 1
            out[repr(bound)] = i
        out["+Inf"] = len(ordered)
        return out

    def summary(self) -> Dict[str, object]:
        if not self.values:
            return {"count": 0, "sum": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": float(min(self.values)),
            "max": float(max(self.values)),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": self.bucket_counts(),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


#: label value every over-cap series collapses into (all positions)
OVERFLOW_LABEL = "__overflow__"


class MetricFamily:
    """One named metric and all its labelled series.

    ``max_series`` caps cardinality: once that many *distinct* label
    assignments exist, further new assignments collapse into a single
    ``__overflow__`` series (every label position set to
    :data:`OVERFLOW_LABEL`) instead of growing the map -- at fat-tree
    scale a per-link family would otherwise hold thousands of series.
    Existing series keep updating; only *new* keys are routed, and
    ``overflow_routed`` counts how many distinct keys were collapsed so
    the snapshot says what it lost."""

    def __init__(
        self,
        kind: str,
        name: str,
        description: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_series: Optional[int] = None,
    ):
        self.kind = kind
        self.name = name
        self.description = description
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self.max_series = max_series
        self._series: Dict[Tuple, object] = {}
        self._overflow_keys: set = set()
        self.overflow_routed = 0

    def labels(self, **label_values):
        """The series for one label assignment (created on first use;
        over-cap assignments land on the ``__overflow__`` series)."""
        if set(label_values) != set(self.label_names):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(label_values)}"
            )
        key = tuple(str(label_values[n]) for n in self.label_names)
        series = self._series.get(key)
        if series is None:
            if (
                self.max_series is not None
                and self.label_names
                and len(self._series) >= self.max_series
            ):
                if key not in self._overflow_keys:
                    self._overflow_keys.add(key)
                    self.overflow_routed += 1
                key = (OVERFLOW_LABEL,) * len(self.label_names)
                series = self._series.get(key)
                if series is None:
                    series = self._make_series()
                    self._series[key] = series
                return series
            series = self._make_series()
            self._series[key] = series
        return series

    def series_count(self) -> int:
        return len(self._series)

    def _make_series(self):
        if self.kind == "histogram":
            return Histogram(self.buckets or DEFAULT_BUCKETS)
        return _KINDS[self.kind]()

    # -- label-free convenience ------------------------------------------------

    def _sole(self):
        if self.label_names:
            raise ObservabilityError(
                f"metric {self.name!r} has labels {list(self.label_names)}; "
                "use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: int = 1) -> None:
        self._sole().inc(amount)

    def set(self, value) -> None:
        self._sole().set(value)

    def add(self, amount) -> None:
        self._sole().add(amount)

    def observe(self, value) -> None:
        self._sole().observe(value)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        series = []
        for key in sorted(self._series):
            metric = self._series[key]
            value = (
                metric.summary()
                if isinstance(metric, Histogram)
                else metric.value
            )
            series.append(
                {"labels": dict(zip(self.label_names, key)), "value": value}
            )
        out: Dict[str, object] = {
            "kind": self.kind,
            "description": self.description,
            "label_names": list(self.label_names),
            "series": series,
        }
        # Only when the cap actually bit -- uncapped registries keep
        # producing byte-identical snapshots to previous releases.
        if self.overflow_routed:
            out["overflow_routed"] = self.overflow_routed
        return out


class MetricsRegistry:
    """All metric families of one run, plus snapshot-time collectors.

    ``max_series_per_family`` is the registry-wide cardinality default
    (see :class:`MetricFamily`); per-family ``max_series`` overrides it.
    ``None`` (the default) keeps families unbounded, matching the
    historical behaviour."""

    def __init__(self, max_series_per_family: Optional[int] = None) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self.max_series_per_family = max_series_per_family

    # -- declaration -----------------------------------------------------------

    def _family(
        self,
        kind: str,
        name: str,
        description: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
        max_series: Optional[int] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(labels):
                raise ObservabilityError(
                    f"metric {name!r} already declared as {existing.kind} with "
                    f"labels {list(existing.label_names)}"
                )
            if max_series is not None:
                existing.max_series = max_series
            return existing
        if max_series is None:
            max_series = self.max_series_per_family
        family = MetricFamily(kind, name, description, labels, buckets, max_series)
        self._families[name] = family
        return family

    def counter(
        self,
        name: str,
        description: str = "",
        labels: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> MetricFamily:
        return self._family(
            "counter", name, description, labels, max_series=max_series
        )

    def gauge(
        self,
        name: str,
        description: str = "",
        labels: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> MetricFamily:
        return self._family(
            "gauge", name, description, labels, max_series=max_series
        )

    def histogram(
        self,
        name: str,
        description: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_series: Optional[int] = None,
    ) -> MetricFamily:
        return self._family(
            "histogram", name, description, labels, buckets, max_series
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    def total_series(self) -> int:
        """Distinct series across every family (the observer's own
        metric-memory footprint, surfaced as ``obs.metric_series``)."""
        return sum(f.series_count() for f in self._families.values())

    # -- collectors ------------------------------------------------------------

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at every :meth:`snapshot` to fold a
        component's ad-hoc stats into registry series."""
        self._collectors.append(fn)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Run collectors, then return all families as pure data,
        deterministically ordered (byte-identical JSON across identical
        runs)."""
        for collector in self._collectors:
            collector(self)
        return {
            name: self._families[name].snapshot()
            for name in sorted(self._families)
        }
