"""Prometheus text-format exposition of registry snapshots.

External tooling (Prometheus itself, promtool, Grafana agents) speaks
the text exposition format; :func:`render_prom` turns the pure-data
snapshot a :class:`~repro.obs.registry.MetricsRegistry` produces into
that format so bench output is scrapeable:

    python -m repro.obs.query export --metrics run.metrics.json --format prom

Counters and gauges map directly; histogram summaries map to the
``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` buckets
(the snapshot already stores Prometheus-style cumulative counts).
Metric names are sanitized to the Prometheus charset (dots become
underscores); label values are escaped per the exposition spec.
"""

from __future__ import annotations

import re
from typing import Dict, IO, List

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{prom_name(k)}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prom(snapshot: Dict[str, dict]) -> str:
    """The whole registry snapshot as Prometheus text exposition."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("kind", "gauge")
        pname = prom_name(name)
        if family.get("description"):
            lines.append(f"# HELP {pname} {family['description']}")
        ptype = {"counter": "counter", "gauge": "gauge",
                 "histogram": "histogram"}.get(kind, "untyped")
        lines.append(f"# TYPE {pname} {ptype}")
        for series in family.get("series", ()):
            labels = series.get("labels", {})
            value = series.get("value")
            if kind != "histogram":
                lines.append(f"{pname}{_labels(labels)} {_fmt(value)}")
                continue
            summary = value or {}
            buckets = summary.get("buckets", {})
            for bound, cum in buckets.items():
                le = "+Inf" if bound == "+Inf" else _fmt(float(bound))
                le_pair = 'le="%s"' % _escape(le)
                lines.append(f"{pname}_bucket{_labels(labels, le_pair)} {cum}")
            if "+Inf" not in buckets and "count" in summary:
                inf_pair = 'le="+Inf"'
                lines.append(
                    f"{pname}_bucket{_labels(labels, inf_pair)} "
                    f"{summary['count']}"
                )
            lines.append(f"{pname}_sum{_labels(labels)} "
                         f"{_fmt(summary.get('sum', 0))}")
            lines.append(f"{pname}_count{_labels(labels)} "
                         f"{summary.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prom(snapshot: Dict[str, dict], fp: IO[str]) -> None:
    fp.write(render_prom(snapshot))
