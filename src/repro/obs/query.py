"""Run-explanation CLI over saved runs: ``python -m repro.obs.query``.

Works offline from the artifacts a run writes -- a trace JSONL
(:meth:`repro.obs.Tracer.write_jsonl`), a lineage JSON
(:meth:`repro.obs.lineage.LineageIndex.write_json`), and optionally a
metrics snapshot (:meth:`repro.obs.Observability.snapshot`, as JSON).

Subcommands::

    lineage     build the lineage JSON from a trace JSONL
    explain     full emit -> hops -> delivery story of one window
    slowest     delivered windows by emit-to-delivery latency
    drops       every drop, with cause and site
    stragglers  per-hop records above a latency percentile threshold
    profile     where the wall time went (repro.profile/1 report)
    timeseries  virtual-clock curves (repro.timeseries/1 dump)
    alerts      health alerts, from an alerts doc or a flight bundle
    export      re-render a metrics snapshot (e.g. Prometheus text)
    diff        cross-run regression report (repro.diff/1) from two
                runs' artifacts (files or run directories)

Examples::

    python -m repro.obs.query lineage --trace run.trace.jsonl -o run.lineage.json
    python -m repro.obs.query explain --lineage run.lineage.json --window aggregate:3
    python -m repro.obs.query slowest --trace run.trace.jsonl --top 10
    python -m repro.obs.query stragglers --lineage run.lineage.json \\
        --metrics run.metrics.json --percentile 99
    python -m repro.obs.query profile --profile run.profile.json --top 10
    python -m repro.obs.query timeseries --timeseries run.timeseries.json \\
        --series link.drops --rate
    python -m repro.obs.query alerts --flight flight-0.json
    python -m repro.obs.query export --metrics run.metrics.json --format prom
    python -m repro.obs.query diff baseline/ candidate/ --top 5
    python -m repro.obs.query diff a.metrics.json b.metrics.json --json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.lineage import LineageError, LineageIndex
from repro.obs.prom import render_prom
from repro.obs.timeseries import rates as rate_curve


def load_json(path: str) -> Dict:
    with open(path) as fp:
        return json.load(fp)


def load_trace_events(path: str):
    """Iterate a trace JSONL (or sharded trace) one event at a time.

    Streams: the lineage fold downstream keeps O(windows) state, so a
    multi-gigabyte sharded trace never has to fit in memory. ``path``
    may be a single JSONL, a shard directory, a shard manifest, or a
    sharded sink's base path."""
    from repro.obs.sinks import iter_trace_events

    return iter_trace_events(path)


def load_index(args: argparse.Namespace) -> LineageIndex:
    if args.lineage:
        with open(args.lineage) as fp:
            return LineageIndex.from_json(json.load(fp))
    if args.trace:
        return LineageIndex.from_events(load_trace_events(args.trace))
    raise LineageError("pass --trace <run.jsonl> or --lineage <run.json>")


def parse_window(spec: str) -> Tuple[Union[int, str], int]:
    """``KERNEL:SEQ`` -> (kernel id or name, seq)."""
    kernel, sep, seq = spec.rpartition(":")
    if not sep or not seq.lstrip("-").isdigit():
        raise LineageError(
            f"bad --window {spec!r}; expected KERNEL:SEQ (e.g. aggregate:3 "
            "or 1:3)"
        )
    return (int(kernel) if kernel.isdigit() else kernel), int(seq)


# -- subcommands ---------------------------------------------------------------


def cmd_lineage(args: argparse.Namespace) -> int:
    index = LineageIndex.from_events(load_trace_events(args.trace))
    if args.output == "-":
        index.write_json(sys.stdout)
    else:
        with open(args.output, "w") as fp:
            index.write_json(fp)
        print(f"wrote {args.output} ({len(index.windows)} windows)")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    index = load_index(args)
    kernel, seq = parse_window(args.window)
    print(index.explain(kernel, seq))
    return 0


def cmd_slowest(args: argparse.Namespace) -> int:
    index = load_index(args)
    rows = index.slowest(args.top)
    if not rows:
        print("no delivered windows in this run")
        return 0
    print(f"{'window':<24} {'latency':>12} {'branches':>9} {'attempts':>9}")
    for window in rows:
        name = f"{window.kernel or window.kernel_id}:{window.seq}"
        attempts = sum(len(b.attempts) for b in window.branches.values())
        print(
            f"{name:<24} {window.latency() * 1e6:>10.3f}us "
            f"{len(window.branches):>9} {attempts:>9}"
        )
    return 0


def cmd_drops(args: argparse.Namespace) -> int:
    index = load_index(args)
    records = index.drops()
    if not records:
        print("no drops in this run")
        return 0
    if args.top:
        records = records[: args.top]
    for window, branch, attempt, record in records:
        name = f"{window.kernel or window.kernel_id}:{window.seq}"
        origin = branch.label or index.node_names.get(branch.from_node) \
            or f"node {branch.from_node}"
        cause = record.get("outcome", record.get("cause"))
        print(
            f"{name:<24} from={origin:<8} attempt={attempt.number} "
            f"t={float(record['ts']) * 1e6:.3f}us at {record['site']}: {cause}"
        )
    return 0


def _pooled_threshold(metrics_path: str, percentile: float) -> Optional[float]:
    """Percentile threshold from the registry's ``int.hop_latency_ns``
    histograms: pool the cumulative bucket counts across every hop
    series and take the smallest bucket bound covering ``percentile``
    of all observations (an upper-bound estimate, like Prometheus's
    ``histogram_quantile``)."""
    with open(metrics_path) as fp:
        snap = json.load(fp)
    family = snap.get("int.hop_latency_ns")
    if not family:
        return None
    pooled: Dict[str, int] = {}
    total = 0
    for series in family["series"]:
        value = series["value"]
        if not value.get("count"):
            continue
        total += value["count"]
        for bound, cum in value["buckets"].items():
            pooled[bound] = pooled.get(bound, 0) + cum
    if not total:
        return None
    need = total * percentile / 100.0
    finite = sorted(
        (float(b), c) for b, c in pooled.items() if b != "+Inf"
    )
    for bound, cum in finite:
        if cum >= need:
            return bound
    return float("inf")


def cmd_stragglers(args: argparse.Namespace) -> int:
    index = load_index(args)
    entries = index.hop_latencies()
    if not entries:
        print("no delivered INT stacks in this run")
        return 0
    threshold = None
    source = ""
    if args.metrics:
        threshold = _pooled_threshold(args.metrics, args.percentile)
        source = "registry histogram buckets"
    if threshold is None:
        # No metrics snapshot: exact percentile over the lineage's own
        # per-hop latencies.
        ordered = sorted(e["latency_ns"] for e in entries)
        rank = min(
            len(ordered) - 1, int(len(ordered) * args.percentile / 100.0)
        )
        threshold = ordered[rank]
        source = "lineage hop records"
    print(
        f"p{args.percentile:g} threshold: {threshold:g}ns "
        f"(from {source}; {len(entries)} hop records)"
    )
    slow = [e for e in entries if e["latency_ns"] >= threshold]
    if not slow:
        print("no hop records at or above the threshold")
        return 0
    # Stable total order: latency desc, then every identifying field, so
    # equal-latency records (common with quantized hop latencies) list
    # identically across runs and platforms.
    slow.sort(key=lambda e: (-e["latency_ns"], str(e["kernel_id"]),
                             e["seq"], e["attempt"], e["hop"],
                             str(e["node"] or "")))
    for e in slow[: args.top]:
        name = f"{e['kernel'] or e['kernel_id']}:{e['seq']}"
        hop = f"{e['node']} (#{e['hop']})" if e["node"] else f"#{e['hop']}"
        print(
            f"  {name:<20} attempt={e['attempt']} hop {hop:<14} "
            f"latency={e['latency_ns']}ns qdepth={e['qdepth']}B"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    report = load_json(args.profile)
    if report.get("schema") != "repro.profile/1":
        raise LineageError(
            f"{args.profile} is not a repro.profile/1 report "
            f"(schema={report.get('schema')!r})"
        )
    if args.format == "collapsed":
        # Regenerate collapsed-stack lines from the saved report, so a
        # flamegraph can still be rendered from the artifact alone.
        for entry in sorted(report["entries"], key=lambda e: e["label"]):
            us = max(1, int(round(entry["wall_s"] * 1e6)))
            print(f"sim;{entry['label']} {us}")
        return 0
    total = report["total_wall_s"]
    print(
        f"total wall: {total * 1e3:.3f}ms over {report['events']} events "
        f"({report['events_per_sec']:,.0f} events/s, "
        f"{report['packets_per_sec']:,.0f} packets/s)"
    )
    print(
        f"attributed to named components: "
        f"{report['attributed_fraction'] * 100:.1f}%"
    )
    print(f"{'label':<32} {'count':>8} {'wall':>12} {'pct':>7} {'avg':>10}")
    for entry in report["entries"][: args.top]:
        print(
            f"{entry['label']:<32} {entry['count']:>8} "
            f"{entry['wall_s'] * 1e3:>10.3f}ms {entry['wall_pct']:>6.1f}% "
            f"{entry['avg_us']:>8.2f}us"
        )
    return 0


def parse_label_filter(text: Optional[str]) -> Dict[str, str]:
    """``"link=w0<->s1,cause=down"`` -> dict."""
    labels: Dict[str, str] = {}
    for part in (text or "").split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise LineageError(f"bad --labels entry {part!r}; expected k=v")
        k, v = part.split("=", 1)
        labels[k.strip()] = v.strip()
    return labels


def _matching_series(doc: Dict, name: str, want: Dict[str, str]) -> List[Dict]:
    return [
        s for s in doc["series"]
        if s["name"] == name
        and all(s["labels"].get(k) == v for k, v in want.items())
    ]


def cmd_timeseries(args: argparse.Namespace) -> int:
    doc = load_json(args.timeseries)
    if doc.get("schema") != "repro.timeseries/1":
        raise LineageError(
            f"{args.timeseries} is not a repro.timeseries/1 dump "
            f"(schema={doc.get('schema')!r})"
        )
    interval = doc["interval"]
    if not args.series:
        print(
            f"{doc['buckets']} buckets of {interval * 1e6:g}us "
            f"(end_time={doc['end_time']}); series:"
        )
        for series in doc["series"]:
            labels = ",".join(f"{k}={v}" for k, v in series["labels"].items())
            sel = series["name"] + ("{" + labels + "}" if labels else "")
            print(f"  {sel:<48} {series['kind']:<8} {len(series['points'])} points")
        return 0
    want = parse_label_filter(args.labels)
    matched = _matching_series(doc, args.series, want)
    if not matched:
        print(f"no series matching {args.series!r} labels {want}")
        return 1
    # Pointwise sum across matching series -- same shape alert rules see.
    acc: Dict[int, float] = {}
    for series in matched:
        for idx, value in series["points"]:
            acc[idx] = acc.get(idx, 0.0) + value
    points = sorted(acc.items())
    if args.rate:
        points = rate_curve(points, interval)
        unit = "/s"
    else:
        unit = ""
    print(f"{args.series} over {len(matched)} series:")
    for idx, value in points:
        print(f"  t={idx * interval * 1e6:>10.3f}us  {value:g}{unit}")
    return 0


def cmd_alerts(args: argparse.Namespace) -> int:
    if args.flight:
        bundle = load_json(args.flight)
        from repro.obs.flight import validate_bundle

        problems = validate_bundle(bundle)
        if problems:
            for problem in problems:
                print(f"invalid flight bundle: {problem}", file=sys.stderr)
            return 2
        doc = bundle.get("alerts")
        print(
            f"flight bundle: reason={bundle['reason']!r} "
            f"t={bundle['virtual_time']} "
            f"({len(bundle['events'])}/{bundle['events_seen']} events retained)"
        )
        if doc is None:
            print("bundle carries no alert state (run had no AlertEngine)")
            return 0
    elif args.alerts:
        doc = load_json(args.alerts)
    else:
        raise LineageError("pass --alerts <run.alerts.json> or --flight <bundle.json>")
    if doc.get("schema") != "repro.alerts/1":
        raise LineageError(
            f"not a repro.alerts/1 document (schema={doc.get('schema')!r})"
        )
    print(f"{len(doc['rules'])} rules:")
    for rule in doc["rules"]:
        print(f"  {rule}")
    alerts = doc["alerts"]
    if not alerts:
        print("no alerts fired")
        return 0
    print(f"{len(alerts)} alerts:")
    for alert in alerts:
        resolved = (
            f"resolved at {alert['resolved_at'] * 1e6:.3f}us"
            if alert["resolved_at"] is not None else "still firing"
        )
        print(
            f"  [{alert['severity']}] {alert['name']}: value {alert['value']:g} "
            f"vs threshold {alert['threshold']:g} -- fired at "
            f"{alert['fired_at'] * 1e6:.3f}us, {resolved}"
        )
        if args.window:
            for t, value in alert["window"]:
                print(f"      t={t * 1e6:>10.3f}us  {value:g}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import diff_runs, render_report, write_report

    report = diff_runs(args.run_a, args.run_b, top=args.top)
    if args.output and args.output != "-":
        with open(args.output, "w") as fp:
            write_report(report, fp)
        print(f"wrote {args.output}")
    if args.json:
        if not args.output or args.output == "-":
            write_report(report, sys.stdout)
    else:
        print(render_report(report, limit=args.limit))
    if args.fail_on_delta and not report["zero_delta"]:
        return 1
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    snapshot = load_json(args.metrics)
    if args.format == "prom":
        text = render_prom(snapshot)
    else:  # json passthrough (normalized key order)
        text = json.dumps(snapshot, sort_keys=True, indent=1) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as fp:
            fp.write(text)
        print(f"wrote {args.output}")
    return 0


# -- entry point ---------------------------------------------------------------


def _add_inputs(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--trace", help="trace JSONL (Tracer.write_jsonl)")
    sub.add_argument("--lineage", help="lineage JSON (LineageIndex.write_json)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.query",
        description="explain saved runs: window lineage, drops, stragglers",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    lineage = subs.add_parser(
        "lineage", help="build lineage JSON from a trace JSONL"
    )
    lineage.add_argument("--trace", required=True)
    lineage.add_argument("-o", "--output", default="-",
                         help="output path (default: stdout)")
    lineage.set_defaults(fn=cmd_lineage)

    explain = subs.add_parser(
        "explain", help="full emit -> hops -> delivery story of one window"
    )
    _add_inputs(explain)
    explain.add_argument("--window", required=True, metavar="KERNEL:SEQ",
                         help="e.g. aggregate:3 or 1:3")
    explain.set_defaults(fn=cmd_explain)

    slowest = subs.add_parser(
        "slowest", help="delivered windows by emit-to-delivery latency"
    )
    _add_inputs(slowest)
    slowest.add_argument("--top", type=int, default=10)
    slowest.set_defaults(fn=cmd_slowest)

    drops = subs.add_parser("drops", help="every drop, with cause and site")
    _add_inputs(drops)
    drops.add_argument("--top", type=int, default=0,
                       help="show only the first N drops (default: all)")
    drops.set_defaults(fn=cmd_drops)

    stragglers = subs.add_parser(
        "stragglers", help="hop records above a latency percentile"
    )
    _add_inputs(stragglers)
    stragglers.add_argument("--metrics",
                            help="metrics snapshot JSON (threshold source)")
    stragglers.add_argument("--percentile", type=float, default=99.0)
    stragglers.add_argument("--top", type=int, default=20)
    stragglers.set_defaults(fn=cmd_stragglers)

    profile = subs.add_parser(
        "profile", help="where the wall time went (repro.profile/1)"
    )
    profile.add_argument("--profile", required=True,
                         help="profile report JSON (Profiler.write_json)")
    profile.add_argument("--top", type=int, default=20)
    profile.add_argument("--format", choices=("table", "collapsed"),
                         default="table")
    profile.set_defaults(fn=cmd_profile)

    timeseries = subs.add_parser(
        "timeseries", help="virtual-clock curves (repro.timeseries/1)"
    )
    timeseries.add_argument("--timeseries", required=True,
                            help="dump JSON (TimeSeriesSampler.write_json)")
    timeseries.add_argument("--series",
                            help="series name (omit to list all series)")
    timeseries.add_argument("--labels",
                            help="label filter, e.g. cause=down,link=w0<->s1")
    timeseries.add_argument("--rate", action="store_true",
                            help="show the per-bucket rate curve")
    timeseries.set_defaults(fn=cmd_timeseries)

    alerts = subs.add_parser(
        "alerts", help="health alerts, from an alerts doc or flight bundle"
    )
    alerts.add_argument("--alerts",
                        help="alerts JSON (AlertEngine.write_json)")
    alerts.add_argument("--flight",
                        help="flight bundle JSON (reconstructs alert state)")
    alerts.add_argument("--window", action="store_true",
                        help="also print each alert's evidence window")
    alerts.set_defaults(fn=cmd_alerts)

    diff = subs.add_parser(
        "diff", help="cross-run regression report (repro.diff/1)"
    )
    diff.add_argument("run_a", metavar="A",
                      help="baseline: artifact JSON or run directory")
    diff.add_argument("run_b", metavar="B",
                      help="candidate: artifact JSON or run directory")
    diff.add_argument("--top", type=int, default=10,
                      help="top regressed handlers to rank (default 10)")
    diff.add_argument("--limit", type=int, default=20,
                      help="changed keys to print per section (default 20)")
    diff.add_argument("--json", action="store_true",
                      help="emit the repro.diff/1 JSON instead of text")
    diff.add_argument("-o", "--output",
                      help="also write the JSON report to this path")
    diff.add_argument("--fail-on-delta", action="store_true",
                      help="exit 1 unless the report is zero-delta")
    diff.set_defaults(fn=cmd_diff)

    export = subs.add_parser(
        "export", help="re-render a metrics snapshot (Prometheus text)"
    )
    export.add_argument("--metrics", required=True,
                        help="metrics snapshot JSON (Observability.snapshot)")
    export.add_argument("--format", choices=("prom", "json"), default="prom")
    export.add_argument("-o", "--output", default="-",
                        help="output path (default: stdout)")
    export.set_defaults(fn=cmd_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (LineageError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head/less that quit early -- not an error,
        # but Python would print a traceback at interpreter shutdown
        # unless stdout is detached first.
        sys.stderr.close()
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
