"""Run-explanation CLI over saved runs: ``python -m repro.obs.query``.

Works offline from the artifacts a run writes -- a trace JSONL
(:meth:`repro.obs.Tracer.write_jsonl`), a lineage JSON
(:meth:`repro.obs.lineage.LineageIndex.write_json`), and optionally a
metrics snapshot (:meth:`repro.obs.Observability.snapshot`, as JSON).

Subcommands::

    lineage     build the lineage JSON from a trace JSONL
    explain     full emit -> hops -> delivery story of one window
    slowest     delivered windows by emit-to-delivery latency
    drops       every drop, with cause and site
    stragglers  per-hop records above a latency percentile threshold

Examples::

    python -m repro.obs.query lineage --trace run.trace.jsonl -o run.lineage.json
    python -m repro.obs.query explain --lineage run.lineage.json --window aggregate:3
    python -m repro.obs.query slowest --trace run.trace.jsonl --top 10
    python -m repro.obs.query stragglers --lineage run.lineage.json \\
        --metrics run.metrics.json --percentile 99
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.lineage import LineageError, LineageIndex


def load_trace_events(path: str) -> List[Dict]:
    """Read a trace JSONL (one event object per line)."""
    events = []
    with open(path) as fp:
        for line in fp:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def load_index(args: argparse.Namespace) -> LineageIndex:
    if args.lineage:
        with open(args.lineage) as fp:
            return LineageIndex.from_json(json.load(fp))
    if args.trace:
        return LineageIndex.from_events(load_trace_events(args.trace))
    raise LineageError("pass --trace <run.jsonl> or --lineage <run.json>")


def parse_window(spec: str) -> Tuple[Union[int, str], int]:
    """``KERNEL:SEQ`` -> (kernel id or name, seq)."""
    kernel, sep, seq = spec.rpartition(":")
    if not sep or not seq.lstrip("-").isdigit():
        raise LineageError(
            f"bad --window {spec!r}; expected KERNEL:SEQ (e.g. aggregate:3 "
            "or 1:3)"
        )
    return (int(kernel) if kernel.isdigit() else kernel), int(seq)


# -- subcommands ---------------------------------------------------------------


def cmd_lineage(args: argparse.Namespace) -> int:
    index = LineageIndex.from_events(load_trace_events(args.trace))
    if args.output == "-":
        index.write_json(sys.stdout)
    else:
        with open(args.output, "w") as fp:
            index.write_json(fp)
        print(f"wrote {args.output} ({len(index.windows)} windows)")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    index = load_index(args)
    kernel, seq = parse_window(args.window)
    print(index.explain(kernel, seq))
    return 0


def cmd_slowest(args: argparse.Namespace) -> int:
    index = load_index(args)
    rows = index.slowest(args.top)
    if not rows:
        print("no delivered windows in this run")
        return 0
    print(f"{'window':<24} {'latency':>12} {'branches':>9} {'attempts':>9}")
    for window in rows:
        name = f"{window.kernel or window.kernel_id}:{window.seq}"
        attempts = sum(len(b.attempts) for b in window.branches.values())
        print(
            f"{name:<24} {window.latency() * 1e6:>10.3f}us "
            f"{len(window.branches):>9} {attempts:>9}"
        )
    return 0


def cmd_drops(args: argparse.Namespace) -> int:
    index = load_index(args)
    records = index.drops()
    if not records:
        print("no drops in this run")
        return 0
    for window, branch, attempt, record in records:
        name = f"{window.kernel or window.kernel_id}:{window.seq}"
        origin = branch.label or index.node_names.get(branch.from_node) \
            or f"node {branch.from_node}"
        cause = record.get("outcome", record.get("cause"))
        print(
            f"{name:<24} from={origin:<8} attempt={attempt.number} "
            f"t={float(record['ts']) * 1e6:.3f}us at {record['site']}: {cause}"
        )
    return 0


def _pooled_threshold(metrics_path: str, percentile: float) -> Optional[float]:
    """Percentile threshold from the registry's ``int.hop_latency_ns``
    histograms: pool the cumulative bucket counts across every hop
    series and take the smallest bucket bound covering ``percentile``
    of all observations (an upper-bound estimate, like Prometheus's
    ``histogram_quantile``)."""
    with open(metrics_path) as fp:
        snap = json.load(fp)
    family = snap.get("int.hop_latency_ns")
    if not family:
        return None
    pooled: Dict[str, int] = {}
    total = 0
    for series in family["series"]:
        value = series["value"]
        if not value.get("count"):
            continue
        total += value["count"]
        for bound, cum in value["buckets"].items():
            pooled[bound] = pooled.get(bound, 0) + cum
    if not total:
        return None
    need = total * percentile / 100.0
    finite = sorted(
        (float(b), c) for b, c in pooled.items() if b != "+Inf"
    )
    for bound, cum in finite:
        if cum >= need:
            return bound
    return float("inf")


def cmd_stragglers(args: argparse.Namespace) -> int:
    index = load_index(args)
    entries = index.hop_latencies()
    if not entries:
        print("no delivered INT stacks in this run")
        return 0
    threshold = None
    source = ""
    if args.metrics:
        threshold = _pooled_threshold(args.metrics, args.percentile)
        source = "registry histogram buckets"
    if threshold is None:
        # No metrics snapshot: exact percentile over the lineage's own
        # per-hop latencies.
        ordered = sorted(e["latency_ns"] for e in entries)
        rank = min(
            len(ordered) - 1, int(len(ordered) * args.percentile / 100.0)
        )
        threshold = ordered[rank]
        source = "lineage hop records"
    print(
        f"p{args.percentile:g} threshold: {threshold:g}ns "
        f"(from {source}; {len(entries)} hop records)"
    )
    slow = [e for e in entries if e["latency_ns"] >= threshold]
    if not slow:
        print("no hop records at or above the threshold")
        return 0
    slow.sort(key=lambda e: (-e["latency_ns"], str(e["kernel_id"]),
                             e["seq"], e["attempt"]))
    for e in slow[: args.top]:
        name = f"{e['kernel'] or e['kernel_id']}:{e['seq']}"
        hop = f"{e['node']} (#{e['hop']})" if e["node"] else f"#{e['hop']}"
        print(
            f"  {name:<20} attempt={e['attempt']} hop {hop:<14} "
            f"latency={e['latency_ns']}ns qdepth={e['qdepth']}B"
        )
    return 0


# -- entry point ---------------------------------------------------------------


def _add_inputs(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--trace", help="trace JSONL (Tracer.write_jsonl)")
    sub.add_argument("--lineage", help="lineage JSON (LineageIndex.write_json)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.query",
        description="explain saved runs: window lineage, drops, stragglers",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    lineage = subs.add_parser(
        "lineage", help="build lineage JSON from a trace JSONL"
    )
    lineage.add_argument("--trace", required=True)
    lineage.add_argument("-o", "--output", default="-",
                         help="output path (default: stdout)")
    lineage.set_defaults(fn=cmd_lineage)

    explain = subs.add_parser(
        "explain", help="full emit -> hops -> delivery story of one window"
    )
    _add_inputs(explain)
    explain.add_argument("--window", required=True, metavar="KERNEL:SEQ",
                         help="e.g. aggregate:3 or 1:3")
    explain.set_defaults(fn=cmd_explain)

    slowest = subs.add_parser(
        "slowest", help="delivered windows by emit-to-delivery latency"
    )
    _add_inputs(slowest)
    slowest.add_argument("--top", type=int, default=10)
    slowest.set_defaults(fn=cmd_slowest)

    drops = subs.add_parser("drops", help="every drop, with cause and site")
    _add_inputs(drops)
    drops.set_defaults(fn=cmd_drops)

    stragglers = subs.add_parser(
        "stragglers", help="hop records above a latency percentile"
    )
    _add_inputs(stragglers)
    stragglers.add_argument("--metrics",
                            help="metrics snapshot JSON (threshold source)")
    stragglers.add_argument("--percentile", type=float, default=99.0)
    stragglers.add_argument("--top", type=int, default=20)
    stragglers.set_defaults(fn=cmd_stragglers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (LineageError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head/less that quit early -- not an error,
        # but Python would print a traceback at interpreter shutdown
        # unless stdout is detached first.
        sys.stderr.close()
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
