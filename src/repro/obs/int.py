"""In-band network telemetry (INT) over NCP frames.

Production INC systems must self-monitor from inside the network: the
fabric that computes on packets is also the only witness to what
happened to them. This module implements the classic INT pattern --
**each switch appends a fixed-width per-hop record to a telemetry stack
carried by the packet itself**, and the receiving host strips the stack
and publishes it -- scoped to this repo's NCP transport.

Wire format
-----------
An INT-enabled frame sets :data:`~repro.ncp.wire.FLAG_INT` in the NCP
header and carries a trailer *after* the window payload::

    Ethernet | IPv4 | UDP | NCP | ext+data | hop records ... | INT tail

    tail (5 B):  hop_count:8 | attempt:8 | flags:8 | magic:16
    hop  (20 B): hop:16 | ingress_ns:48 | egress_ns:48 | qdepth:32
                 | tables:8 | flags:8

The tail sits at the *end* of the frame so switches append records
without re-parsing the (kernel-specific) payload; the IPv4/UDP length
fields keep describing the base datagram -- the stack rides outside
them, like a link-layer trailer. Timestamps are the simulator's virtual
clock in integer nanoseconds, so identical runs produce byte-identical
stacks. ``qdepth`` is the egress link backlog in bytes at enqueue;
``tables`` is how many pipeline tables matched for this packet.

Truncation semantics (:class:`IntConfig`): a switch that would push the
stack past ``max_hops`` records or past ``byte_budget`` stack bytes
appends nothing and sets the ``TRUNCATED`` tail flag instead -- the
stack stays parseable and the gap is explicit, exactly like hop-limit
exhaustion in INT-MD.

The disabled path costs nothing: hosts only attach a tail when the
run's :class:`~repro.obs.context.Observability` carries an
:class:`IntConfig`, and switches/links only look at frames whose NCP
flags byte has FLAG_INT set (one fixed-offset byte test).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.ncp.wire import FLAG_INT, NCP_MAGIC
from repro.util.bits import pack_fields, unpack_fields

#: trailer magic ("telemetry" tail marker, distinct from NCP_MAGIC)
INT_MAGIC = 0x17E1

INT_TAIL_FIELDS: List[Tuple[str, int]] = [
    ("hop_count", 8),
    ("attempt", 8),
    ("flags", 8),
    ("magic", 16),
]
INT_HOP_FIELDS: List[Tuple[str, int]] = [
    ("hop", 16),
    ("ingress_ns", 48),
    ("egress_ns", 48),
    ("qdepth", 32),
    ("tables", 8),
    ("flags", 8),
]

TAIL_BYTES = sum(b for _, b in INT_TAIL_FIELDS) // 8  # 5
HOP_BYTES = sum(b for _, b in INT_HOP_FIELDS) // 8  # 20

#: tail flag: a switch hit the hop cap or byte budget and appended nothing
TAIL_TRUNCATED = 0x01
#: hop-record flag: the packet was dropped at this hop
HOP_DROPPED = 0x01

#: fixed offsets into an Ethernet/IPv4/UDP/NCP frame
_NCP_OFF = (14 + 20 + 8)  # eth + ipv4 + udp
_FLAGS_OFF = _NCP_OFF + 3  # magic:16 version:8 | flags
_MIN_NCP_LEN = _NCP_OFF + 12  # + fixed NCP header

_NS = 1e9


class IntError(ReproError):
    """Malformed INT trailer or misuse of the stamping API."""


class IntConfig:
    """Per-run INT policy: cap the stack by hop count and/or bytes.

    ``max_hops`` bounds the number of per-hop records; ``byte_budget``
    (optional) bounds the record bytes -- whichever bites first wins.
    """

    __slots__ = ("max_hops", "byte_budget")

    def __init__(self, max_hops: int = 8, byte_budget: Optional[int] = None):
        if max_hops <= 0 or max_hops > 255:
            raise IntError(f"max_hops must be in [1, 255], got {max_hops}")
        if byte_budget is not None and byte_budget < 0:
            raise IntError(f"byte_budget must be non-negative, got {byte_budget}")
        self.max_hops = max_hops
        self.byte_budget = byte_budget

    def allows(self, hop_count: int) -> bool:
        """Room for one more record on a stack of ``hop_count``?"""
        if hop_count >= self.max_hops:
            return False
        if self.byte_budget is not None and (hop_count + 1) * HOP_BYTES > self.byte_budget:
            return False
        return True

    def __repr__(self) -> str:
        return f"IntConfig(max_hops={self.max_hops}, byte_budget={self.byte_budget})"


class IntStack:
    """A decoded INT trailer: the per-hop records plus tail metadata."""

    __slots__ = ("hops", "attempt", "truncated")

    def __init__(self, hops: List[Dict[str, int]], attempt: int, truncated: bool):
        self.hops = hops
        self.attempt = attempt
        self.truncated = truncated

    def __len__(self) -> int:
        return len(self.hops)

    def hop_args(self) -> List[Dict[str, int]]:
        """Hops as JSON-ready dicts (the trace-event representation)."""
        return [dict(h) for h in self.hops]

    def __repr__(self) -> str:
        t = " truncated" if self.truncated else ""
        return f"IntStack({len(self.hops)} hops, attempt={self.attempt}{t})"


# -- frame predicates ---------------------------------------------------------


def carries_int(data: bytes) -> bool:
    """Does this frame carry an INT trailer? One length check plus three
    fixed-offset byte tests -- the per-frame cost on the disabled path."""
    return (
        len(data) >= _MIN_NCP_LEN + TAIL_BYTES
        and data[_NCP_OFF] == (NCP_MAGIC >> 8)
        and data[_NCP_OFF + 1] == (NCP_MAGIC & 0xFF)
        and bool(data[_FLAGS_OFF] & FLAG_INT)
    )


def _split(frame: bytes) -> Tuple[bytes, bytes, Dict[str, int]]:
    """(base frame, record bytes, tail fields) of an INT frame."""
    tail, _ = unpack_fields(INT_TAIL_FIELDS, frame[-TAIL_BYTES:])
    if tail["magic"] != INT_MAGIC:
        raise IntError(f"bad INT tail magic {tail['magic']:#x}")
    rec_len = tail["hop_count"] * HOP_BYTES
    cut = len(frame) - TAIL_BYTES - rec_len
    if cut < _MIN_NCP_LEN:
        raise IntError(
            f"INT tail claims {tail['hop_count']} records but the frame "
            f"has only {len(frame)} bytes"
        )
    return frame[:cut], frame[cut : len(frame) - TAIL_BYTES], tail


# -- host side ----------------------------------------------------------------


def attach_tail(frame: bytes, attempt: int = 0) -> bytes:
    """Arm a freshly encoded NCP frame for INT: set FLAG_INT and append
    an empty trailer. ``attempt`` distinguishes retransmissions (0 is
    the original transmission)."""
    if carries_int(frame):
        raise IntError("frame already carries an INT trailer")
    armed = bytearray(frame)
    armed[_FLAGS_OFF] |= FLAG_INT
    tail = pack_fields(
        INT_TAIL_FIELDS,
        {"hop_count": 0, "attempt": attempt & 0xFF, "flags": 0, "magic": INT_MAGIC},
    )
    return bytes(armed) + tail


def peek_stack(frame: bytes) -> Optional[IntStack]:
    """Decode the INT stack without modifying the frame (None when the
    frame carries no trailer)."""
    if not carries_int(frame):
        return None
    _, recs, tail = _split(frame)
    hops = []
    for i in range(tail["hop_count"]):
        rec, _ = unpack_fields(INT_HOP_FIELDS, recs[i * HOP_BYTES : (i + 1) * HOP_BYTES])
        hops.append(rec)
    return IntStack(hops, tail["attempt"], bool(tail["flags"] & TAIL_TRUNCATED))


def strip_stack(frame: bytes) -> Tuple[bytes, Optional[IntStack]]:
    """Remove the trailer at delivery: returns the bare NCP frame (with
    FLAG_INT cleared) and the decoded stack. A frame without a trailer
    passes through unchanged with a None stack."""
    stack = peek_stack(frame)
    if stack is None:
        return frame, None
    base, _, _ = _split(frame)
    bare = bytearray(base)
    bare[_FLAGS_OFF] &= ~FLAG_INT & 0xFF
    return bytes(bare), stack


# -- switch side --------------------------------------------------------------


def stamp_hop(
    frame: bytes,
    cfg: IntConfig,
    hop_id: int,
    ingress_ts: float,
    egress_ts: float,
    qdepth_bytes: int,
    tables_matched: int,
    dropped: bool = False,
) -> Tuple[bytes, bool]:
    """Append one per-hop record (switch data-plane hook).

    Timestamps are virtual-clock seconds, stored as integer ns. Returns
    ``(frame, stamped)``; when the :class:`IntConfig` caps bite, the
    record is not appended and the tail's TRUNCATED flag is set instead.
    """
    base, recs, tail = _split(frame)
    if not cfg.allows(tail["hop_count"]):
        tail = dict(tail, flags=tail["flags"] | TAIL_TRUNCATED)
        return base + recs + pack_fields(INT_TAIL_FIELDS, tail), False
    record = pack_fields(
        INT_HOP_FIELDS,
        {
            "hop": hop_id,
            "ingress_ns": int(round(ingress_ts * _NS)),
            "egress_ns": int(round(egress_ts * _NS)),
            "qdepth": int(qdepth_bytes),
            "tables": min(tables_matched, 255),
            "flags": HOP_DROPPED if dropped else 0,
        },
    )
    tail = dict(tail, hop_count=tail["hop_count"] + 1)
    return base + recs + record + pack_fields(INT_TAIL_FIELDS, tail), True


# -- trace/metrics emission ---------------------------------------------------


def stack_event_args(
    stack: IntStack,
    kernel: int,
    seq: int,
    from_node: int,
    outcome: str,
    frag: Optional[int] = None,
    node_names: Optional[Dict[int, str]] = None,
) -> Dict[str, object]:
    """The ``int:stack`` trace-event payload: window identity, outcome
    (``delivered`` or ``drop:<cause>``), and the per-hop records.
    ``node_names`` (hop id -> label) annotates hops for human readers;
    unresolved hops keep just their numeric id."""
    hops: List[Dict[str, object]] = []
    for rec in stack.hops:
        entry: Dict[str, object] = dict(rec)
        if node_names is not None and rec["hop"] in node_names:
            entry["node"] = node_names[rec["hop"]]
        hops.append(entry)
    args: Dict[str, object] = {
        "kernel": kernel,
        "seq": seq,
        "from": from_node,
        "attempt": stack.attempt,
        "outcome": outcome,
        "hops": hops,
    }
    if stack.truncated:
        args["truncated"] = 1
    if frag is not None:
        args["frag"] = frag
    return args


#: int.hop_latency_ns histogram buckets (nanosecond scale)
HOP_LATENCY_BUCKETS = (
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 1e7,
)


def record_stack_metrics(registry, host: str, stack: IntStack, deliver_ts: float) -> None:
    """Fold one delivered stack into the registry: stack/record counts,
    truncation count, and the per-hop latency histogram that the
    ``stragglers`` query thresholds against.

    Per-hop latency of hop *i* is ingress-to-ingress (to the next hop,
    or to delivery for the last hop): switch residence plus the egress
    link's queueing and serialization, which is where congestion shows.
    """
    registry.counter(
        "int.stacks", "INT stacks stripped at hosts", ("host",)
    ).labels(host=host).inc()
    registry.counter(
        "int.records", "INT per-hop records stripped at hosts", ("host",)
    ).labels(host=host).inc(len(stack.hops))
    if stack.truncated:
        registry.counter(
            "int.truncated", "INT stacks truncated in flight", ("host",)
        ).labels(host=host).inc()
    if not stack.hops:
        return
    latency = registry.histogram(
        "int.hop_latency_ns",
        "per-hop latency (ingress-to-next-ingress), nanoseconds",
        ("hop",),
        buckets=HOP_LATENCY_BUCKETS,
    )
    deliver_ns = int(round(deliver_ts * _NS))
    for rec, nxt in zip(stack.hops, stack.hops[1:]):
        latency.labels(hop=rec["hop"]).observe(nxt["ingress_ns"] - rec["ingress_ns"])
    last = stack.hops[-1]
    latency.labels(hop=last["hop"]).observe(deliver_ns - last["ingress_ns"])
