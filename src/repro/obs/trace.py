"""Structured tracing: spans and packet-scoped events.

The tracer records what happened to every frame as it crosses the stack
-- host emit, link queue/serialize, switch parser, each pipeline stage's
matched table and action, delivery -- against the **simulator's virtual
clock**, so two identical runs produce byte-identical traces. Wall-clock
time never enters a simulation trace; the compiler's
:class:`~repro.obs.compiler.CompileTrace` takes a caller-supplied clock
for the same determinism on the build side.

Events live on *tracks* (one per host, link direction, or switch) and
carry free-form ``args``; NCP-decodable frames are annotated with
``kernel``/``seq``/``from`` so one window can be followed hop-by-hop
with a text grep or in a trace viewer.

Three exporters:

* :meth:`Tracer.write_jsonl` -- one JSON object per line, grep-friendly;
* :meth:`Tracer.timeline` -- a human-readable time-ordered listing;
* :meth:`Tracer.write_chrome` -- Chrome trace-event format (the
  ``chrome://tracing`` / Perfetto JSON schema): complete events (``X``)
  for spans, instant events (``i``) for points, with thread-name
  metadata so tracks show up labelled.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Union

#: simulated seconds -> trace microseconds (the chrome schema's unit)
_US = 1e6


class TraceEvent:
    __slots__ = ("ts", "dur", "name", "cat", "track", "args")

    def __init__(
        self,
        ts: float,
        dur: Optional[float],
        name: str,
        cat: str,
        track: str,
        args: Optional[Dict] = None,
    ):
        self.ts = ts
        self.dur = dur  # None -> instant event
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args or {}

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "ts": self.ts,
            "name": self.name,
            "cat": self.cat,
            "track": self.track,
        }
        if self.dur is not None:
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d


class Tracer:
    """An append-only event log with optional sampling and streaming.

    Two subscriber lists bracket the sampling stage:

    * *sinks* (:meth:`add_sink`) see the **pre-sampling** stream --
      every recorded event. The crash flight recorder rides here, so
      its last-N ring stays complete even under aggressive sampling;
    * *streams* (:meth:`add_stream`) see the **post-sampling** stream
      -- what the :class:`~repro.obs.sinks.TraceSampler` keeps (or
      everything, when no sampler is configured). Streaming sinks
      (:class:`~repro.obs.sinks.JsonlSink`) ride here.

    ``retain`` controls the in-memory ``events`` list: ``True`` keeps
    every kept event (the historical behaviour), ``False`` keeps none
    (stream-only runs), an integer keeps a bounded tail. The tracer
    self-accounts (:meth:`stats`): events recorded vs emitted vs
    sampled out, bytes written by streams, and the peak number of
    events resident in memory -- the observer reports its own overhead.
    """

    def __init__(self, sampler=None, retain: Union[bool, int] = True) -> None:
        self.events: List[TraceEvent] = []
        self._sinks: List = []
        self._streams: List = []
        self._sampler = sampler
        if sampler is not None:
            sampler.bind(self._emit)
        self._retain = retain
        self._retain_cap = retain if isinstance(retain, int) and retain is not True else None
        # -- self-accounting
        self.events_recorded = 0
        self.events_emitted = 0
        self.peak_resident_events = 0
        # -- monotonicity fast path: the sim clock only moves forward,
        # so events usually arrive time-ordered; track it in O(1) and
        # let timeline() skip the sort when the order held
        self._last_ts = float("-inf")
        self._monotonic = True

    def __len__(self) -> int:
        return len(self.events)

    @property
    def sampler(self):
        return self._sampler

    def add_sink(self, fn) -> None:
        """``fn(event)`` runs for every recorded event, *before*
        sampling (the flight recorder's full-fidelity tap)."""
        self._sinks.append(fn)

    def add_stream(self, sink) -> None:
        """A streaming sink (``write(event)``/``flush()``/``close()``)
        fed the post-sampling stream."""
        self._streams.append(sink)

    # -- recording -------------------------------------------------------------

    def span(
        self,
        name: str,
        ts: float,
        dur: float,
        track: str,
        cat: str = "sim",
        args: Optional[Dict] = None,
    ) -> None:
        """A duration event: [ts, ts+dur) in simulated seconds."""
        self._record(TraceEvent(ts, dur, name, cat, track, args))

    def instant(
        self,
        name: str,
        ts: float,
        track: str,
        cat: str = "sim",
        args: Optional[Dict] = None,
    ) -> None:
        self._record(TraceEvent(ts, None, name, cat, track, args))

    def _record(self, event: TraceEvent) -> None:
        for sink in self._sinks:
            sink(event)
        self.events_recorded += 1
        if event.ts < self._last_ts:
            self._monotonic = False
        else:
            self._last_ts = event.ts
        if self._sampler is not None:
            self._sampler.feed(event)
            resident = len(self.events) + self._sampler.pending_events
        else:
            self._emit(event)
            resident = len(self.events)
        if resident > self.peak_resident_events:
            self.peak_resident_events = resident

    def _emit(self, event: TraceEvent) -> None:
        """One event past the sampling stage: retained + streamed."""
        self.events_emitted += 1
        if self._retain:
            self.events.append(event)
            cap = self._retain_cap
            if cap is not None and len(self.events) > cap:
                # promotion can interleave late events; drop the oldest
                del self.events[: len(self.events) - cap]
                self._monotonic = False
        for stream in self._streams:
            stream.write(event)

    # -- lifecycle -------------------------------------------------------------

    def flush(self) -> None:
        """Flush streaming sinks to disk (pending sampler state is kept:
        in-flight windows may still be promoted). The simulator calls
        this when a run loop drains, so shards are durable at every run
        boundary."""
        for stream in self._streams:
            stream.flush()

    def close(self) -> None:
        """Finalize: drain the sampler (windows still pending count as
        sampled out) and close every streaming sink (writing shard
        manifests). Call once, at end of run, before reading stats."""
        if self._sampler is not None:
            self._sampler.drain()
        for stream in self._streams:
            stream.close()

    # -- self-accounting -------------------------------------------------------

    @property
    def bytes_written(self) -> int:
        return sum(getattr(s, "bytes_written", 0) for s in self._streams)

    @property
    def events_sampled_out(self) -> int:
        """Events dropped by sampling so far (events still pending in
        the sampler's buffer are counted only after :meth:`close`)."""
        if self._sampler is None:
            return 0
        return self._sampler.events_sampled_out

    def resident_events(self) -> int:
        pending = self._sampler.pending_events if self._sampler else 0
        return len(self.events) + pending

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "events_recorded": self.events_recorded,
            "events_emitted": self.events_emitted,
            "events_sampled_out": self.events_sampled_out,
            "bytes_written": self.bytes_written,
            "resident_events": self.resident_events(),
            "peak_resident_events": self.peak_resident_events,
        }
        if self._sampler is not None:
            out["sampler"] = self._sampler.stats()
        return out

    # -- queries (mostly for tests and the timeline) ---------------------------

    def on_track(self, track: str) -> List[TraceEvent]:
        return [e for e in self.events if e.track == track]

    def named(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def tracks(self) -> List[str]:
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    # -- exporters -------------------------------------------------------------

    def write_jsonl(self, fp: IO[str]) -> None:
        """One event per line, in recording order."""
        for event in self.events:
            fp.write(json.dumps(event.as_dict(), sort_keys=True))
            fp.write("\n")

    def ordered_events(self) -> List[TraceEvent]:
        """Events in time order. The sim clock is monotonic, so events
        almost always arrive already sorted -- the recording path tracks
        that in O(1) and this returns the list as-is; only when order
        was broken (sampler promotions flush buffered events late, or a
        bounded ``retain`` dropped a prefix) does it pay for a stable
        sort, which keeps simultaneous events in recording order."""
        if self._monotonic:
            return self.events
        return sorted(self.events, key=lambda e: e.ts)

    def timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable, time-ordered (see :meth:`ordered_events`)."""
        ordered = self.ordered_events()
        if limit is not None:
            ordered = ordered[:limit]
        lines = []
        for event in ordered:
            dur = f" +{event.dur * _US:.3f}us" if event.dur is not None else ""
            args = ""
            if event.args:
                inner = " ".join(
                    f"{k}={event.args[k]}" for k in sorted(event.args)
                )
                args = f"  [{inner}]"
            lines.append(
                f"{event.ts * _US:12.3f}us{dur:>12}  {event.track:<24} "
                f"{event.name}{args}"
            )
        return "\n".join(lines)

    def chrome_dict(self, process_name: str = "repro-sim") -> Dict[str, object]:
        """The trace as a chrome://tracing / Perfetto JSON object."""
        tids: Dict[str, int] = {}
        trace_events: List[Dict[str, object]] = []
        ordered = self.ordered_events()
        # Deterministic tids: tracks numbered in first-appearance order.
        for event in ordered:
            if event.track not in tids:
                tids[event.track] = len(tids) + 1
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": process_name},
            }
        )
        for track, tid in tids.items():
            trace_events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        for event in ordered:
            entry: Dict[str, object] = {
                "name": event.name,
                "cat": event.cat,
                "pid": 1,
                "tid": tids[event.track],
                "ts": round(event.ts * _US, 6),
            }
            if event.dur is None:
                entry["ph"] = "i"
                entry["s"] = "t"
            else:
                entry["ph"] = "X"
                entry["dur"] = round(event.dur * _US, 6)
            if event.args:
                entry["args"] = event.args
            trace_events.append(entry)
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def write_chrome(self, fp: IO[str], process_name: str = "repro-sim") -> None:
        json.dump(self.chrome_dict(process_name), fp, sort_keys=True)
        fp.write("\n")
