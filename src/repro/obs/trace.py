"""Structured tracing: spans and packet-scoped events.

The tracer records what happened to every frame as it crosses the stack
-- host emit, link queue/serialize, switch parser, each pipeline stage's
matched table and action, delivery -- against the **simulator's virtual
clock**, so two identical runs produce byte-identical traces. Wall-clock
time never enters a simulation trace; the compiler's
:class:`~repro.obs.compiler.CompileTrace` takes a caller-supplied clock
for the same determinism on the build side.

Events live on *tracks* (one per host, link direction, or switch) and
carry free-form ``args``; NCP-decodable frames are annotated with
``kernel``/``seq``/``from`` so one window can be followed hop-by-hop
with a text grep or in a trace viewer.

Three exporters:

* :meth:`Tracer.write_jsonl` -- one JSON object per line, grep-friendly;
* :meth:`Tracer.timeline` -- a human-readable time-ordered listing;
* :meth:`Tracer.write_chrome` -- Chrome trace-event format (the
  ``chrome://tracing`` / Perfetto JSON schema): complete events (``X``)
  for spans, instant events (``i``) for points, with thread-name
  metadata so tracks show up labelled.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional

#: simulated seconds -> trace microseconds (the chrome schema's unit)
_US = 1e6


class TraceEvent:
    __slots__ = ("ts", "dur", "name", "cat", "track", "args")

    def __init__(
        self,
        ts: float,
        dur: Optional[float],
        name: str,
        cat: str,
        track: str,
        args: Optional[Dict] = None,
    ):
        self.ts = ts
        self.dur = dur  # None -> instant event
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args or {}

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "ts": self.ts,
            "name": self.name,
            "cat": self.cat,
            "track": self.track,
        }
        if self.dur is not None:
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d


class Tracer:
    """An append-only event log (cheap enough to keep per-run).

    *Sinks* (:meth:`add_sink`) additionally receive every recorded
    event as it happens -- how the bounded flight recorder keeps its
    last-N ring without the tracer growing extra retention modes.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._sinks: List = []

    def __len__(self) -> int:
        return len(self.events)

    def add_sink(self, fn) -> None:
        """``fn(event)`` runs for every subsequently recorded event."""
        self._sinks.append(fn)

    # -- recording -------------------------------------------------------------

    def span(
        self,
        name: str,
        ts: float,
        dur: float,
        track: str,
        cat: str = "sim",
        args: Optional[Dict] = None,
    ) -> None:
        """A duration event: [ts, ts+dur) in simulated seconds."""
        event = TraceEvent(ts, dur, name, cat, track, args)
        self.events.append(event)
        for sink in self._sinks:
            sink(event)

    def instant(
        self,
        name: str,
        ts: float,
        track: str,
        cat: str = "sim",
        args: Optional[Dict] = None,
    ) -> None:
        event = TraceEvent(ts, None, name, cat, track, args)
        self.events.append(event)
        for sink in self._sinks:
            sink(event)

    # -- queries (mostly for tests and the timeline) ---------------------------

    def on_track(self, track: str) -> List[TraceEvent]:
        return [e for e in self.events if e.track == track]

    def named(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def tracks(self) -> List[str]:
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    # -- exporters -------------------------------------------------------------

    def write_jsonl(self, fp: IO[str]) -> None:
        """One event per line, in recording order."""
        for event in self.events:
            fp.write(json.dumps(event.as_dict(), sort_keys=True))
            fp.write("\n")

    def timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable, time-ordered; stable sort keeps simultaneous
        events in recording order."""
        ordered = sorted(self.events, key=lambda e: e.ts)
        if limit is not None:
            ordered = ordered[:limit]
        lines = []
        for event in ordered:
            dur = f" +{event.dur * _US:.3f}us" if event.dur is not None else ""
            args = ""
            if event.args:
                inner = " ".join(
                    f"{k}={event.args[k]}" for k in sorted(event.args)
                )
                args = f"  [{inner}]"
            lines.append(
                f"{event.ts * _US:12.3f}us{dur:>12}  {event.track:<24} "
                f"{event.name}{args}"
            )
        return "\n".join(lines)

    def chrome_dict(self, process_name: str = "repro-sim") -> Dict[str, object]:
        """The trace as a chrome://tracing / Perfetto JSON object."""
        tids: Dict[str, int] = {}
        trace_events: List[Dict[str, object]] = []
        # Deterministic tids: tracks numbered in first-appearance order.
        for event in self.events:
            if event.track not in tids:
                tids[event.track] = len(tids) + 1
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": process_name},
            }
        )
        for track, tid in tids.items():
            trace_events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        for event in self.events:
            entry: Dict[str, object] = {
                "name": event.name,
                "cat": event.cat,
                "pid": 1,
                "tid": tids[event.track],
                "ts": round(event.ts * _US, 6),
            }
            if event.dur is None:
                entry["ph"] = "i"
                entry["s"] = "t"
            else:
                entry["ph"] = "X"
                entry["dur"] = round(event.dur * _US, 6)
            if event.args:
                entry["args"] = event.args
            trace_events.append(entry)
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def write_chrome(self, fp: IO[str], process_name: str = "repro-sim") -> None:
        json.dump(self.chrome_dict(process_name), fp, sort_keys=True)
        fp.write("\n")
