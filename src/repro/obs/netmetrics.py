"""Bridging the simulator's component stats into the registry, and the
per-packet pipeline trace observer.

The network keeps its ad-hoc stats structs unconditionally (they are a
handful of integer adds on the hot path); :func:`collect_network_metrics`
folds them into registry gauges at snapshot time. It works both live
(registered as a collector by :class:`~repro.net.network.Network` when
an :class:`~repro.obs.context.Observability` is attached) and post-hoc
(benchmarks snapshot any finished network into a fresh registry).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer

if TYPE_CHECKING:
    from repro.net.network import Network


def link_track(link) -> str:
    return f"link {link.a.name}<->{link.b.name}"


def collect_network_metrics(net: "Network", registry: MetricsRegistry) -> None:
    """Set registry gauges from every component stat of *net*.

    Idempotent (gauges are overwritten), so it can run at every
    snapshot. Covers the simulator core, links (incl. drop causes),
    nodes, and PISA switch pipelines (per-table/per-action accounting).
    """
    registry.gauge("sim.time_seconds", "virtual time at snapshot").set(net.sim.now())
    registry.gauge("sim.events_processed", "discrete events run").set(
        net.sim.events_processed
    )

    g_bytes = registry.gauge("link.bytes", "payload bytes serialized", ("link",))
    g_frames = registry.gauge("link.frames", "frames serialized", ("link",))
    g_busy = registry.gauge("link.busy_seconds", "serialization time", ("link",))
    g_drops = registry.gauge(
        "link.drops", "frames dropped, by cause", ("link", "cause")
    )
    for link in net.links:
        name = f"{link.a.name}<->{link.b.name}"
        g_bytes.labels(link=name).set(link.stats.bytes)
        g_frames.labels(link=name).set(link.stats.frames)
        g_busy.labels(link=name).set(link.stats.busy_time)
        g_drops.labels(link=name, cause="loss").set(link.stats.drops_loss)
        g_drops.labels(link=name, cause="overflow").set(link.stats.drops_overflow)
        g_drops.labels(link=name, cause="down").set(link.stats.drops_down)

    n_rx_f = registry.gauge("node.rx_frames", "frames received", ("node",))
    n_rx_b = registry.gauge("node.rx_bytes", "bytes received", ("node",))
    n_tx_f = registry.gauge("node.tx_frames", "frames sent", ("node",))
    n_tx_b = registry.gauge("node.tx_bytes", "bytes sent", ("node",))
    n_drops = registry.gauge("node.drops", "frames dropped at the node", ("node",))
    n_proc = registry.gauge("node.processed", "frames processed", ("node",))
    n_up = registry.gauge(
        "node.up", "administrative state (1 up / 0 down)", ("node",)
    )
    sw_pkts = registry.gauge("switch.packets", "packets through the pipeline", ("switch",))
    sw_hits = registry.gauge("switch.table_hits", "table hits", ("switch", "table"))
    sw_miss = registry.gauge("switch.table_misses", "table misses", ("switch", "table"))
    sw_acts = registry.gauge("switch.action_runs", "action executions", ("switch", "action"))
    sw_rreads = registry.gauge("switch.register_reads", "stateful reads", ("switch",))
    sw_rwrites = registry.gauge("switch.register_writes", "stateful writes", ("switch",))

    for node in net.nodes.values():
        n_rx_f.labels(node=node.name).set(node.stats.rx_frames)
        n_rx_b.labels(node=node.name).set(node.stats.rx_bytes)
        n_tx_f.labels(node=node.name).set(node.stats.tx_frames)
        n_tx_b.labels(node=node.name).set(node.stats.tx_bytes)
        n_drops.labels(node=node.name).set(node.stats.drops)
        n_proc.labels(node=node.name).set(node.stats.processed)
        n_up.labels(node=node.name).set(1 if node.up else 0)
        switch = getattr(node, "switch", None)
        pipeline = getattr(switch, "pipeline", None)
        if pipeline is None:
            continue
        stats = pipeline.stats
        sw_pkts.labels(switch=node.name).set(stats.packets)
        for table, hits in stats.table_hits.items():
            sw_hits.labels(switch=node.name, table=table).set(hits)
        for table, misses in stats.table_misses.items():
            sw_miss.labels(switch=node.name, table=table).set(misses)
        for action, runs in stats.action_runs.items():
            sw_acts.labels(switch=node.name, action=action).set(runs)
        sw_rreads.labels(switch=node.name).set(stats.register_reads)
        sw_rwrites.labels(switch=node.name).set(stats.register_writes)


class SwitchPacketTrace:
    """Per-packet pipeline observer: collects what the parser and each
    pipeline stage did, then emits proportional sub-spans.

    The simulator charges one lumped ``PIPELINE_DELAY`` per packet; for
    the trace we apportion it evenly across the recorded stage
    operations (parse, each table apply, each top-level action) so the
    per-stage spans tile the switch's processing window exactly --
    honest about ordering, synthetic about per-stage duration.
    """

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops = []  # (kind, name, detail)

    # pipeline callbacks ------------------------------------------------------

    def parse(self, nbytes: int) -> None:
        self.ops.append(("parse", "parser", f"{nbytes}B"))

    def table(self, name: str, hit: bool, action: str) -> None:
        self.ops.append(
            ("table", name, f"{'hit' if hit else 'miss'}:{action}")
        )

    def action(self, name: str) -> None:
        self.ops.append(("action", name, ""))

    # emission ----------------------------------------------------------------

    def emit(
        self,
        tracer: Tracer,
        track: str,
        start: float,
        delay: float,
        verdict: str,
        frame_args: Optional[dict] = None,
    ) -> None:
        base = dict(frame_args or {})
        n = max(1, len(self.ops))
        slice_dur = delay / n
        for i, (kind, name, detail) in enumerate(self.ops):
            args = dict(base)
            args["stage"] = i
            if detail:
                args["detail"] = detail
            tracer.span(
                f"{kind}:{name}",
                start + i * slice_dur,
                slice_dur,
                track=track,
                cat="switch",
                args=args,
            )
        out = dict(base)
        out["verdict"] = verdict
        tracer.instant("verdict", start + delay, track=track, cat="switch", args=out)
