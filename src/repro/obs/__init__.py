"""repro.obs -- the cross-layer observability subsystem.

Three pillars (see ``docs/OBSERVABILITY.md``):

* a **metrics registry** (:class:`MetricsRegistry`) every layer
  publishes into -- counters/gauges/histograms with labels;
* **structured tracing** (:class:`Tracer`) with spans and packet-scoped
  events against the simulator's virtual clock, exportable as JSON
  lines, a human-readable timeline, or Chrome trace-event JSON;
* **compiler instrumentation** (:class:`CompileTrace`) -- per-pass wall
  time and IR-size deltas inside ``nclc``.

The :class:`Observability` context bundles the first two and rides on
the simulator (``sim.obs``); the default is the no-op :data:`NULL_OBS`,
whose cost at every instrumentation site is one attribute load and a
branch.

Phase 3 adds scale discipline: deterministic trace sampling with
anomaly retention (:class:`TraceSampler`), streaming/sharded sinks
(:class:`JsonlSink`), metric cardinality caps (``max_series`` /
:data:`OVERFLOW_LABEL`), and cross-run regression diffing
(:func:`diff_runs`, ``repro.diff/1``).
"""

from repro.obs.compiler import CompileTrace, ir_size
from repro.obs.context import NULL_OBS, Observability
from repro.obs.diff import (
    DIFF_SCHEMA,
    build_report,
    diff_runs,
    render_report,
    validate_report,
)
from repro.obs.flight import FlightRecorder, flight_guard, validate_bundle
from repro.obs.health import AlertEngine, AlertRule, parse_rule
from repro.obs.int import IntConfig, IntError, IntStack, carries_int, peek_stack
from repro.obs.netmetrics import SwitchPacketTrace, collect_network_metrics
from repro.obs.profile import Profiler
from repro.obs.prom import render_prom
from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    OVERFLOW_LABEL,
    ObservabilityError,
)
from repro.obs.sinks import (
    BoundedBufferSink,
    JsonlSink,
    TraceSampler,
    iter_trace_events,
    resolve_trace_paths,
    stable_hash,
    window_key,
)
from repro.obs.timeseries import (
    TimeSeriesSampler,
    attach_cluster_probes,
    attach_network_probes,
)
from repro.obs.trace import TraceEvent, Tracer

__all__ = [
    "AlertEngine",
    "AlertRule",
    "BoundedBufferSink",
    "CompileTrace",
    "Counter",
    "DEFAULT_BUCKETS",
    "DIFF_SCHEMA",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "IntConfig",
    "IntError",
    "IntStack",
    "JsonlSink",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_OBS",
    "OVERFLOW_LABEL",
    "Observability",
    "ObservabilityError",
    "Profiler",
    "SwitchPacketTrace",
    "TimeSeriesSampler",
    "TraceEvent",
    "TraceSampler",
    "Tracer",
    "attach_cluster_probes",
    "attach_network_probes",
    "build_report",
    "carries_int",
    "collect_network_metrics",
    "diff_runs",
    "flight_guard",
    "ir_size",
    "iter_trace_events",
    "parse_rule",
    "peek_stack",
    "render_prom",
    "render_report",
    "resolve_trace_paths",
    "stable_hash",
    "validate_bundle",
    "validate_report",
    "window_key",
]
