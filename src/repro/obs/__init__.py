"""repro.obs -- the cross-layer observability subsystem.

Three pillars (see ``docs/OBSERVABILITY.md``):

* a **metrics registry** (:class:`MetricsRegistry`) every layer
  publishes into -- counters/gauges/histograms with labels;
* **structured tracing** (:class:`Tracer`) with spans and packet-scoped
  events against the simulator's virtual clock, exportable as JSON
  lines, a human-readable timeline, or Chrome trace-event JSON;
* **compiler instrumentation** (:class:`CompileTrace`) -- per-pass wall
  time and IR-size deltas inside ``nclc``.

The :class:`Observability` context bundles the first two and rides on
the simulator (``sim.obs``); the default is the no-op :data:`NULL_OBS`,
whose cost at every instrumentation site is one attribute load and a
branch.
"""

from repro.obs.compiler import CompileTrace, ir_size
from repro.obs.context import NULL_OBS, Observability
from repro.obs.flight import FlightRecorder, flight_guard, validate_bundle
from repro.obs.health import AlertEngine, AlertRule, parse_rule
from repro.obs.int import IntConfig, IntError, IntStack, carries_int, peek_stack
from repro.obs.netmetrics import SwitchPacketTrace, collect_network_metrics
from repro.obs.profile import Profiler
from repro.obs.prom import render_prom
from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    ObservabilityError,
)
from repro.obs.timeseries import (
    TimeSeriesSampler,
    attach_cluster_probes,
    attach_network_probes,
)
from repro.obs.trace import TraceEvent, Tracer

__all__ = [
    "AlertEngine",
    "AlertRule",
    "CompileTrace",
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "IntConfig",
    "IntError",
    "IntStack",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "ObservabilityError",
    "Profiler",
    "SwitchPacketTrace",
    "TimeSeriesSampler",
    "TraceEvent",
    "Tracer",
    "attach_cluster_probes",
    "attach_network_probes",
    "carries_int",
    "collect_network_metrics",
    "flight_guard",
    "ir_size",
    "parse_rule",
    "peek_stack",
    "render_prom",
    "validate_bundle",
]
