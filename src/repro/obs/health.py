"""Declarative health alerting over virtual-clock time series.

An :class:`AlertRule` watches one time-series stream (summed over the
matching labelled series) and fires when its condition holds:

* **threshold** -- the sampled value itself: ``link.qdepth_bytes > 4096``;
* **rate** -- the windowed rate of a cumulative counter:
  ``ncp.retransmits rate > 100000 over 10us``;
* **absence** -- a counter made no progress over the window:
  ``ncp.windows_received absent over 20us`` (a heartbeat rule).

Rules are plain constructor calls or the one-line string form parsed by
:func:`parse_rule`::

    stalled: ncp.windows_received absent over 20us
    drops: link.drops{cause=down} rate > 0 over 2us !critical

(an optional leading ``name:``, an optional ``{k=v,...}`` label filter,
an optional trailing ``!critical`` escalation marker).

The :class:`AlertEngine` subscribes to a
:class:`~repro.obs.timeseries.TimeSeriesSampler` (wired automatically by
:class:`~repro.obs.context.Observability`) and evaluates every rule at
every completed bucket boundary, so alerting is continuous over the
run's virtual clock. Firing and resolving are recorded as
``alert:firing`` / ``alert:resolved`` instants on the ``health`` trace
track, collected into ``repro.alerts/1`` records that carry the
triggering time-series window as evidence, and -- for ``!critical``
rules -- escalated to the flight recorder, which dumps a diagnostic
bundle the moment the run goes unhealthy.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, IO, List, Optional

from repro.obs.registry import ObservabilityError
from repro.obs.timeseries import TimeSeriesSampler, rates

ALERTS_SCHEMA = "repro.alerts/1"

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}


def parse_duration(text: str) -> float:
    """``"10us"`` -> 1e-5 (simulated seconds)."""
    m = re.fullmatch(r"\s*([0-9.]+)\s*(s|ms|us|ns)\s*", text)
    if not m:
        raise ObservabilityError(
            f"bad duration {text!r}; expected e.g. 10us, 1.5ms, 2s"
        )
    return float(m.group(1)) * _UNITS[m.group(2)]


class AlertRule:
    """One declarative rule over one (label-filtered) series stream."""

    def __init__(
        self,
        name: str,
        series: str,
        mode: str = "value",
        op: str = ">",
        threshold: float = 0.0,
        over: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
        severity: str = "warning",
    ):
        if mode not in ("value", "rate", "absent"):
            raise ObservabilityError(f"unknown alert mode {mode!r}")
        if op not in _OPS:
            raise ObservabilityError(f"unknown alert comparison {op!r}")
        if mode in ("rate", "absent") and over is None:
            raise ObservabilityError(
                f"alert {name!r}: {mode} rules need an 'over' window"
            )
        if severity not in ("warning", "critical"):
            raise ObservabilityError(f"unknown severity {severity!r}")
        self.name = name
        self.series = series
        self.mode = mode
        self.op = op
        self.threshold = threshold
        self.over = over
        self.labels = dict(labels or {})
        self.severity = severity

    @property
    def escalates(self) -> bool:
        return self.severity == "critical"

    def text(self) -> str:
        """The canonical one-line form (parse_rule round-trips it)."""
        sel = self.series
        if self.labels:
            inner = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
            sel += "{" + inner + "}"
        if self.mode == "absent":
            body = f"{sel} absent over {self.over * 1e6:g}us"
        else:
            body = f"{sel}{' rate' if self.mode == 'rate' else ''} " \
                   f"{self.op} {self.threshold:g}"
            if self.over is not None:
                body += f" over {self.over * 1e6:g}us"
        tail = " !critical" if self.severity == "critical" else ""
        return f"{self.name}: {body}{tail}"

    def __repr__(self) -> str:
        return f"AlertRule({self.text()!r})"


_RULE_RE = re.compile(
    r"^\s*(?:(?P<name>[\w.-]+)\s*:)?\s*"
    r"(?P<series>[\w.]+)\s*(?:\{(?P<labels>[^}]*)\})?\s*"
    r"(?:(?P<absent>absent)|(?P<rate>rate)?\s*"
    r"(?P<op>>=|<=|==|!=|>|<)\s*(?P<threshold>-?[0-9.eE+]+))"
    r"(?:\s+over\s+(?P<over>[0-9.]+\s*(?:s|ms|us|ns)))?"
    r"\s*(?P<crit>!critical)?\s*$"
)


def parse_rule(text: str) -> AlertRule:
    """Parse the one-line rule form (see the module docstring)."""
    m = _RULE_RE.match(text)
    if not m:
        raise ObservabilityError(
            f"bad alert rule {text!r}; expected e.g. "
            "'drops: link.drops rate > 0 over 2us !critical'"
        )
    labels: Dict[str, str] = {}
    if m.group("labels"):
        for part in m.group("labels").split(","):
            if "=" not in part:
                raise ObservabilityError(
                    f"bad label filter {part!r} in alert rule {text!r}"
                )
            k, v = part.split("=", 1)
            labels[k.strip()] = v.strip()
    if m.group("absent"):
        mode = "absent"
        op, threshold = "==", 0.0
    else:
        mode = "rate" if m.group("rate") else "value"
        op = m.group("op")
        threshold = float(m.group("threshold"))
    over = parse_duration(m.group("over")) if m.group("over") else None
    return AlertRule(
        name=m.group("name") or m.group("series"),
        series=m.group("series"),
        mode=mode,
        op=op,
        threshold=threshold,
        over=over,
        labels=labels,
        severity="critical" if m.group("crit") else "warning",
    )


class Alert:
    """One firing (and possibly resolved) instance of a rule."""

    def __init__(self, rule: AlertRule, fired_at: float, value: float,
                 window: List[List[float]]):
        self.rule = rule
        self.fired_at = fired_at
        self.resolved_at: Optional[float] = None
        self.value = value
        #: the triggering evidence: [t, signal value] pairs over the
        #: rule's window ending at the firing boundary
        self.window = window

    @property
    def state(self) -> str:
        return "resolved" if self.resolved_at is not None else "firing"

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.rule.name,
            "rule": self.rule.text(),
            "series": self.rule.series,
            "severity": self.rule.severity,
            "state": self.state,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "value": self.value,
            "threshold": self.rule.threshold,
            "window": self.window,
        }


class AlertEngine:
    """Evaluates every rule at every completed time-series bucket."""

    def __init__(self, rules: Optional[List] = None):
        self.rules: List[AlertRule] = []
        for rule in rules or ():
            self.add_rule(rule)
        self.alerts: List[Alert] = []
        self._active: Dict[str, Alert] = {}
        self._tracer = None
        self._escalate: Optional[Callable[[str, float], None]] = None

    def add_rule(self, rule) -> AlertRule:
        if isinstance(rule, str):
            rule = parse_rule(rule)
        if any(r.name == rule.name for r in self.rules):
            raise ObservabilityError(f"duplicate alert rule name {rule.name!r}")
        self.rules.append(rule)
        return rule

    # -- wiring (done by Observability) ----------------------------------------

    def bind(self, obs) -> None:
        self._tracer = obs.tracer

    def escalate_to(self, fn: Callable[[str, float], None]) -> None:
        """``fn(reason, virtual_time)`` runs once per critical firing
        (the flight recorder's dump trigger)."""
        self._escalate = fn

    # -- evaluation ------------------------------------------------------------

    def observe(self, sampler: TimeSeriesSampler, t: float, idx: int) -> None:
        """Sampler bucket observer: evaluate every rule at boundary
        ``idx`` (time ``t``)."""
        for rule in self.rules:
            signal = self._signal(rule, sampler, idx)
            if signal is None:
                continue
            value, window = signal
            firing = _OPS[rule.op](value, rule.threshold)
            active = self._active.get(rule.name)
            if firing and active is None:
                alert = Alert(rule, t, value, window)
                self._active[rule.name] = alert
                self.alerts.append(alert)
                self._emit("alert:firing", t, alert)
                if rule.escalates and self._escalate is not None:
                    self._escalate(f"alert:{rule.name}", t)
            elif not firing and active is not None:
                active.resolved_at = t
                del self._active[rule.name]
                self._emit("alert:resolved", t, active)

    def _signal(self, rule: AlertRule, sampler: TimeSeriesSampler, idx: int):
        """(current signal value, evidence window) for ``rule`` at
        bucket ``idx``, or None while there is not yet enough history."""
        points = sampler.summed(rule.series, rule.labels)
        if not points:
            return None
        interval = sampler.interval
        if rule.mode == "value":
            upto = [(i, v) for i, v in points if i <= idx]
            if not upto or upto[-1][0] != idx:
                return None
            tail = upto[-8:]
            return upto[-1][1], [[i * interval, v] for i, v in tail]
        # rate / absent: windowed delta of a cumulative counter
        w = max(1, int(round(rule.over / interval)))
        if idx < w:
            return None
        window_pts = [(i, v) for i, v in points if idx - w <= i <= idx]
        if len(window_pts) < 2 or window_pts[-1][0] != idx:
            return None
        delta = window_pts[-1][1] - window_pts[0][1]
        span = (window_pts[-1][0] - window_pts[0][0]) * interval
        evidence = [[i * interval, v] for i, v in window_pts]
        if rule.mode == "absent":
            # fires while the counter makes no progress over the window
            return delta, evidence
        return delta / span, [
            [i * interval, r] for i, r in rates(window_pts, interval)
        ]

    def _emit(self, name: str, t: float, alert: Alert) -> None:
        if self._tracer is None:
            return
        self._tracer.instant(
            name, t, track="health", cat="alert",
            args={
                "alert": alert.rule.name,
                "rule": alert.rule.text(),
                "severity": alert.rule.severity,
                "value": alert.value,
                "threshold": alert.rule.threshold,
            },
        )

    # -- export ----------------------------------------------------------------

    def firing(self) -> List[Alert]:
        return [a for a in self.alerts if a.state == "firing"]

    def export(self) -> Dict[str, object]:
        """The ``repro.alerts/1`` document (byte-deterministic across
        identical runs)."""
        return {
            "schema": ALERTS_SCHEMA,
            "rules": [r.text() for r in self.rules],
            "alerts": [a.as_dict() for a in self.alerts],
        }

    def write_json(self, fp: IO[str]) -> None:
        json.dump(self.export(), fp, sort_keys=True)
        fp.write("\n")
