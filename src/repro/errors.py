"""Exception hierarchy for the NCL/C3 reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish user-program errors (bad NCL source, rejected programs) from
internal invariant violations (which raise plain ``AssertionError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceLocation:
    """A position in an NCL source file (1-based line/column)."""

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str = "<ncl>", line: int = 0, column: int = 0):
        self.filename = filename
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.filename, self.line, self.column) == (
            other.filename,
            other.line,
            other.column,
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))


class NclError(ReproError):
    """An error in an NCL source program.

    Carries an optional :class:`SourceLocation` that is rendered in the
    message, mirroring a conventional compiler diagnostic. ``code`` is a
    stable diagnostic code (``NCL0412``-style; subclasses provide a
    :attr:`default_code`) and ``length`` the caret-span width in columns
    -- both consumed by :mod:`repro.diag` when the front end runs in
    error-recovery mode.
    """

    #: fallback diagnostic code for errors raised without an explicit one
    default_code = "NCL0001"

    def __init__(
        self,
        message: str,
        loc: "SourceLocation | None" = None,
        code: "str | None" = None,
        length: int = 1,
    ):
        self.loc = loc
        self.message = message
        self.code = code
        self.length = length
        super().__init__(f"{loc}: {message}" if loc else message)


class NclSyntaxError(NclError):
    """Lexical or syntactic error in NCL source."""

    default_code = "NCL0101"


class NclTypeError(NclError):
    """Semantic/type error in NCL source."""

    default_code = "NCL0400"


class IrError(ReproError):
    """Malformed NIR detected by the verifier or a pass."""


class PipelineError(ReproError):
    """The compile pass manager was asked to run an ill-formed pipeline
    (unknown pass, unsatisfied input, invalidated analysis with no
    producer)."""


class ArtifactError(ReproError):
    """A serialized ``repro.nclc/1`` compile artifact is malformed,
    has an unsupported schema version, or cannot be reconstructed."""


class ConformanceError(ReproError):
    """Program is valid NCL but cannot map to PISA (nclc stage 1).

    Examples: loops without provably constant trip counts, recursion,
    dynamic memory, unsupported operations in switch code.
    """


class BackendRejection(ReproError):
    """The P4 backend rejected the generated program against a chip profile.

    The paper (S5) requires the final P4 program to be given to a backend
    that may accept or reject it; this is the reject path, with structured
    feedback in :attr:`reasons`.
    """

    def __init__(self, reasons: "list[str]"):
        self.reasons = list(reasons)
        super().__init__("backend rejected program: " + "; ".join(self.reasons))


class AndError(ReproError):
    """Invalid Abstract Network Description."""


class DeployError(ReproError):
    """Malformed deployment manifest (the check-deploy input)."""


class MappingError(ReproError):
    """The AND overlay could not be mapped onto the physical topology."""


class NcpError(ReproError):
    """Malformed NCP packet or window framing violation."""


class RuntimeApiError(ReproError):
    """Misuse of the libncrt host API (e.g. mask/signature mismatch)."""


class SimulationError(ReproError):
    """Network-simulator misconfiguration (unknown node, no route, ...)."""


class PisaError(ReproError):
    """Runtime fault inside the PISA pipeline simulator."""
