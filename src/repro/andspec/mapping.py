"""Overlay-to-physical network mapping.

The paper assumes "a mechanism that maps the overlay network of the AND
file into a physical network and allocates network resources" (S3.2,
citing Switches-for-HIRE). This module provides a concrete such
mechanism for the simulator:

* overlay hosts are mapped to physical hosts;
* overlay switches are mapped to distinct physical switches;
* every overlay edge (u, v) must map to a physical path between the
  images of u and v that traverses **no other mapped switch** -- this is
  what preserves on-path kernel execution order.

The mapper does exhaustive search with pruning over switch placements
(overlays are small -- a handful of functional components), after pinning
hosts either by an explicit assignment or by name match.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import MappingError
from repro.andspec.model import AndSpec


class PhysicalNet:
    """A physical topology the mapper can target.

    Thin wrapper over an undirected networkx graph whose nodes carry a
    ``kind`` attribute (``host``/``switch``). The network simulator's
    :class:`repro.net.topology.Topology` exposes a conversion to this.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()

    def add_host(self, name: str) -> None:
        self.graph.add_node(name, kind="host")

    def add_switch(self, name: str, pisa: bool = True) -> None:
        """Add a switch; ``pisa=False`` marks a plain forwarder (e.g. a
        fat-tree aggregation/core tier) that can carry traffic but not
        host kernels -- the mapper will route through it, never place on
        it."""
        self.graph.add_node(name, kind="switch", pisa=pisa)

    def add_link(self, a: str, b: str) -> None:
        for n in (a, b):
            if n not in self.graph:
                raise MappingError(f"link references unknown physical node {n!r}")
        self.graph.add_edge(a, b)

    def hosts(self) -> List[str]:
        return [n for n, d in self.graph.nodes(data=True) if d["kind"] == "host"]

    def switches(self) -> List[str]:
        return [n for n, d in self.graph.nodes(data=True) if d["kind"] == "switch"]

    def pisa_switches(self) -> List[str]:
        """Switches that can host kernels (programmable targets only)."""
        return [
            n for n, d in self.graph.nodes(data=True)
            if d["kind"] == "switch" and d.get("pisa", True)
        ]


class Mapping:
    """Result of a successful overlay mapping."""

    def __init__(
        self,
        placement: Dict[str, str],
        edge_paths: Dict[Tuple[str, str], List[str]],
    ) -> None:
        #: overlay label -> physical node name
        self.placement = dict(placement)
        #: overlay edge -> physical node path (inclusive endpoints)
        self.edge_paths = dict(edge_paths)

    def physical_for(self, overlay_label: str) -> str:
        if overlay_label not in self.placement:
            raise MappingError(f"no placement for overlay node {overlay_label!r}")
        return self.placement[overlay_label]

    def __repr__(self) -> str:
        return f"Mapping({self.placement})"


def map_overlay(
    overlay: AndSpec,
    physical: PhysicalNet,
    host_pin: Optional[Dict[str, str]] = None,
) -> Mapping:
    """Map *overlay* onto *physical*; raises :class:`MappingError` if
    impossible.

    ``host_pin`` optionally fixes overlay-host -> physical-host choices;
    unpinned overlay hosts are matched by name if a physical node with
    the same name exists, else assigned greedily.
    """
    graph = physical.graph
    phys_hosts = physical.hosts()
    # Kernels can only be placed on programmable switches; plain
    # forwarders (fat-tree transit tiers) are path material, not targets.
    phys_switches = physical.pisa_switches()

    placement: Dict[str, str] = {}
    used_hosts = set()
    host_pin = dict(host_pin or {})
    for node in overlay.hosts:
        target = host_pin.get(node.label)
        if target is None and node.label in graph and graph.nodes[node.label]["kind"] == "host":
            target = node.label
        if target is None:
            free = [h for h in phys_hosts if h not in used_hosts]
            if not free:
                raise MappingError("not enough physical hosts for the overlay")
            target = free[0]
        if target not in graph or graph.nodes[target]["kind"] != "host":
            raise MappingError(f"{target!r} is not a physical host")
        if target in used_hosts:
            raise MappingError(f"physical host {target!r} assigned twice")
        placement[node.label] = target
        used_hosts.add(target)

    overlay_switches = [n.label for n in overlay.switches]
    if len(overlay_switches) > len(phys_switches):
        raise MappingError(
            f"overlay needs {len(overlay_switches)} switches but the physical "
            f"network has {len(phys_switches)}"
        )

    edges = list(overlay.edges)
    for candidate in permutations(phys_switches, len(overlay_switches)):
        trial = dict(placement)
        trial.update(zip(overlay_switches, candidate))
        paths = _check_edges(graph, edges, trial, set(candidate))
        if paths is not None:
            return Mapping(trial, paths)
    raise MappingError("no feasible placement of overlay switches found")


def _check_edges(
    graph: nx.Graph,
    edges: Sequence[Tuple[str, str]],
    placement: Dict[str, str],
    mapped_switches: set,
) -> Optional[Dict[Tuple[str, str], List[str]]]:
    paths: Dict[Tuple[str, str], List[str]] = {}
    for a, b in edges:
        src, dst = placement[a], placement[b]
        try:
            path = nx.shortest_path(graph, src, dst)
        except nx.NetworkXNoPath:
            return None
        # Interior nodes must not be other mapped switches (that would
        # interpose a kernel-running switch on a logical edge).
        for interior in path[1:-1]:
            if interior in mapped_switches:
                return None
        paths[(a, b)] = path
    return paths
