"""The physical fabric description (``FabricSpec``).

The AND (:mod:`repro.andspec.model`) describes *one application's*
functional overlay; a :class:`FabricSpec` describes the shared physical
substrate many such applications are deployed onto: switches with their
chip profiles, hosts, and links with their MTUs. It is the
deployment-time counterpart of the AND -- the whole-fabric static
analyzer (:mod:`repro.analysis.deploy`) admits N compiled programs onto
one fabric by checking their summed resource demands, isolation and
placement against this description.

Text format (one declaration per line, ``#`` comments)::

    switch sw0 profile=tofino-like
    switch sw1                      # profile defaults to bmv2
    host   worker0
    link   worker0 sw0 mtu=1500     # mtu defaults to 1500
    link   sw0 sw1 mtu=9000

The spec is serializable in both directions (:meth:`FabricSpec.render`
/ :func:`parse_fabric`, :meth:`FabricSpec.to_dict` /
:meth:`FabricSpec.from_dict`) and converts to the mapper's
:class:`repro.andspec.mapping.PhysicalNet` via
:meth:`FabricSpec.to_physical`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import AndError, SourceLocation

DEFAULT_MTU = 1500
DEFAULT_PROFILE = "bmv2"


class FabricNode:
    """One physical node: a host, or a switch with a chip profile."""

    __slots__ = ("name", "kind", "profile", "loc")

    def __init__(
        self,
        name: str,
        kind: str,
        profile: Optional[str] = None,
        loc: Optional[SourceLocation] = None,
    ) -> None:
        if kind not in ("host", "switch"):
            raise AndError(f"unknown fabric node kind {kind!r}")
        if kind == "host" and profile is not None:
            raise AndError(f"host {name!r} cannot carry a chip profile")
        self.name = name
        self.kind = kind
        #: chip profile name (switches only); resolved lazily so a spec
        #: can be parsed without importing the PISA architecture tables
        self.profile: Optional[str] = (
            (profile or DEFAULT_PROFILE) if kind == "switch" else None
        )
        #: declaration site in the fabric/deployment file, when parsed
        self.loc = loc

    @property
    def is_switch(self) -> bool:
        return self.kind == "switch"

    @property
    def is_host(self) -> bool:
        return self.kind == "host"

    def __repr__(self) -> str:
        prof = f" profile={self.profile}" if self.is_switch else ""
        return f"FabricNode({self.kind} {self.name}{prof})"


class FabricLink:
    """One physical link with its MTU (bytes of frame it can carry)."""

    __slots__ = ("a", "b", "mtu", "loc")

    def __init__(
        self,
        a: str,
        b: str,
        mtu: int = DEFAULT_MTU,
        loc: Optional[SourceLocation] = None,
    ) -> None:
        if mtu <= 0:
            raise AndError(f"link {a!r} -- {b!r}: mtu must be positive")
        self.a = a
        self.b = b
        self.mtu = int(mtu)
        self.loc = loc

    @property
    def key(self) -> Tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def __repr__(self) -> str:
        return f"FabricLink({self.a} -- {self.b}, mtu={self.mtu})"


class FabricSpec:
    """A parsed and validated physical fabric."""

    def __init__(self) -> None:
        self.nodes: Dict[str, FabricNode] = {}
        self.links: List[FabricLink] = []

    # -- construction -------------------------------------------------------

    def add_node(
        self,
        name: str,
        kind: str,
        profile: Optional[str] = None,
        loc: Optional[SourceLocation] = None,
    ) -> FabricNode:
        if name in self.nodes:
            raise AndError(f"duplicate fabric node {name!r}")
        node = FabricNode(name, kind, profile, loc)
        self.nodes[name] = node
        return node

    def add_host(
        self, name: str, loc: Optional[SourceLocation] = None
    ) -> FabricNode:
        return self.add_node(name, "host", loc=loc)

    def add_switch(
        self,
        name: str,
        profile: Optional[str] = None,
        loc: Optional[SourceLocation] = None,
    ) -> FabricNode:
        return self.add_node(name, "switch", profile, loc)

    def add_link(
        self,
        a: str,
        b: str,
        mtu: int = DEFAULT_MTU,
        loc: Optional[SourceLocation] = None,
    ) -> FabricLink:
        for name in (a, b):
            if name not in self.nodes:
                raise AndError(f"link references unknown fabric node {name!r}")
        if a == b:
            raise AndError(f"self-link on {a!r}")
        link = FabricLink(a, b, mtu, loc)
        if any(link.key == existing.key for existing in self.links):
            raise AndError(f"duplicate link {a!r} -- {b!r}")
        self.links.append(link)
        return link

    # -- queries -----------------------------------------------------------

    @property
    def hosts(self) -> List[FabricNode]:
        return [n for n in self.nodes.values() if n.is_host]

    @property
    def switches(self) -> List[FabricNode]:
        return [n for n in self.nodes.values() if n.is_switch]

    def node(self, name: str) -> FabricNode:
        if name not in self.nodes:
            raise AndError(f"unknown fabric node {name!r}")
        return self.nodes[name]

    def link_between(self, a: str, b: str) -> Optional[FabricLink]:
        key = (a, b) if a <= b else (b, a)
        for link in self.links:
            if link.key == key:
                return link
        return None

    def neighbors(self, name: str) -> List[str]:
        self.node(name)
        out: List[str] = []
        for link in self.links:
            if link.a == name:
                out.append(link.b)
            elif link.b == name:
                out.append(link.a)
        return out

    def switch_profile(self, name: str) -> "ArchProfile":
        """The resolved :class:`repro.pisa.arch.ArchProfile` of a switch."""
        from repro.pisa.arch import ArchProfile, profile_by_name

        node = self.node(name)
        if not node.is_switch:
            raise AndError(f"fabric node {name!r} is a host, not a switch")
        profile: ArchProfile = profile_by_name(node.profile)
        return profile

    def validate(self) -> None:
        if not self.nodes:
            raise AndError("empty fabric: no nodes declared")
        from repro.pisa.arch import PROFILES

        for node in self.switches:
            if node.profile not in PROFILES:
                raise AndError(
                    f"switch {node.name!r} names unknown chip profile "
                    f"{node.profile!r} (known: {', '.join(sorted(PROFILES))})"
                )

    def to_physical(self) -> "PhysicalNet":
        """The mapper's view of this fabric (a kind-attributed graph)."""
        from repro.andspec.mapping import PhysicalNet

        phys = PhysicalNet()
        for node in self.nodes.values():
            if node.is_host:
                phys.add_host(node.name)
            else:
                phys.add_switch(node.name)
        for link in self.links:
            phys.add_link(link.a, link.b)
        return phys

    # -- serialization ------------------------------------------------------

    def render(self) -> str:
        lines: List[str] = []
        for node in self.nodes.values():
            if node.is_switch:
                lines.append(f"switch {node.name} profile={node.profile}")
            else:
                lines.append(f"host   {node.name}")
        lines += [
            f"link   {link.a} {link.b} mtu={link.mtu}" for link in self.links
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (deterministically ordered)."""
        return {
            "hosts": sorted(n.name for n in self.hosts),
            "switches": [
                {"name": n.name, "profile": n.profile}
                for n in sorted(self.switches, key=lambda n: n.name)
            ],
            "links": [
                {"a": link.key[0], "b": link.key[1], "mtu": link.mtu}
                for link in sorted(self.links, key=lambda link: link.key)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FabricSpec":
        spec = cls()
        for name in data.get("hosts", []):  # type: ignore[union-attr]
            spec.add_host(str(name))
        for sw in data.get("switches", []):  # type: ignore[union-attr]
            spec.add_switch(str(sw["name"]), str(sw["profile"]))
        for ln in data.get("links", []):  # type: ignore[union-attr]
            spec.add_link(str(ln["a"]), str(ln["b"]), int(ln.get("mtu", DEFAULT_MTU)))
        return spec

    def __repr__(self) -> str:
        return (
            f"FabricSpec({len(self.hosts)} hosts, {len(self.switches)} "
            f"switches, {len(self.links)} links)"
        )


def parse_kv_options(
    parts: List[str], where: str, allowed: Tuple[str, ...]
) -> Dict[str, str]:
    """Parse trailing ``key=value`` options of one declaration line."""
    out: Dict[str, str] = {}
    for part in parts:
        if "=" not in part:
            raise AndError(f"{where}: expected key=value, got {part!r}")
        key, _, value = part.partition("=")
        if key not in allowed:
            raise AndError(
                f"{where}: unknown option {key!r} "
                f"(allowed: {', '.join(allowed)})"
            )
        if key in out:
            raise AndError(f"{where}: duplicate option {key!r}")
        out[key] = value
    return out


def fabric_lines(
    text: str, filename: str = "<fabric>"
) -> Iterator[Tuple[SourceLocation, List[str]]]:
    """Comment-stripped, tokenized declaration lines with locations."""
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        column = len(raw) - len(raw.lstrip()) + 1
        yield SourceLocation(filename, lineno, column), line.split()


def parse_fabric(text: str, filename: str = "<fabric>") -> FabricSpec:
    """Parse the fabric text format (``switch``/``host``/``link`` lines)."""
    spec = FabricSpec()
    pending: List[Tuple[SourceLocation, List[str]]] = []
    for loc, parts in fabric_lines(text, filename):
        kind = parts[0].lower()
        where = f"line {loc.line}"
        if kind in ("host", "switch"):
            if len(parts) < 2:
                raise AndError(f"{where}: expected '{kind} <name> [options]'")
            options = parse_kv_options(
                parts[2:], where, ("profile",) if kind == "switch" else ()
            )
            spec.add_node(parts[1], kind, options.get("profile"), loc)
        elif kind == "link":
            if len(parts) < 3:
                raise AndError(f"{where}: expected 'link <a> <b> [mtu=N]'")
            pending.append((loc, parts))
        else:
            raise AndError(f"{where}: unknown declaration {kind!r}")
    for loc, parts in pending:
        where = f"line {loc.line}"
        options = parse_kv_options(parts[3:], where, ("mtu",))
        try:
            mtu = int(options.get("mtu", DEFAULT_MTU))
        except ValueError:
            raise AndError(f"{where}: bad mtu {options['mtu']!r}") from None
        try:
            spec.add_link(parts[1], parts[2], mtu, loc)
        except AndError as exc:
            raise AndError(f"{where}: {exc}") from None
    spec.validate()
    return spec


# imported for typing only; kept at the bottom to avoid a hard import of
# networkx (via mapping) when only the spec itself is needed
from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from repro.andspec.mapping import PhysicalNet
    from repro.pisa.arch import ArchProfile
