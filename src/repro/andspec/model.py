"""The Abstract Network Description (AND).

The AND (paper S3.2) is a declarative overlay of the *functional
components* of an INC application: hosts and switches with label names,
and the logical connectivity between them. Kernels and switch memory are
pinned to AND labels via ``_at_("label")``; the runtime and the mapper
use the AND to place components onto physical devices.

Text format (one declaration per line, ``#`` comments)::

    host   worker0
    host   worker1
    switch s1
    link   worker0 s1
    link   worker1 s1

Node ids are assigned in declaration order and are the values the
``location`` struct and ``window.from`` expose in kernel code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import AndError


class AndNode:
    """One overlay node: a host or a switch, identified by its label."""

    __slots__ = ("label", "kind", "node_id")

    def __init__(self, label: str, kind: str, node_id: int) -> None:
        if kind not in ("host", "switch"):
            raise AndError(f"unknown AND node kind {kind!r}")
        self.label = label
        self.kind = kind
        self.node_id = node_id

    @property
    def is_switch(self) -> bool:
        return self.kind == "switch"

    @property
    def is_host(self) -> bool:
        return self.kind == "host"

    def __repr__(self) -> str:
        return f"AndNode({self.kind} {self.label}#{self.node_id})"


class AndSpec:
    """A parsed and validated AND."""

    def __init__(self) -> None:
        self.nodes: Dict[str, AndNode] = {}
        self.edges: List[Tuple[str, str]] = []

    # -- construction -------------------------------------------------------

    def add_node(self, label: str, kind: str) -> AndNode:
        if label in self.nodes:
            raise AndError(f"duplicate AND node {label!r}")
        node = AndNode(label, kind, len(self.nodes))
        self.nodes[label] = node
        return node

    def add_host(self, label: str) -> AndNode:
        return self.add_node(label, "host")

    def add_switch(self, label: str) -> AndNode:
        return self.add_node(label, "switch")

    def add_link(self, a: str, b: str) -> None:
        for label in (a, b):
            if label not in self.nodes:
                raise AndError(f"link references unknown node {label!r}")
        if a == b:
            raise AndError(f"self-link on {a!r}")
        key = (a, b) if a <= b else (b, a)
        if key in self._edge_set():
            raise AndError(f"duplicate link {a!r} -- {b!r}")
        self.edges.append(key)

    def _edge_set(self) -> Set[Tuple[str, str]]:
        return set(self.edges)

    # -- queries -----------------------------------------------------------

    @property
    def hosts(self) -> List[AndNode]:
        return [n for n in self.nodes.values() if n.is_host]

    @property
    def switches(self) -> List[AndNode]:
        return [n for n in self.nodes.values() if n.is_switch]

    def node(self, label: str) -> AndNode:
        if label not in self.nodes:
            raise AndError(f"unknown AND node {label!r}")
        return self.nodes[label]

    def label_ids(self) -> Dict[str, int]:
        """Label -> node id map used to resolve ``_locid`` and ``_at_``."""
        return {label: node.node_id for label, node in self.nodes.items()}

    def neighbors(self, label: str) -> List[str]:
        self.node(label)
        out = []
        for a, b in self.edges:
            if a == label:
                out.append(b)
            elif b == label:
                out.append(a)
        return out

    def validate(self, required_labels: Iterable[str] = ()) -> None:
        """Check structural sanity and that all ``_at_`` labels exist."""
        if not self.nodes:
            raise AndError("empty AND: no nodes declared")
        for label in required_labels:
            if label not in self.nodes:
                raise AndError(
                    f'_at_("{label}") does not name a node in the AND'
                )
            if not self.nodes[label].is_switch:
                raise AndError(
                    f'_at_("{label}") must name a switch, but {label!r} is a host'
                )
        if self.hosts and not self._connected():
            raise AndError("AND overlay is not connected")

    def _connected(self) -> bool:
        labels = list(self.nodes)
        if len(labels) <= 1:
            return True
        adjacency: Dict[str, List[str]] = {label: [] for label in labels}
        for a, b in self.edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        seen = {labels[0]}
        stack = [labels[0]]
        while stack:
            for nxt in adjacency[stack.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == len(labels)

    def render(self) -> str:
        lines = [f"{node.kind:6s} {node.label}" for node in self.nodes.values()]
        lines += [f"link   {a} {b}" for a, b in self.edges]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AndSpec({len(self.hosts)} hosts, {len(self.switches)} switches, "
            f"{len(self.edges)} links)"
        )


def parse_and(text: str) -> AndSpec:
    """Parse the AND text format."""
    spec = AndSpec()
    pending_links: List[Tuple[str, str, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0].lower()
        try:
            if kind in ("host", "switch"):
                if len(parts) != 2:
                    raise AndError(f"line {lineno}: expected '{kind} <label>'")
                spec.add_node(parts[1], kind)
            elif kind == "link":
                if len(parts) != 3:
                    raise AndError(f"line {lineno}: expected 'link <a> <b>'")
                pending_links.append((parts[1], parts[2], lineno))
            else:
                raise AndError(f"line {lineno}: unknown declaration {kind!r}")
        except AndError:
            raise
    for a, b, lineno in pending_links:
        try:
            spec.add_link(a, b)
        except AndError as exc:
            raise AndError(f"line {lineno}: {exc}") from None
    return spec
