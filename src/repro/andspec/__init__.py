"""Abstract Network Description: overlay model, parser, physical mapping."""

from repro.andspec.mapping import Mapping, PhysicalNet, map_overlay
from repro.andspec.model import AndNode, AndSpec, parse_and

__all__ = [
    "AndNode",
    "AndSpec",
    "Mapping",
    "PhysicalNet",
    "map_overlay",
    "parse_and",
]
