"""Abstract Network Description: overlay model, parser, physical mapping,
and the physical-fabric spec the deployment checker admits programs onto."""

from repro.andspec.fabric import FabricLink, FabricNode, FabricSpec, parse_fabric
from repro.andspec.mapping import Mapping, PhysicalNet, map_overlay
from repro.andspec.model import AndNode, AndSpec, parse_and

__all__ = [
    "AndNode",
    "AndSpec",
    "FabricLink",
    "FabricNode",
    "FabricSpec",
    "Mapping",
    "PhysicalNet",
    "map_overlay",
    "parse_and",
    "parse_fabric",
]
