"""The simulator's shared packet representation.

A :class:`Frame` pairs the raw wire bytes with a lazily-parsed,
cached header view (:func:`repro.ncp.wire.peek_frame`'s dict).  Every
component of the packet path -- links, switch nodes, the host runtime --
passes the *same* Frame object along, so a packet's NCP/IPv4 headers are
parsed at most once per packet instead of once per hop ("parse once,
route everywhere").

The raw bytes stay the public currency at the edges: host receiver
callbacks and Python switch programs still see ``bytes`` (``frame.data``
is handed over, identity-preserved), and anything that rewrites the
packet (a PISA pipeline, INT stamping) produces fresh bytes which are
wrapped into a fresh Frame.  :meth:`Frame.with_data` exists for the one
rewrite that provably leaves the headers intact -- appending or
stripping a trailer -- and carries the cached metadata across.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.ncp.wire import peek_frame

#: sentinel: header metadata not parsed yet (``None`` is a valid parse
#: result -- it marks a non-NCP frame)
_UNPARSED = object()


class Frame:
    """One in-flight packet: wire bytes + cached header metadata."""

    __slots__ = ("data", "_meta")

    def __init__(self, data: bytes, meta: object = _UNPARSED) -> None:
        self.data = data
        self._meta = meta

    @staticmethod
    def wrap(obj: Union[bytes, "Frame"]) -> "Frame":
        """Normalize bytes-or-Frame to a Frame (bytes are wrapped,
        Frames pass through so their cached metadata survives)."""
        if type(obj) is Frame:
            return obj
        return Frame(obj)  # type: ignore[arg-type]

    @property
    def meta(self) -> Optional[Dict[str, int]]:
        """The header-only NCP view (kernel/seq/from/src/dst), parsed on
        first access and cached; ``None`` for non-NCP frames."""
        meta = self._meta
        if meta is _UNPARSED:
            meta = peek_frame(self.data)
            self._meta = meta
        return meta  # type: ignore[return-value]

    def with_data(self, data: bytes) -> "Frame":
        """A new Frame around *data*, keeping this frame's cached
        metadata.  Only valid when the Ethernet/IPv4/UDP/NCP headers are
        unchanged (e.g. an INT trailer was appended or stripped)."""
        return Frame(data, self._meta)

    @property
    def size(self) -> int:
        return len(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        meta = self._meta
        if meta is _UNPARSED:
            return f"Frame({len(self.data)}B, unparsed)"
        if meta is None:
            return f"Frame({len(self.data)}B, non-NCP)"
        return (
            f"Frame({len(self.data)}B, k{meta['kernel']} seq={meta['seq']} "  # type: ignore[index]
            f"from={meta['from']} dst={meta['dst']})"  # type: ignore[index]
        )
