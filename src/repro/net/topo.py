"""Datacenter topology generators: k-ary fat-trees and leaf-spines.

A :class:`Topology` is a declarative description -- named hosts, switches
grouped into tiers, links with per-tier bandwidths -- that can be
realized three ways:

* :meth:`Topology.build` -> a live :class:`repro.net.network.Network`
  with :class:`ForwardingSwitchNode` transit switches (and, optionally,
  PISA switches on one tier, so compiled kernels run in the fabric);
* :meth:`Topology.to_physical` -> a
  :class:`repro.andspec.mapping.PhysicalNet` for the overlay mapper,
  with only the programmable tier marked as placement targets;
* :meth:`Topology.to_fabric` -> a
  :class:`repro.andspec.fabric.FabricSpec` for the deployment checker.

The ``oversubscription`` knob divides uplink bandwidth (edge->agg,
agg->core; leaf->spine) by the given factor, modelling the usual
tapered datacenter designs (1.0 = full bisection bandwidth).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.andspec.fabric import FabricSpec
    from repro.andspec.mapping import PhysicalNet
    from repro.net.network import Network
    from repro.net.node import HostNode
    from repro.obs.context import Observability
    from repro.pisa.switch_dev import PisaSwitch

#: tier name of the switches hosts plug into (the programmable tier by
#: default -- where the paper puts INC kernels)
EDGE_TIER = "edge"


class Topology:
    """A named topology: hosts, tiered switches, and links."""

    def __init__(self, name: str):
        self.name = name
        self.hosts: List[str] = []
        #: switch name -> tier ("edge" / "agg" / "core" / "leaf" / "spine")
        self.switch_tiers: Dict[str, str] = {}
        #: (a, b, bandwidth_bits_per_sec)
        self.links: List[Tuple[str, str, float]] = []

    # -- construction ------------------------------------------------------

    def add_host(self, name: str) -> None:
        self.hosts.append(name)

    def add_switch(self, name: str, tier: str) -> None:
        self.switch_tiers[name] = tier

    def add_link(self, a: str, b: str, bandwidth: float) -> None:
        self.links.append((a, b, bandwidth))

    def switches(self, tier: Optional[str] = None) -> List[str]:
        if tier is None:
            return list(self.switch_tiers)
        return [s for s, t in self.switch_tiers.items() if t == tier]

    # -- realizations ------------------------------------------------------

    def build(
        self,
        net: Optional["Network"] = None,
        obs: Optional["Observability"] = None,
        latency: float = 1e-6,
        pisa_factory: Optional[Callable[[str], "PisaSwitch"]] = None,
        pisa_tier: str = EDGE_TIER,
        ecmp: bool = True,
        queue_limit_bytes: Optional[int] = None,
        delivery_quantum: Optional[float] = None,
    ) -> "Network":
        """Realize the topology as a live simulated network.

        Hosts claim the low node ids (h0 -> id 0, ...) so application
        code can address them positionally.  Every switch is a plain
        :class:`ForwardingSwitchNode` unless ``pisa_factory`` is given,
        in which case switches on ``pisa_tier`` become PISA switches
        running the factory's program (one fresh device per switch).
        Routes are installed ECMP by default -- that is what spreads
        flows over a fat-tree's parallel paths.
        """
        from repro.net.network import Network

        if net is None:
            net = Network(obs=obs)
        for host in self.hosts:
            net.add_host(host)
        for switch, tier in self.switch_tiers.items():
            if pisa_factory is not None and tier == pisa_tier:
                net.add_pisa_switch(switch, pisa_factory(switch))
            else:
                net.add_forwarding_switch(switch)
        for seed, (a, b, bandwidth) in enumerate(self.links):
            net.add_link(
                a, b, latency=latency, bandwidth=bandwidth, seed=seed,
                queue_limit_bytes=queue_limit_bytes,
                delivery_quantum=delivery_quantum,
            )
        net.compute_routes(ecmp=ecmp)
        return net

    def to_physical(self, pisa_tier: str = EDGE_TIER) -> "PhysicalNet":
        """Expose the topology to the AND overlay mapper.  Only
        ``pisa_tier`` switches are kernel-placement targets; the rest are
        transit."""
        from repro.andspec.mapping import PhysicalNet

        phys = PhysicalNet()
        for host in self.hosts:
            phys.add_host(host)
        for switch, tier in self.switch_tiers.items():
            phys.add_switch(switch, pisa=(tier == pisa_tier))
        for a, b, _bandwidth in self.links:
            phys.add_link(a, b)
        return phys

    def to_fabric(
        self, profile: Optional[str] = None, mtu: Optional[int] = None
    ) -> "FabricSpec":
        """Expose the topology to the deployment checker as a fabric
        spec (every switch gets *profile*, default bmv2)."""
        from repro.andspec.fabric import DEFAULT_MTU, FabricSpec

        spec = FabricSpec()
        for host in self.hosts:
            spec.add_host(host)
        for switch in self.switch_tiers:
            spec.add_switch(switch, profile=profile)
        for a, b, _bandwidth in self.links:
            spec.add_link(a, b, mtu=mtu if mtu is not None else DEFAULT_MTU)
        return spec

    def __repr__(self) -> str:
        return (
            f"Topology({self.name}: {len(self.hosts)} hosts, "
            f"{len(self.switch_tiers)} switches, {len(self.links)} links)"
        )


def fat_tree(
    k: int,
    bandwidth: float = 10e9,
    oversubscription: float = 1.0,
) -> Topology:
    """The classic k-ary fat-tree (Al-Fares et al.): k pods, each with
    k/2 edge and k/2 aggregation switches, (k/2)^2 core switches, and
    k^3/4 hosts.  k=8 gives the paper-scale fabric: 128 hosts, 80
    switches, 384 links.

    Names: hosts ``h{i}`` (pod-major order), edge ``e{pod}_{i}``,
    aggregation ``a{pod}_{i}``, core ``c{group}_{i}`` where *group* is
    the aggregation index the core switch connects to in every pod.
    """
    if k < 2 or k % 2:
        raise SimulationError(f"fat-tree arity must be even and >= 2, got {k}")
    if oversubscription < 1.0:
        raise SimulationError("oversubscription factor must be >= 1.0")
    half = k // 2
    uplink = bandwidth * half / oversubscription
    topo = Topology(f"fat-tree-k{k}")
    for group in range(half):
        for i in range(half):
            topo.add_switch(f"c{group}_{i}", "core")
    host = 0
    for pod in range(k):
        for e in range(half):
            edge = f"e{pod}_{e}"
            topo.add_switch(edge, "edge")
            for _ in range(half):
                name = f"h{host}"
                topo.add_host(name)
                topo.add_link(name, edge, bandwidth)
                host += 1
        for a in range(half):
            agg = f"a{pod}_{a}"
            topo.add_switch(agg, "agg")
            for e in range(half):
                topo.add_link(f"e{pod}_{e}", agg, uplink)
            for i in range(half):
                topo.add_link(agg, f"c{a}_{i}", uplink)
    return topo


def leaf_spine(
    leaves: int,
    spines: int,
    hosts_per_leaf: int,
    bandwidth: float = 10e9,
    oversubscription: float = 1.0,
) -> Topology:
    """A two-tier leaf-spine Clos: every leaf connects to every spine.

    Names: hosts ``h{i}``, leaves ``l{i}``, spines ``s{i}``.  Uplink
    bandwidth is sized for full bisection (``hosts_per_leaf * bandwidth
    / spines``) divided by the oversubscription factor.
    """
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise SimulationError("leaf-spine dimensions must be positive")
    if oversubscription < 1.0:
        raise SimulationError("oversubscription factor must be >= 1.0")
    uplink = hosts_per_leaf * bandwidth / spines / oversubscription
    topo = Topology(f"leaf-spine-{leaves}x{spines}")
    for s in range(spines):
        topo.add_switch(f"s{s}", "spine")
    host = 0
    for leaf in range(leaves):
        name = f"l{leaf}"
        topo.add_switch(name, "leaf")
        for _ in range(hosts_per_leaf):
            topo.add_host(f"h{host}")
            topo.add_link(f"h{host}", name, bandwidth)
            host += 1
        for s in range(spines):
            topo.add_link(name, f"s{s}", uplink)
    return topo
