"""Network nodes: the common base, hosts, and switch wrappers."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union, TYPE_CHECKING

from repro.errors import SimulationError
from repro.net.frame import Frame

if TYPE_CHECKING:
    from repro.net.events import Simulator
    from repro.net.link import Link


class NodeStats:
    __slots__ = ("rx_frames", "rx_bytes", "tx_frames", "tx_bytes", "drops", "processed")

    def __init__(self) -> None:
        self.rx_frames = 0
        self.rx_bytes = 0
        self.tx_frames = 0
        self.tx_bytes = 0
        self.drops = 0
        self.processed = 0


class Node:
    """Base network node with numbered ports."""

    #: profiler component kind for schedule labels (see repro.obs.profile)
    PROF_KIND = "node"

    def __init__(self, name: str, node_id: int, sim: "Simulator"):
        self.name = name
        self.node_id = node_id
        self.sim = sim
        self.links: List["Link"] = []
        #: next-hop port by destination node id (installed at deploy time)
        self.routes: Dict[int, int] = {}
        self.stats = NodeStats()
        #: administrative state; frames transmitted by or delivered to a
        #: downed node drop with cause ``down`` (see Network.fail_switch)
        self.up = True
        #: schedule label for frame arrivals at this node -- the count of
        #: these events is the profiler's packets/sec numerator
        self.prof_rx_label = f"{self.PROF_KIND};{name};rx"

    def attach_link(self, link: "Link") -> int:
        self.links.append(link)
        return len(self.links) - 1

    def set_down(self) -> None:
        """Fail the node: it stops transmitting, and frames arriving at
        it (including ones already in flight) drop with cause ``down``."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def send(
        self, data: Union[bytes, Frame], port: int, earliest: float = 0.0
    ) -> None:
        if not 0 <= port < len(self.links):
            raise SimulationError(f"{self.name}: no port {port}")
        self.stats.tx_frames += 1
        self.stats.tx_bytes += len(data)
        self.links[port].transmit(self.sim, self, data, earliest=earliest)

    def send_toward(self, data: Union[bytes, Frame], dst_node_id: int) -> None:
        port = self.routes.get(dst_node_id)
        if port is None:
            raise SimulationError(
                f"{self.name}: no route toward node {dst_node_id}"
            )
        self.send(data, port)

    def handle_frame(self, frame: Union[bytes, Frame], in_port: int) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}#{self.node_id})"


class HostNode(Node):
    """An end host: delivers frames to a bound receiver callback.

    The libncrt host runtime binds :attr:`frame_receiver` (Frame in,
    keeping the cached header parse); plain callers bind
    :attr:`receiver` (bytes in). Frames arriving before either is bound
    are counted as drops (like an unbound UDP port).
    """

    PROF_KIND = "host"

    #: model of the host networking stack's per-frame processing delay
    PROCESS_DELAY = 2e-6

    def __init__(self, name: str, node_id: int, sim: "Simulator"):
        super().__init__(name, node_id, sim)
        self.receiver: Optional[Callable[[bytes], None]] = None
        #: preferred receiver: gets the Frame object itself, so the
        #: header parse cached along the packet path is reused
        self.frame_receiver: Optional[Callable[[Frame], None]] = None
        self._prof_deliver = f"host;{name};deliver"

    def handle_frame(self, frame: Union[bytes, Frame], in_port: int) -> None:
        frame = Frame.wrap(frame)
        self.stats.rx_frames += 1
        self.stats.rx_bytes += len(frame)
        obs = self.sim.obs
        frame_receiver = self.frame_receiver
        receiver = self.receiver
        if frame_receiver is None and receiver is None:
            self.stats.drops += 1
            if obs.enabled:
                obs.tracer.instant(
                    "drop", self.sim.now(), track=f"host {self.name}", cat="host",
                    args={"cause": "no-receiver", "bytes": len(frame)},
                )
            return
        if obs.enabled:
            args = {"bytes": len(frame)}
            meta = frame.meta
            if meta is not None:
                args.update(kernel=meta["kernel"], seq=meta["seq"], **{"from": meta["from"]})
            obs.tracer.span(
                "deliver", self.sim.now(), self.PROCESS_DELAY,
                track=f"host {self.name}", cat="host", args=args,
            )
        if frame_receiver is not None:
            self.sim.schedule(
                self.PROCESS_DELAY, lambda: frame_receiver(frame),
                label=self._prof_deliver,
            )
        else:
            data = frame.data
            self.sim.schedule(
                self.PROCESS_DELAY, lambda: receiver(data), label=self._prof_deliver
            )

    def transmit(self, data: Union[bytes, Frame], dst_node_id: int) -> None:
        """Send a frame toward a destination (single-homed hosts just use
        their uplink)."""
        self.stats.processed += 1
        if dst_node_id in self.routes:
            self.send_toward(data, dst_node_id)
        elif len(self.links) == 1:
            self.send(data, 0)
        else:
            raise SimulationError(
                f"{self.name}: multi-homed host needs a route to {dst_node_id}"
            )


class PythonSwitchNode(Node):
    """A switch running an arbitrary Python data-plane function.

    Used by the hand-written baselines (e.g. the Fig 1b NetCache sketch)
    and by tests. The function receives (data, in_port, node) and returns
    a list of (out_port, data) transmissions; out_port -1 broadcasts to
    every port except the ingress.
    """

    PROF_KIND = "switch"

    PIPELINE_DELAY = 1e-6

    def __init__(
        self,
        name: str,
        node_id: int,
        sim: "Simulator",
        program: Callable[[bytes, int, "PythonSwitchNode"], List],
    ):
        super().__init__(name, node_id, sim)
        self.program = program
        self._prof_program = f"switch;{name};program"

    def handle_frame(self, frame: Union[bytes, Frame], in_port: int) -> None:
        frame = Frame.wrap(frame)
        self.stats.rx_frames += 1
        self.stats.rx_bytes += len(frame)
        self.stats.processed += 1
        data = frame.data

        def run() -> None:
            outputs = self.program(data, in_port, self)
            for out_port, out_data in outputs:
                if out_port == -1:
                    for port in range(len(self.links)):
                        if port != in_port:
                            self.send(out_data, port)
                else:
                    self.send(out_data, out_port)

        self.sim.schedule(self.PIPELINE_DELAY, run, label=self._prof_program)


class ForwardingSwitchNode(Node):
    """A plain L3 forwarder: routes on the frame's destination node id.

    This is the transit tier of generated fabrics (aggregation/core in a
    fat-tree, spines in a leaf-spine): no P4 pipeline, no per-packet
    Python program -- just a route-table lookup on the cached header
    parse and a transmit.  Forwarding is *inline*: instead of scheduling
    a pipeline event per packet, the fixed :attr:`PIPELINE_DELAY` is
    folded into the egress link's serialization start time (the
    ``earliest`` floor), which removes one scheduler event per hop on
    the fabric fast path while keeping per-packet timing identical.
    """

    PROF_KIND = "switch"

    PIPELINE_DELAY = 1e-6

    def __init__(self, name: str, node_id: int, sim: "Simulator"):
        super().__init__(name, node_id, sim)
        self._prof_drop = f"switch {name}"

    def handle_frame(self, frame: Union[bytes, Frame], in_port: int) -> None:
        frame = Frame.wrap(frame)
        stats = self.stats
        stats.rx_frames += 1
        stats.rx_bytes += len(frame.data)
        stats.processed += 1
        meta = frame.meta
        port = None if meta is None else self.routes.get(meta["dst"])
        if port is None:
            stats.drops += 1
            obs = self.sim.obs
            if obs.enabled:
                args = {"cause": "route-miss", "bytes": len(frame.data)}
                if meta is not None:
                    args["dst"] = meta["dst"]
                obs.tracer.instant(
                    "drop", self.sim.now(), track=self._prof_drop,
                    cat="switch", args=args,
                )
            return
        self.send(frame, port, earliest=self.sim.now() + self.PIPELINE_DELAY)
