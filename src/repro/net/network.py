"""The simulated network: topology construction, routing, statistics."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import SimulationError
from repro.andspec.mapping import PhysicalNet
from repro.net.events import Simulator
from repro.net.link import Link
from repro.net.node import ForwardingSwitchNode, HostNode, Node, PythonSwitchNode
from repro.net.pisanode import PisaSwitchNode
from repro.obs.context import Observability
from repro.obs.netmetrics import collect_network_metrics
from repro.pisa.switch_dev import PisaSwitch

#: default link parameters (10 GbE, 1 us propagation)
DEFAULT_BANDWIDTH = 10e9
DEFAULT_LATENCY = 1e-6


class Network:
    """A concrete simulated network of hosts and switches.

    Pass an :class:`~repro.obs.Observability` to trace the run and have
    the network register itself as a metrics collector; without one the
    simulation runs on the no-op fast path.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        obs: Optional[Observability] = None,
    ):
        self.sim = sim or Simulator()
        if obs is not None:
            self.sim.obs = obs
            if obs.enabled:
                obs.registry.register_collector(
                    lambda reg: collect_network_metrics(self, reg)
                )
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self._by_id: Dict[int, Node] = {}
        self._next_id = 0

    # -- construction -----------------------------------------------------------

    def _claim_id(self, node_id: Optional[int]) -> int:
        if node_id is None:
            node_id = self._next_id
        self._next_id = max(self._next_id, node_id + 1)
        return node_id

    def _register(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise SimulationError(f"duplicate node name {node.name!r}")
        if node.node_id in self._by_id:
            raise SimulationError(f"duplicate node id {node.node_id}")
        self.nodes[node.name] = node
        self._by_id[node.node_id] = node
        return node

    def add_host(self, name: str, node_id: Optional[int] = None) -> HostNode:
        host = HostNode(name, self._claim_id(node_id), self.sim)
        self._register(host)
        return host

    def add_pisa_switch(
        self, name: str, switch: PisaSwitch, node_id: Optional[int] = None
    ) -> PisaSwitchNode:
        node = PisaSwitchNode(name, self._claim_id(node_id), self.sim, switch)
        self._register(node)
        return node

    def add_python_switch(
        self, name: str, program: Callable, node_id: Optional[int] = None
    ) -> PythonSwitchNode:
        node = PythonSwitchNode(name, self._claim_id(node_id), self.sim, program)
        self._register(node)
        return node

    def add_forwarding_switch(
        self, name: str, node_id: Optional[int] = None
    ) -> ForwardingSwitchNode:
        """A plain (non-programmable) L3 forwarder -- the transit tier of
        generated datacenter fabrics."""
        node = ForwardingSwitchNode(name, self._claim_id(node_id), self.sim)
        self._register(node)
        return node

    def add_link(
        self,
        a: str,
        b: str,
        latency: float = DEFAULT_LATENCY,
        bandwidth: float = DEFAULT_BANDWIDTH,
        loss: float = 0.0,
        seed: int = 0,
        queue_limit_bytes: Optional[int] = None,
        delivery_quantum: Optional[float] = None,
    ) -> Link:
        if a not in self.nodes or b not in self.nodes:
            raise SimulationError(f"link endpoints must exist: {a!r}, {b!r}")
        link = Link(
            self.nodes[a], self.nodes[b], latency, bandwidth, loss, seed,
            queue_limit_bytes=queue_limit_bytes,
            delivery_quantum=delivery_quantum,
        )
        self.links.append(link)
        return link

    def link_between(self, a: str, b: str) -> Link:
        """The (first) link whose endpoints are named *a* and *b*."""
        for link in self.links:
            if {link.a.name, link.b.name} == {a, b}:
                return link
        raise SimulationError(f"no link between {a!r} and {b!r}")

    def fail_link(self, a: str, b: str, at: Optional[float] = None) -> Link:
        """Inject a link failure: immediately, or at virtual time ``at``
        (scheduled on the simulator, so the failure lands
        deterministically mid-run)."""
        link = self.link_between(a, b)
        if at is None:
            link.set_down()
        else:
            self.sim.schedule_at(
                at, link.set_down, label=f"link;{a}<->{b};fail"
            )
        return link

    def fail_switch(self, name: str, at: Optional[float] = None) -> Node:
        """Fail a node: it stops transmitting, and frames arriving at it
        -- including frames already in flight on its links -- drop with
        cause ``down``.  Immediate, or scheduled at virtual time ``at``."""
        node = self.nodes.get(name)
        if node is None:
            raise SimulationError(f"no node named {name!r}")
        if at is None:
            node.set_down()
        else:
            self.sim.schedule_at(at, node.set_down, label=f"node;{name};fail")
        return node

    # -- routing -------------------------------------------------------------------

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        for node in self.nodes.values():
            g.add_node(node.name, kind="host" if isinstance(node, HostNode) else "switch")
        for link in self.links:
            g.add_edge(link.a.name, link.b.name, link=link)
        return g

    def compute_routes(self, ecmp: bool = False) -> None:
        """Install next-hop routes (and P4 route entries on PISA switches)
        for every node pair, via shortest paths.

        With ``ecmp=True``, every equal-cost next hop is considered and
        one is picked per (src, dst) pair by a deterministic hash -- the
        flow-level spreading a fat-tree needs so its core links all carry
        traffic.  The choice depends only on the node-id pair, so routes
        are identical across runs and schedulers.
        """
        g = self.graph()
        if not ecmp:
            for src_name, src in self.nodes.items():
                paths = nx.single_source_shortest_path(g, src_name)
                for dst_name, path in paths.items():
                    if dst_name == src_name or len(path) < 2:
                        continue
                    dst = self.nodes[dst_name]
                    next_hop = self.nodes[path[1]]
                    port = self._port_toward(src, next_hop)
                    self._install(src, dst, port)
            return
        dist = dict(nx.all_pairs_shortest_path_length(g))
        for src_name, src in self.nodes.items():
            dist_from_src = dist[src_name]
            neighbors = sorted(g.neighbors(src_name))
            for dst_name, dst in self.nodes.items():
                if dst_name == src_name:
                    continue
                d = dist_from_src.get(dst_name)
                if d is None:
                    continue
                # Every neighbor one step closer to dst is an equal-cost
                # next hop; hash the (src, dst) id pair over them.
                next_hops = [
                    n for n in neighbors if dist[n].get(dst_name) == d - 1
                ]
                if not next_hops:
                    continue
                pick = next_hops[
                    (src.node_id * 2654435761 + dst.node_id * 40503)
                    % len(next_hops)
                ]
                port = self._port_toward(src, self.nodes[pick])
                self._install(src, dst, port)

    def _install(self, src: Node, dst: Node, port: int) -> None:
        if isinstance(src, PisaSwitchNode):
            src.install_route(dst.node_id, port)
        else:
            src.routes[dst.node_id] = port

    def _port_toward(self, node: Node, neighbor: Node) -> int:
        for port, link in enumerate(node.links):
            if link.other(node) is neighbor:
                return port
        raise SimulationError(f"{node.name} has no link to {neighbor.name}")

    # -- queries ---------------------------------------------------------------------

    def host(self, name: str) -> HostNode:
        node = self.nodes.get(name)
        if not isinstance(node, HostNode):
            raise SimulationError(f"{name!r} is not a host")
        return node

    def node_by_id(self, node_id: int) -> Node:
        node = self._by_id.get(node_id)
        if node is None:
            raise SimulationError(f"no node with id {node_id}")
        return node

    def to_physical(self) -> PhysicalNet:
        """Expose the topology to the AND mapper."""
        phys = PhysicalNet()
        for node in self.nodes.values():
            if isinstance(node, HostNode):
                phys.add_host(node.name)
            else:
                # Plain forwarders can't host kernels; everything else
                # (PISA and Python switches) is a placement target.
                phys.add_switch(
                    node.name, pisa=not isinstance(node, ForwardingSwitchNode)
                )
        for link in self.links:
            phys.add_link(link.a.name, link.b.name)
        return phys

    def total_bytes_on_links(self) -> int:
        return sum(link.stats.bytes for link in self.links)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until)


def star_network(
    n_hosts: int,
    make_switch: Callable[[Network], Node],
    bandwidth: float = DEFAULT_BANDWIDTH,
    latency: float = DEFAULT_LATENCY,
) -> Tuple[Network, List[HostNode]]:
    """Hosts around one ToR switch -- the Fig 4 AllReduce topology."""
    net = Network()
    hosts = [net.add_host(f"h{i}") for i in range(n_hosts)]
    switch = make_switch(net)
    for host in hosts:
        net.add_link(host.name, switch.name, latency=latency, bandwidth=bandwidth)
    net.compute_routes()
    return net, hosts
