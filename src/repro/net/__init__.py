"""Discrete-event network simulator: hosts, links, PISA switch nodes."""

from repro.net.events import Simulator
from repro.net.link import Link
from repro.net.network import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Network, star_network
from repro.net.node import HostNode, Node, PythonSwitchNode
from repro.net.pisanode import PisaSwitchNode

__all__ = [
    "DEFAULT_BANDWIDTH",
    "DEFAULT_LATENCY",
    "HostNode",
    "Link",
    "Network",
    "Node",
    "PisaSwitchNode",
    "PythonSwitchNode",
    "Simulator",
    "star_network",
]
