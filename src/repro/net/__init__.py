"""Discrete-event network simulator: hosts, links, PISA switch nodes."""

from repro.net.events import SCHEDULERS, Simulator, Timer, default_scheduler
from repro.net.frame import Frame
from repro.net.link import Link
from repro.net.network import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Network, star_network
from repro.net.node import ForwardingSwitchNode, HostNode, Node, PythonSwitchNode
from repro.net.pisanode import PisaSwitchNode
from repro.net.topo import Topology, fat_tree, leaf_spine

__all__ = [
    "DEFAULT_BANDWIDTH",
    "DEFAULT_LATENCY",
    "ForwardingSwitchNode",
    "Frame",
    "HostNode",
    "Link",
    "Network",
    "Node",
    "PisaSwitchNode",
    "PythonSwitchNode",
    "SCHEDULERS",
    "Simulator",
    "Timer",
    "Topology",
    "default_scheduler",
    "fat_tree",
    "leaf_spine",
    "star_network",
]
