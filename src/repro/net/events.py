"""Discrete-event simulation core."""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.context import NULL_OBS


class Simulator:
    """A minimal discrete-event scheduler.

    Events are (time, tiebreak-seq, label, callback) entries on a heap;
    the tiebreak keeps simultaneous events in schedule order, which
    makes runs fully deterministic. The *label* (optional, supplied by
    the scheduling site as ``"component;instance;handler"``) is what the
    continuous profiler attributes wall time to.

    The simulator also carries the run's observability context
    (:attr:`obs`, default :data:`~repro.obs.context.NULL_OBS`): every
    component that can reach the simulator reaches tracing and metrics
    the same way, and the virtual clock is the one clock traces use.
    When the context carries a profiler or a time-series sampler, the
    run loop switches to an instrumented variant; without them it is the
    same tight loop as always, so disabled-observability numbers stay
    the real numbers.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Optional[str], Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_processed = 0
        self.obs = NULL_OBS

    def now(self) -> float:
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._seq), label, callback)
        )

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        heapq.heappush(self._queue, (when, next(self._seq), label, callback))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally up to simulated time *until*).

        Returns the simulation time when processing stopped.
        """
        obs = self.obs
        profiler = obs.profiler if obs.enabled else None
        sampler = obs.sampler if obs.enabled else None
        if profiler is None and sampler is None:
            now = self._run_fast(until, max_events)
        else:
            now = self._run_instrumented(until, max_events, profiler, sampler)
        if obs.enabled:
            # IO-only flush: streamed trace shards are durable at every
            # run boundary. Never drains the trace sampler -- a caller
            # may run() again (retransmits) and in-flight windows must
            # stay promotable.
            obs.tracer.flush()
        return now

    def _run_fast(self, until: Optional[float], max_events: int) -> float:
        processed = 0
        while self._queue:
            when, _, _, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            callback()
            processed += 1
            self.events_processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events (livelock?)"
                )
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def _run_instrumented(
        self, until: Optional[float], max_events: int, profiler, sampler
    ) -> float:
        """The same loop with wall-time attribution per event (profiler)
        and virtual-clock boundary sampling (time-series sampler)."""
        processed = 0
        loop_t0 = perf_counter()
        try:
            while self._queue:
                when, _, label, callback = self._queue[0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._queue)
                if sampler is not None:
                    # Boundaries at or before this event's time sample the
                    # state *before* the event runs, so identical runs
                    # sample identical states.
                    sampler.advance(when)
                self._now = when
                if profiler is not None:
                    t0 = perf_counter()
                    callback()
                    profiler.record(label, callback, when, perf_counter() - t0)
                else:
                    callback()
                processed += 1
                self.events_processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events (livelock?)"
                    )
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            if profiler is not None:
                profiler.add_loop_wall(perf_counter() - loop_t0)

    def run_until_idle(self) -> float:
        return self.run()

    def step(self) -> bool:
        """Process exactly one event. Returns False when the queue is empty
        (used by blocking host APIs that co-simulate the network)."""
        if not self._queue:
            return False
        obs = self.obs
        profiler = obs.profiler if obs.enabled else None
        sampler = obs.sampler if obs.enabled else None
        when, _, label, callback = heapq.heappop(self._queue)
        if sampler is not None:
            sampler.advance(when)
        self._now = when
        if profiler is not None:
            t0 = perf_counter()
            callback()
            profiler.record(label, callback, when, perf_counter() - t0)
        else:
            callback()
        self.events_processed += 1
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)
