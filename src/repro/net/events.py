"""Discrete-event simulation core."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.context import NULL_OBS


class Simulator:
    """A minimal discrete-event scheduler.

    Events are (time, tiebreak-seq, callback) triples on a heap; the
    tiebreak keeps simultaneous events in schedule order, which makes
    runs fully deterministic.

    The simulator also carries the run's observability context
    (:attr:`obs`, default :data:`~repro.obs.context.NULL_OBS`): every
    component that can reach the simulator reaches tracing and metrics
    the same way, and the virtual clock is the one clock traces use.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_processed = 0
        self.obs = NULL_OBS

    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        heapq.heappush(self._queue, (when, next(self._seq), callback))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally up to simulated time *until*).

        Returns the simulation time when processing stopped.
        """
        processed = 0
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            callback()
            processed += 1
            self.events_processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events (livelock?)"
                )
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_until_idle(self) -> float:
        return self.run()

    def step(self) -> bool:
        """Process exactly one event. Returns False when the queue is empty
        (used by blocking host APIs that co-simulate the network)."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self._now = when
        callback()
        self.events_processed += 1
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)
