"""Discrete-event simulation core.

Two interchangeable schedulers live behind one :class:`Simulator` API:

* ``"wheel"`` (default) -- a calendar queue / timing wheel tuned for
  datacenter-scale runs with very large pending-event populations.
  Events are hashed into fixed-width time slots; each slot's bucket is
  kept sorted by C-level :func:`bisect.insort`, the set of occupied
  slots is a small heap of slot numbers, and events beyond the wheel
  horizon wait in an overflow heap that is drained bucket by bucket.
  Every operation touches a tiny, cache-resident bucket instead of a
  multi-megabyte binary heap, which is where the measured speedup at
  1M+ pending events comes from (see ``docs/SIMULATOR.md``).
* ``"heap"`` -- the original heapq-of-records scheduler, kept as the
  differential reference: the test suite proves both modes dispatch in
  byte-identical order.

Both modes share one event-record representation -- a slab-recycled
4-slot list ``[when, seq, label, callback]`` -- and one total dispatch
order, ``(when, seq)``: the monotone slot function of the wheel can
never reorder records across slots, and records that share a slot are
kept ``(when, seq)``-sorted, so the wheel's dispatch order equals the
heap's.  ``seq`` is unique per record, so comparisons never reach the
label/callback fields.

Cancellation is lazy: :meth:`Simulator.schedule_cancellable` returns a
:class:`Timer` whose :meth:`~Timer.cancel` nulls the record's callback
in place; every pop path (``run``, ``run_until_idle``, ``step``) skips
such tombstones without dispatching them.  Records are recycled through
a bounded freelist after they are consumed; a :class:`Timer` validates
the record's sequence number before cancelling, so a stale handle to a
recycled record is a safe no-op.

The simulator also carries the run's observability context
(:attr:`obs`, default :data:`~repro.obs.context.NULL_OBS`): every
component that can reach the simulator reaches tracing and metrics the
same way, and the virtual clock is the one clock traces use.  When the
context carries a profiler or a time-series sampler, the run loop
switches to an instrumented variant; without them it is a tight
uninstrumented loop, so disabled-observability numbers stay the real
numbers.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from time import perf_counter
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.obs.context import NULL_OBS

#: wheel geometry defaults: 256 ns slots x 32768 slots = an 8.4 ms
#: horizon.  Narrower than any modelled delay (the smallest standing
#: delay in the simulator is the 1 us switch pipeline), so a callback
#: almost never schedules into the slot being drained; wide enough that
#: microsecond-spaced packet events share buckets.
DEFAULT_SLOT_WIDTH = 256e-9
DEFAULT_WHEEL_SLOTS = 32768

#: consumed event records kept for reuse (the "slab"); bounds retained
#: memory after a burst while still absorbing steady-state churn
_FREELIST_MAX = 65536

SCHEDULERS = ("wheel", "heap")


def default_scheduler() -> str:
    """Scheduler mode used by ``Simulator()``: the ``REPRO_SCHED``
    environment variable (``wheel``/``heap``) or ``wheel``."""
    mode = os.environ.get("REPRO_SCHED", "wheel")
    if mode not in SCHEDULERS:
        raise SimulationError(
            f"REPRO_SCHED={mode!r}: unknown scheduler (use one of {SCHEDULERS})"
        )
    return mode


class Timer:
    """A cancellation handle for one scheduled event.

    Holds the live record plus the sequence number it was issued for;
    cancelling is a no-op once the event has fired (or if the record
    slab has already recycled the record for a newer event).
    """

    __slots__ = ("_sim", "_rec", "_seq")

    def __init__(self, sim: "Simulator", rec: List[object], seq: int) -> None:
        self._sim = sim
        self._rec = rec
        self._seq = seq

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not
        cancelled)."""
        rec = self._rec
        return rec[1] == self._seq and rec[3] is not None

    def cancel(self) -> bool:
        """Lazily cancel the event: the record stays queued as a
        tombstone and is skipped (never dispatched) by every pop path.
        Returns True if this call cancelled it, False if the event
        already fired or was already cancelled."""
        rec = self._rec
        if rec[1] != self._seq or rec[3] is None:
            return False
        rec[3] = None
        self._sim._cancelled += 1
        return True

    def __repr__(self) -> str:
        state = "active" if self.active else "dead"
        return f"Timer(seq={self._seq}, {state})"


class Simulator:
    """A deterministic discrete-event scheduler with two modes.

    Events are ``[time, tiebreak-seq, label, callback]`` records; the
    tiebreak keeps simultaneous events in schedule order, which makes
    runs fully deterministic, and is identical across the ``wheel`` and
    ``heap`` modes.  The *label* (optional, supplied by the scheduling
    site as ``"component;instance;handler"``) is what the continuous
    profiler attributes wall time to.
    """

    def __init__(
        self,
        scheduler: Optional[str] = None,
        slot_width: float = DEFAULT_SLOT_WIDTH,
        wheel_slots: int = DEFAULT_WHEEL_SLOTS,
    ) -> None:
        if scheduler is None:
            scheduler = default_scheduler()
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r} (use one of {SCHEDULERS})"
            )
        if slot_width <= 0:
            raise SimulationError("slot_width must be positive")
        if wheel_slots < 2 or wheel_slots & (wheel_slots - 1):
            raise SimulationError("wheel_slots must be a power of two >= 2")
        self.scheduler = scheduler
        self._now = 0.0
        self._seq = 0
        self._cancelled = 0
        self.events_processed = 0
        self.obs = NULL_OBS
        #: slab of consumed records available for reuse
        self._free: List[List[object]] = []
        if scheduler == "heap":
            self._queue: List[List[object]] = []
        else:
            self._inv_width = 1.0 / slot_width
            self._nslots = wheel_slots
            self._mask = wheel_slots - 1
            self._buckets: List[List[List[object]]] = [
                [] for _ in range(wheel_slots)
            ]
            #: occupied absolute slot numbers (min-heap)
            self._slot_heap: List[int] = []
            #: records at or beyond the horizon (min-heap)
            self._overflow: List[List[object]] = []
            #: slots < horizon live in the wheel, the rest overflow
            self._horizon = wheel_slots
            #: the bucket currently being drained, consumed by index so
            #: same-slot arrivals can be merged in front of the cursor
            self._cur: List[List[object]] = []
            self._cur_i = 0
            self._cur_slot = -1

    def now(self) -> float:
        return self._now

    # -- scheduling ---------------------------------------------------------

    def _record(
        self, when: float, label: Optional[str], callback: Callable[[], None]
    ) -> List[object]:
        self._seq += 1
        free = self._free
        if free:
            rec = free.pop()
            rec[0] = when
            rec[1] = self._seq
            rec[2] = label
            rec[3] = callback
            return rec
        return [when, self._seq, label, callback]

    def _enqueue(self, rec: List[object]) -> None:
        if self.scheduler == "heap":
            heappush(self._queue, rec)
            return
        when: float = rec[0]  # type: ignore[assignment]
        slot = int(when * self._inv_width)
        if slot <= self._cur_slot:
            # Lands in (or before) the slot being drained: merge ahead
            # of the cursor so it still dispatches in (when, seq) order.
            insort(self._cur, rec, lo=self._cur_i)
        elif slot < self._horizon:
            bucket = self._buckets[slot & self._mask]
            if bucket:
                insort(bucket, rec)
            else:
                heappush(self._slot_heap, slot)
                bucket.append(rec)
        else:
            heappush(self._overflow, rec)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        self._enqueue(self._record(self._now + delay, label, callback))

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        self._enqueue(self._record(when, label, callback))

    def schedule_cancellable(
        self,
        delay: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> Timer:
        """Like :meth:`schedule`, returning a :class:`Timer` handle that
        can lazily cancel the event (used for timeouts that are almost
        always cancelled)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        rec = self._record(self._now + delay, label, callback)
        self._enqueue(rec)
        return Timer(self, rec, rec[1])  # type: ignore[arg-type]

    def cancel(self, timer: Timer) -> bool:
        """Cancel a :class:`Timer` (equivalent to ``timer.cancel()``)."""
        return timer.cancel()

    # -- bookkeeping --------------------------------------------------------

    def _retire(self, rec: List[object]) -> None:
        """Return a consumed record to the slab.  The callback slot is
        nulled so a stale :class:`Timer` sees the event as dead (and so
        the slab does not pin closures or frame payloads alive)."""
        free = self._free
        if len(free) < _FREELIST_MAX:
            rec[3] = None
            free.append(rec)

    @property
    def pending(self) -> int:
        """Live (scheduled, not yet fired, not cancelled) events."""
        return self._seq - self.events_processed - self._cancelled

    # -- wheel internals ----------------------------------------------------

    def _pull_overflow(self, horizon: int) -> None:
        """Move overflow records whose slot is below *horizon* into the
        wheel (heap order makes the pull deterministic)."""
        overflow = self._overflow
        inv = self._inv_width
        buckets = self._buckets
        mask = self._mask
        slot_heap = self._slot_heap
        while overflow and int(overflow[0][0] * inv) < horizon:  # type: ignore[operator]
            rec = heappop(overflow)
            slot = int(rec[0] * inv)  # type: ignore[operator]
            bucket = buckets[slot & mask]
            if bucket:
                insort(bucket, rec)
            else:
                heappush(slot_heap, slot)
                bucket.append(rec)
        self._horizon = horizon

    def _load_next_bucket(self) -> bool:
        """Make the next occupied bucket current; False when the wheel
        (including overflow) is empty."""
        slot_heap = self._slot_heap
        buckets = self._buckets
        mask = self._mask
        while True:
            while slot_heap:
                slot = slot_heap[0]
                bucket = buckets[slot & mask]
                if not bucket:
                    heappop(slot_heap)
                    continue
                heappop(slot_heap)
                # The just-drained current bucket (emptied by
                # _finish_bucket) becomes the wheel's replacement list:
                # bucket containers recycle with zero allocation.
                buckets[slot & mask] = self._cur
                self._cur = bucket
                self._cur_i = 0
                self._cur_slot = slot
                new_horizon = slot + self._nslots
                if self._overflow and int(
                    self._overflow[0][0] * self._inv_width  # type: ignore[operator]
                ) < new_horizon:
                    self._pull_overflow(new_horizon)
                else:
                    self._horizon = new_horizon
                return True
            if not self._overflow:
                return False
            # Only far-future events remain: re-base the wheel on the
            # earliest of them and pull a horizon's worth in.
            base = int(self._overflow[0][0] * self._inv_width)  # type: ignore[operator]
            self._pull_overflow(base + self._nslots)

    def _finish_bucket(self, cur: List[List[object]]) -> None:
        del cur[:]
        self._cur_i = 0

    # -- run loops ----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally up to simulated time *until*).

        Returns the simulation time when processing stopped.
        """
        obs = self.obs
        profiler = obs.profiler if obs.enabled else None
        sampler = obs.sampler if obs.enabled else None
        if profiler is None and sampler is None:
            if self.scheduler == "heap":
                now = self._run_heap_fast(until, max_events)
            else:
                now = self._run_wheel_fast(until, max_events)
        else:
            now = self._run_instrumented(until, max_events, profiler, sampler)
        if obs.enabled:
            # IO-only flush: streamed trace shards are durable at every
            # run boundary. Never drains the trace sampler -- a caller
            # may run() again (retransmits) and in-flight windows must
            # stay promotable.
            obs.tracer.flush()
        return now

    def _run_heap_fast(self, until: Optional[float], max_events: int) -> float:
        queue = self._queue
        processed = 0
        while queue:
            rec = queue[0]
            if until is not None and rec[0] > until:  # type: ignore[operator]
                self._now = until
                return self._now
            heappop(queue)
            callback = rec[3]
            if callback is None:
                self._retire(rec)
                continue
            self._now = rec[0]  # type: ignore[assignment]
            self._retire(rec)
            callback()  # type: ignore[operator]
            processed += 1
            self.events_processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events (livelock?)"
                )
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def _run_wheel_fast(self, until: Optional[float], max_events: int) -> float:
        processed = 0
        retire = self._retire
        while True:
            cur = self._cur
            i = self._cur_i
            if until is None:
                # The hot loop: no per-event until checks.
                while i < len(cur):
                    rec = cur[i]
                    i += 1
                    self._cur_i = i
                    callback = rec[3]
                    if callback is None:
                        retire(rec)
                        continue
                    self._now = rec[0]  # type: ignore[assignment]
                    retire(rec)
                    callback()  # type: ignore[operator]
                    processed += 1
                    self.events_processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"simulation exceeded {max_events} events (livelock?)"
                        )
            else:
                while i < len(cur):
                    rec = cur[i]
                    if rec[0] > until:  # type: ignore[operator]
                        self._cur_i = i
                        self._now = until
                        return self._now
                    i += 1
                    self._cur_i = i
                    callback = rec[3]
                    if callback is None:
                        retire(rec)
                        continue
                    self._now = rec[0]  # type: ignore[assignment]
                    retire(rec)
                    callback()  # type: ignore[operator]
                    processed += 1
                    self.events_processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"simulation exceeded {max_events} events (livelock?)"
                        )
            self._finish_bucket(cur)
            if not self._load_next_bucket():
                if until is not None:
                    self._now = max(self._now, until)
                return self._now

    def _next_record(self) -> Optional[List[object]]:
        """Pop the next record in dispatch order (cancelled tombstones
        included), or None when the queue is empty. Shared by the
        instrumented loop and :meth:`step`."""
        if self.scheduler == "heap":
            if not self._queue:
                return None
            return heappop(self._queue)
        while True:
            cur = self._cur
            i = self._cur_i
            if i < len(cur):
                self._cur_i = i + 1
                return cur[i]
            self._finish_bucket(cur)
            if not self._load_next_bucket():
                return None

    def _peek_when(self) -> Optional[float]:
        """Time of the next queued record (cancelled included), or None."""
        if self.scheduler == "heap":
            if not self._queue:
                return None
            return self._queue[0][0]  # type: ignore[return-value]
        while True:
            cur = self._cur
            i = self._cur_i
            if i < len(cur):
                return cur[i][0]  # type: ignore[return-value]
            self._finish_bucket(cur)
            if not self._load_next_bucket():
                return None

    def _run_instrumented(
        self, until: Optional[float], max_events: int, profiler, sampler
    ) -> float:
        """The same dispatch order with wall-time attribution per event
        (profiler) and virtual-clock boundary sampling (time-series
        sampler)."""
        processed = 0
        loop_t0 = perf_counter()
        try:
            while True:
                when = self._peek_when()
                if when is None:
                    break
                if until is not None and when > until:
                    self._now = until
                    return self._now
                rec = self._next_record()
                assert rec is not None
                callback = rec[3]
                if callback is None:
                    self._retire(rec)
                    continue
                label = rec[2]
                if sampler is not None:
                    # Boundaries at or before this event's time sample the
                    # state *before* the event runs, so identical runs
                    # sample identical states.
                    sampler.advance(when)
                self._now = when
                self._retire(rec)
                if profiler is not None:
                    t0 = perf_counter()
                    callback()  # type: ignore[operator]
                    profiler.record(label, callback, when, perf_counter() - t0)
                else:
                    callback()  # type: ignore[operator]
                processed += 1
                self.events_processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events (livelock?)"
                    )
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            if profiler is not None:
                profiler.add_loop_wall(perf_counter() - loop_t0)

    def run_until_idle(self) -> float:
        """Drain every pending event; lazily-cancelled events are
        skipped exactly as :meth:`run` skips them."""
        return self.run()

    def step(self) -> bool:
        """Process exactly one live event, skipping cancelled
        tombstones. Returns False when the queue holds no live events
        (used by blocking host APIs that co-simulate the network)."""
        obs = self.obs
        profiler = obs.profiler if obs.enabled else None
        sampler = obs.sampler if obs.enabled else None
        while True:
            rec = self._next_record()
            if rec is None:
                return False
            callback = rec[3]
            if callback is None:
                self._retire(rec)
                continue
            when = rec[0]
            label = rec[2]
            if sampler is not None:
                sampler.advance(when)
            self._now = when  # type: ignore[assignment]
            self._retire(rec)
            if profiler is not None:
                t0 = perf_counter()
                callback()  # type: ignore[operator]
                profiler.record(label, callback, when, perf_counter() - t0)
            else:
                callback()  # type: ignore[operator]
            self.events_processed += 1
            return True
