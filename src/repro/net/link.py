"""Point-to-point links with latency, bandwidth and optional loss.

Delivery is *piped*: each direction of a link keeps a FIFO of in-flight
``(arrival, frame)`` pairs and arms at most one scheduler event (the
"wake") at a time; a wake drains every frame whose arrival time has
come, then re-arms for the next head-of-queue arrival.  Because each
direction's arrival times are non-decreasing (frames serialize behind
one another), this preserves exact per-frame arrival times while
replacing a per-frame closure allocation with a single bound-method
callback per burst.

``delivery_quantum`` optionally coalesces interrupts the way real NIC
drivers do: arrival times are rounded up to the next quantum boundary,
so a burst of back-to-back frames shares one wake event that delivers
them all.  The default (``None``) keeps the exact un-coalesced timing.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Optional, Tuple, TYPE_CHECKING

from repro.errors import SimulationError
from repro.net.frame import Frame

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.net.events import Simulator


class LinkStats:
    """Per-link accounting; drops are split by cause so a lossy run, a
    congested run and a failed-link run are distinguishable in a
    registry snapshot."""

    __slots__ = (
        "frames", "bytes", "drops_loss", "drops_overflow", "drops_down",
        "busy_time",
    )

    def __init__(self) -> None:
        self.frames = 0
        self.bytes = 0
        self.drops_loss = 0
        self.drops_overflow = 0
        self.drops_down = 0
        self.busy_time = 0.0

    @property
    def drops(self) -> int:
        """Total drops, all causes (backward-compatible view)."""
        return self.drops_loss + self.drops_overflow + self.drops_down


class _Pipe:
    """One direction's in-flight frames, drained by a single wake event."""

    __slots__ = ("link", "receiver", "in_port", "queue", "armed")

    def __init__(self, link: "Link", receiver: "Node", in_port: int) -> None:
        self.link = link
        self.receiver = receiver
        self.in_port = in_port
        self.queue: Deque[Tuple[float, Frame]] = deque()
        self.armed = False

    def push(self, sim: "Simulator", arrival: float, frame: Frame) -> None:
        self.queue.append((arrival, frame))
        if not self.armed:
            self.armed = True
            sim.schedule_at(arrival, self._wake, label=self.receiver.prof_rx_label)

    def _wake(self) -> None:
        receiver = self.receiver
        sim = receiver.sim
        now = sim.now()
        queue = self.queue
        in_port = self.in_port
        if receiver.up:
            while queue and queue[0][0] <= now:
                receiver.handle_frame(queue.popleft()[1], in_port)
        else:
            # The receiving node failed with these frames in flight:
            # they die at the NIC with drop cause ``down``.
            link = self.link
            while queue and queue[0][0] <= now:
                link._drop_at_delivery(sim, receiver, queue.popleft()[1])
        if queue:
            sim.schedule_at(
                queue[0][0], self._wake, label=receiver.prof_rx_label
            )
        else:
            self.armed = False


class Link:
    """A full-duplex link between two node ports.

    Serialization delay is ``size / bandwidth`` and each direction has an
    independent transmit queue (``free_at``): frames queue behind one
    another, which is what creates incast congestion at a ToR in the
    AllReduce benchmarks. ``queue_limit_bytes`` optionally bounds that
    per-direction backlog: a frame that would push the queued bytes past
    the limit is dropped (cause ``overflow``), modelling a finite egress
    buffer.
    """

    def __init__(
        self,
        a: "Node",
        b: "Node",
        latency: float = 1e-6,
        bandwidth: float = 10e9,  # bits/s
        loss: float = 0.0,
        seed: int = 0,
        queue_limit_bytes: Optional[int] = None,
        delivery_quantum: Optional[float] = None,
    ):
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        if delivery_quantum is not None and delivery_quantum <= 0:
            raise SimulationError("delivery_quantum must be positive")
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.loss = loss
        self.queue_limit_bytes = queue_limit_bytes
        self.delivery_quantum = delivery_quantum
        self._rng = random.Random(seed)
        self._free_at = {a: 0.0, b: 0.0}
        #: administrative state; a downed link eats every frame (the
        #: chaos harness's link-failure injection point)
        self.up = True
        self.stats = LinkStats()
        self.port_at = {
            a: a.attach_link(self),
            b: b.attach_link(self),
        }
        #: per-direction delivery pipes, keyed by the sending node
        self._pipes = {
            a: _Pipe(self, b, self.port_at[b]),
            b: _Pipe(self, a, self.port_at[a]),
        }

    def other(self, node: "Node") -> "Node":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise SimulationError(f"{node} is not attached to this link")

    def backlog_bytes(self, sender: "Node", now: float) -> float:
        """Bytes queued in *sender*'s direction at time ``now`` -- the
        egress queue depth switches stamp into INT records, and the
        quantity the overflow check compares against the buffer limit."""
        return max(0.0, self._free_at[sender] - now) * self.bandwidth / 8

    @property
    def track(self) -> str:
        return f"link {self.a.name}<->{self.b.name}"

    def _trace_args(self, sender: "Node", receiver: "Node", frame: Frame) -> dict:
        args = {"dir": f"{sender.name}->{receiver.name}", "bytes": len(frame.data)}
        meta = frame.meta
        if meta is not None:
            args["kernel"] = meta["kernel"]
            args["seq"] = meta["seq"]
            args["from"] = meta["from"]
        return args

    def _trace_drop(
        self, obs, sim: "Simulator", sender: "Node", receiver: "Node",
        frame: Frame, cause: str, backlog: Optional[float] = None,
    ) -> None:
        """Emit the drop instant and, for an INT-carrying frame, the
        partial telemetry stack it was carrying when it died -- that is
        what lets the lineage index show *which attempt* a loss ate."""
        args = self._trace_args(sender, receiver, frame)
        args["cause"] = cause
        if backlog is not None:
            args["backlog_bytes"] = int(backlog)
        now = sim.now()
        obs.tracer.instant("drop", now, track=self.track, cat="link", args=args)
        from repro.obs.int import carries_int, peek_stack, stack_event_args

        data = frame.data
        if carries_int(data):
            stack = peek_stack(data)
            meta = frame.meta
            if stack is not None and meta is not None:
                obs.tracer.instant(
                    "int:stack", now, track=self.track, cat="int",
                    args=stack_event_args(
                        stack, meta["kernel"], meta["seq"], meta["from"],
                        outcome=f"drop:{cause}",
                    ),
                )

    def _drop_at_delivery(
        self, sim: "Simulator", receiver: "Node", frame: Frame
    ) -> None:
        """An in-flight frame reached a downed node: cause ``down``."""
        self.stats.drops_down += 1
        obs = sim.obs
        if obs.enabled:
            self._trace_drop(
                obs, sim, self.other(receiver), receiver, frame, "down"
            )

    def set_down(self) -> None:
        """Fail the link: every subsequent frame drops with cause
        ``down`` until :meth:`set_up`."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def transmit(
        self,
        sim: "Simulator",
        sender: "Node",
        data: "bytes | Frame",
        earliest: float = 0.0,
    ) -> None:
        """Send a frame from *sender* to the other end.

        ``earliest`` optionally floors the serialization start time --
        switches with inline forwarding fold their pipeline delay into
        it instead of paying a scheduler event per transit packet.
        """
        receiver = self.other(sender)
        obs = sim.obs
        frame = Frame.wrap(data)
        if not self.up or not sender.up:
            self.stats.drops_down += 1
            if obs.enabled:
                self._trace_drop(obs, sim, sender, receiver, frame, "down")
            return
        if self.loss > 0 and self._rng.random() < self.loss:
            self.stats.drops_loss += 1
            if obs.enabled:
                self._trace_drop(obs, sim, sender, receiver, frame, "loss")
            return
        size = len(frame.data)
        serialization = size * 8 / self.bandwidth
        now = sim.now()
        start = max(now, earliest, self._free_at[sender])
        if self.queue_limit_bytes is not None:
            backlog_bytes = self.backlog_bytes(sender, now)
            if backlog_bytes + size > self.queue_limit_bytes:
                self.stats.drops_overflow += 1
                if obs.enabled:
                    self._trace_drop(
                        obs, sim, sender, receiver, frame, "overflow",
                        backlog=backlog_bytes,
                    )
                return
        done = start + serialization
        self._free_at[sender] = done
        self.stats.frames += 1
        self.stats.bytes += size
        self.stats.busy_time += serialization
        arrival = done + self.latency
        quantum = self.delivery_quantum
        if quantum is not None:
            # Interrupt coalescing: deliver on the next quantum boundary
            # (bursts share one wake event). ceil keeps arrival >= the
            # physical arrival time, and the rounding is monotone, so
            # per-direction FIFO order is preserved.
            arrival = math.ceil(arrival / quantum) * quantum
        if obs.enabled:
            args = self._trace_args(sender, receiver, frame)
            if start > now:
                obs.tracer.span(
                    "queue", now, start - now, track=self.track, cat="link",
                    args=dict(args),
                )
            obs.tracer.span(
                "serialize", start, serialization, track=self.track, cat="link",
                args=args,
            )
        self._pipes[sender].push(sim, arrival, frame)

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name})"
