"""Point-to-point links with latency, bandwidth and optional loss."""

from __future__ import annotations

import random
from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.net.events import Simulator


class LinkStats:
    __slots__ = ("frames", "bytes", "drops", "busy_time")

    def __init__(self) -> None:
        self.frames = 0
        self.bytes = 0
        self.drops = 0
        self.busy_time = 0.0


class Link:
    """A full-duplex link between two node ports.

    Serialization delay is ``size / bandwidth`` and each direction has an
    independent transmit queue (``free_at``): frames queue behind one
    another, which is what creates incast congestion at a ToR in the
    AllReduce benchmarks.
    """

    def __init__(
        self,
        a: "Node",
        b: "Node",
        latency: float = 1e-6,
        bandwidth: float = 10e9,  # bits/s
        loss: float = 0.0,
        seed: int = 0,
    ):
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.loss = loss
        self._rng = random.Random(seed)
        self._free_at = {a: 0.0, b: 0.0}
        self.stats = LinkStats()
        self.port_at = {
            a: a.attach_link(self),
            b: b.attach_link(self),
        }

    def other(self, node: "Node") -> "Node":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise SimulationError(f"{node} is not attached to this link")

    def transmit(self, sim: "Simulator", sender: "Node", data: bytes) -> None:
        """Send a frame from *sender* to the other end."""
        receiver = self.other(sender)
        if self.loss > 0 and self._rng.random() < self.loss:
            self.stats.drops += 1
            return
        size_bits = len(data) * 8
        serialization = size_bits / self.bandwidth
        start = max(sim.now(), self._free_at[sender])
        done = start + serialization
        self._free_at[sender] = done
        self.stats.frames += 1
        self.stats.bytes += len(data)
        self.stats.busy_time += serialization
        arrival = done + self.latency
        in_port = self.port_at[receiver]
        sim.schedule_at(arrival, lambda: receiver.handle_frame(data, in_port))

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name})"
