"""Point-to-point links with latency, bandwidth and optional loss."""

from __future__ import annotations

import random
from typing import Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.ncp.wire import peek_frame

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.net.events import Simulator


class LinkStats:
    """Per-link accounting; drops are split by cause so a lossy run, a
    congested run and a failed-link run are distinguishable in a
    registry snapshot."""

    __slots__ = (
        "frames", "bytes", "drops_loss", "drops_overflow", "drops_down",
        "busy_time",
    )

    def __init__(self) -> None:
        self.frames = 0
        self.bytes = 0
        self.drops_loss = 0
        self.drops_overflow = 0
        self.drops_down = 0
        self.busy_time = 0.0

    @property
    def drops(self) -> int:
        """Total drops, all causes (backward-compatible view)."""
        return self.drops_loss + self.drops_overflow + self.drops_down


class Link:
    """A full-duplex link between two node ports.

    Serialization delay is ``size / bandwidth`` and each direction has an
    independent transmit queue (``free_at``): frames queue behind one
    another, which is what creates incast congestion at a ToR in the
    AllReduce benchmarks. ``queue_limit_bytes`` optionally bounds that
    per-direction backlog: a frame that would push the queued bytes past
    the limit is dropped (cause ``overflow``), modelling a finite egress
    buffer.
    """

    def __init__(
        self,
        a: "Node",
        b: "Node",
        latency: float = 1e-6,
        bandwidth: float = 10e9,  # bits/s
        loss: float = 0.0,
        seed: int = 0,
        queue_limit_bytes: Optional[int] = None,
    ):
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.loss = loss
        self.queue_limit_bytes = queue_limit_bytes
        self._rng = random.Random(seed)
        self._free_at = {a: 0.0, b: 0.0}
        #: administrative state; a downed link eats every frame (the
        #: chaos harness's link-failure injection point)
        self.up = True
        self.stats = LinkStats()
        self.port_at = {
            a: a.attach_link(self),
            b: b.attach_link(self),
        }

    def other(self, node: "Node") -> "Node":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise SimulationError(f"{node} is not attached to this link")

    def backlog_bytes(self, sender: "Node", now: float) -> float:
        """Bytes queued in *sender*'s direction at time ``now`` -- the
        egress queue depth switches stamp into INT records, and the
        quantity the overflow check compares against the buffer limit."""
        return max(0.0, self._free_at[sender] - now) * self.bandwidth / 8

    @property
    def track(self) -> str:
        return f"link {self.a.name}<->{self.b.name}"

    def _trace_args(self, sender: "Node", receiver: "Node", data: bytes) -> dict:
        args = {"dir": f"{sender.name}->{receiver.name}", "bytes": len(data)}
        meta = peek_frame(data)
        if meta is not None:
            args["kernel"] = meta["kernel"]
            args["seq"] = meta["seq"]
            args["from"] = meta["from"]
        return args

    def _trace_drop(
        self, obs, sim: "Simulator", sender: "Node", receiver: "Node",
        data: bytes, cause: str, backlog: Optional[float] = None,
    ) -> None:
        """Emit the drop instant and, for an INT-carrying frame, the
        partial telemetry stack it was carrying when it died -- that is
        what lets the lineage index show *which attempt* a loss ate."""
        args = self._trace_args(sender, receiver, data)
        args["cause"] = cause
        if backlog is not None:
            args["backlog_bytes"] = int(backlog)
        now = sim.now()
        obs.tracer.instant("drop", now, track=self.track, cat="link", args=args)
        from repro.obs.int import carries_int, peek_stack, stack_event_args

        if carries_int(data):
            stack = peek_stack(data)
            meta = peek_frame(data)
            if stack is not None and meta is not None:
                obs.tracer.instant(
                    "int:stack", now, track=self.track, cat="int",
                    args=stack_event_args(
                        stack, meta["kernel"], meta["seq"], meta["from"],
                        outcome=f"drop:{cause}",
                    ),
                )

    def set_down(self) -> None:
        """Fail the link: every subsequent frame drops with cause
        ``down`` until :meth:`set_up`."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def transmit(self, sim: "Simulator", sender: "Node", data: bytes) -> None:
        """Send a frame from *sender* to the other end."""
        receiver = self.other(sender)
        obs = sim.obs
        if not self.up:
            self.stats.drops_down += 1
            if obs.enabled:
                self._trace_drop(obs, sim, sender, receiver, data, "down")
            return
        if self.loss > 0 and self._rng.random() < self.loss:
            self.stats.drops_loss += 1
            if obs.enabled:
                self._trace_drop(obs, sim, sender, receiver, data, "loss")
            return
        size_bits = len(data) * 8
        serialization = size_bits / self.bandwidth
        now = sim.now()
        start = max(now, self._free_at[sender])
        if self.queue_limit_bytes is not None:
            backlog_bytes = self.backlog_bytes(sender, now)
            if backlog_bytes + len(data) > self.queue_limit_bytes:
                self.stats.drops_overflow += 1
                if obs.enabled:
                    self._trace_drop(
                        obs, sim, sender, receiver, data, "overflow",
                        backlog=backlog_bytes,
                    )
                return
        done = start + serialization
        self._free_at[sender] = done
        self.stats.frames += 1
        self.stats.bytes += len(data)
        self.stats.busy_time += serialization
        arrival = done + self.latency
        if obs.enabled:
            args = self._trace_args(sender, receiver, data)
            if start > now:
                obs.tracer.span(
                    "queue", now, start - now, track=self.track, cat="link",
                    args=dict(args),
                )
            obs.tracer.span(
                "serialize", start, serialization, track=self.track, cat="link",
                args=args,
            )
        in_port = self.port_at[receiver]
        sim.schedule_at(
            arrival,
            lambda: receiver.handle_frame(data, in_port),
            label=receiver.prof_rx_label,
        )

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name})"
