"""The network-simulator node hosting a compiled PISA switch."""

from __future__ import annotations

from typing import Union, TYPE_CHECKING

from repro.errors import SimulationError
from repro.net.frame import Frame
from repro.net.node import Node
from repro.pisa.switch_dev import PisaSwitch

if TYPE_CHECKING:
    from repro.net.events import Simulator


class PisaSwitchNode(Node):
    """Wraps a :class:`PisaSwitch` and realizes its forwarding verdicts:

    * ``pass``   -> out the port chosen by the P4 ``ipv4_route`` table
      (``meta.egress_port``), or toward the ``_pass(label)`` target;
    * ``drop``   -> consumed;
    * ``bcast``  -> out every port except the ingress (the overlay
      neighbors, for ToR-style deployments -- paper S4.1);
    * ``reflect``-> back out the ingress port (addresses were swapped by
      the template's ``reflect_rewrite`` action).
    """

    PIPELINE_DELAY = 1e-6

    PROF_KIND = "switch"

    def __init__(self, name: str, node_id: int, sim: "Simulator", switch: PisaSwitch):
        super().__init__(name, node_id, sim)
        self.switch = switch
        self._prof_pipeline = f"switch;{name};pipeline"

    def install_route(self, dst_node_id: int, port: int) -> None:
        """Install both the simulator next-hop and the P4 table entry."""
        from repro.ncp.wire import node_ip

        self.routes[dst_node_id] = port
        if "ipv4_route" in self.switch.program.tables:
            self.switch.table_insert(
                "ipv4_route", [node_ip(dst_node_id)], "ipv4_forward", [port]
            )

    def handle_frame(self, frame: Union[bytes, Frame], in_port: int) -> None:
        frame = Frame.wrap(frame)
        data = frame.data
        self.stats.rx_frames += 1
        self.stats.rx_bytes += len(data)

        def run() -> None:
            self.stats.processed += 1
            obs = self.sim.obs
            if obs.enabled:
                from repro.obs.netmetrics import SwitchPacketTrace

                observer = SwitchPacketTrace()
                result = self.switch.process(data, in_port, observer=observer)
                meta = frame.meta
                frame_args = {"in_port": in_port}
                if meta is not None:
                    frame_args.update(
                        kernel=meta["kernel"], seq=meta["seq"],
                        **{"from": meta["from"]},
                    )
                # run() fires PIPELINE_DELAY after the frame arrived; the
                # per-stage spans tile that processing window.
                observer.emit(
                    obs.tracer,
                    track=f"switch {self.name}",
                    start=self.sim.now() - self.PIPELINE_DELAY,
                    delay=self.PIPELINE_DELAY,
                    verdict=result.verdict,
                    frame_args=frame_args,
                )
                obs.registry.histogram(
                    "switch.phv_fields",
                    "PHV occupancy (live field count) per packet",
                    ("switch",),
                    buckets=(8, 16, 32, 64, 128, 256),
                ).labels(switch=self.name).observe(len(result.phv.fields))
            else:
                result = self.switch.process(data, in_port)
            int_cfg = obs.int_config  # None on NULL_OBS and untelemetered runs
            verdict = result.verdict
            if verdict == "drop":
                self.stats.drops += 1
                if int_cfg is not None:
                    self._int_absorb(obs, int_cfg, result, "switch")
                return
            if verdict == "bcast":
                # "_bcast() sends a window to all devices, one hop away -- in
                # the overlay -- from the current location" (S4.1): that
                # includes the neighbor it arrived from.
                self._forward(result, range(len(self.links)), int_cfg)
                return
            if verdict == "reflect":
                self._forward(result, (in_port,), int_cfg)
                return
            # pass: a labelled pass overrides normal routing.
            if result.label_id is not None:
                port = self.routes.get(result.label_id)
                if port is None:
                    raise SimulationError(
                        f"{self.name}: _pass toward unknown node "
                        f"{result.label_id}"
                    )
                self._forward(result, (port,), int_cfg)
                return
            egress = result.phv.read("meta.egress_port")
            if egress >= len(self.links):
                # Route miss left the default egress; treat as drop.
                self.stats.drops += 1
                if int_cfg is not None:
                    self._int_absorb(obs, int_cfg, result, "route-miss")
                return
            self._forward(result, (egress,), int_cfg)

        self.sim.schedule(self.PIPELINE_DELAY, run, label=self._prof_pipeline)

    # -- in-band telemetry hooks ---------------------------------------------

    def _forward(self, result, ports, int_cfg) -> None:
        """Send the result out every port, stamping a per-hop INT record
        onto each copy (the queue depth differs per egress link, so every
        copy gets its own record)."""
        if int_cfg is None:
            for port in ports:
                self.send(result.data, port)
            return
        from repro.obs.int import carries_int, stamp_hop

        now = self.sim.now()
        data = result.data
        stamped = carries_int(data)
        for port in ports:
            frame = data
            if stamped:
                frame, _ = stamp_hop(
                    frame,
                    int_cfg,
                    hop_id=self.node_id,
                    ingress_ts=now - self.PIPELINE_DELAY,
                    egress_ts=now,
                    qdepth_bytes=int(self.links[port].backlog_bytes(self, now)),
                    tables_matched=result.tables_matched,
                )
            self.send(frame, port)

    def _int_absorb(self, obs, int_cfg, result, cause: str) -> None:
        """A packet consumed here (kernel ``_drop()`` or a route miss):
        stamp the final hop record with the DROPPED flag and emit the
        stack into the trace, since delivery will never surface it."""
        from repro.ncp.wire import peek_frame
        from repro.obs.int import (
            carries_int, peek_stack, stack_event_args, stamp_hop,
        )

        data = result.data
        if not carries_int(data):
            return
        now = self.sim.now()
        data, _ = stamp_hop(
            data,
            int_cfg,
            hop_id=self.node_id,
            ingress_ts=now - self.PIPELINE_DELAY,
            egress_ts=now,
            qdepth_bytes=0,
            tables_matched=result.tables_matched,
            dropped=True,
        )
        stack = peek_stack(data)
        meta = peek_frame(data)
        if stack is None or meta is None:
            return
        obs.tracer.instant(
            "int:stack", now, track=f"switch {self.name}", cat="int",
            args=stack_event_args(
                stack, meta["kernel"], meta["seq"], meta["from"],
                outcome=f"drop:{cause}",
                node_names={self.node_id: self.name},
            ),
        )
