"""repro -- a full reproduction of "Don't You Worry 'Bout a Packet:
Unified Programming for In-Network Computing" (HotNets '21).

The package implements the paper's entire envisioned stack:

* :mod:`repro.ncl` -- the Net Compute Language frontend (C-subset lexer,
  parser, semantic analysis, the ``_net_``/``_out_``/``_in_``/``_ctrl_``/
  ``_at_``/``_ext_`` declaration specifiers, window/location structs,
  ``ncl::Map``/``ncl::BloomFilter``);
* :mod:`repro.nir` -- a typed SSA intermediate representation with the
  optimization passes named in the paper (const folding/propagation,
  GVN/CSE, DCE, loop unrolling);
* :mod:`repro.nclc` -- the dual-pipeline compiler driver: conformance
  checking, IR versioning over the AND, PISA lowering, P4 code
  generation and backend feedback;
* :mod:`repro.p4` + :mod:`repro.pisa` -- a P4-like target program model
  and a software PISA pipeline (parser / match-action stages / registers
  / deparser) that executes it, bmv2-style;
* :mod:`repro.ncp` -- the Net Compute Protocol: window-based transport
  framing over pluggable backends;
* :mod:`repro.runtime` -- libncrt: the host-side runtime (``out``/
  ``in_``/``ctrl_wr``), transparent windowing and plumbing;
* :mod:`repro.andspec` -- the Abstract Network Description and its
  overlay-to-physical mapping;
* :mod:`repro.net` -- a discrete-event network simulator (hosts, links,
  switches) standing in for the paper's testbed;
* :mod:`repro.apps` / :mod:`repro.baselines` -- the paper's use cases
  (AllReduce, KVS cache) and hand-written P4-style / host-only baselines.

Quickstart::

    from repro import compile_ncl, Cluster

    program = compile_ncl(NCL_SOURCE, and_text=AND_SPEC)
    cluster = Cluster.from_program(program)
    ...
"""

from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = ["ReproError", "compile_ncl", "__version__"]


def compile_ncl(source, and_text=None, defines=None, profile=None, filename="<ncl>"):
    """Compile an NCL program (convenience wrapper around
    :class:`repro.nclc.driver.Compiler`). Returns a
    :class:`repro.nclc.driver.CompiledProgram`."""
    from repro.nclc.driver import Compiler

    return Compiler(profile=profile).compile(
        source, and_text=and_text, defines=defines, filename=filename
    )
