"""AST -> NIR lowering (the nclc frontend's IR generation).

Produces one :class:`repro.nir.ir.Module` containing every network kernel
and helper function of a translation unit, plus :class:`GlobalRef`
descriptors for all switch/host state.

Notable semantic choices (documented deviations from C, both driven by
the PISA target -- see DESIGN.md):

* ``&&``/``||``/``?:`` evaluate **both** operands eagerly and combine
  with bitwise ops / ``select``. Match-action pipelines evaluate all
  action operands anyway; NCL kernel expressions are side-effect-free
  apart from Map lookups, which are pure reads.
* ``&expr`` is only meaningful as a ``memcpy`` operand (there is no
  general address space on a switch).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import NclTypeError
from repro.ncl import ast
from repro.ncl.sema import TranslationUnit
from repro.ncl.symbols import Symbol
from repro.ncl.types import (
    ArrayType,
    BloomFilterType,
    BOOL,
    I32,
    MapType,
    PointerType,
    Type,
    U32,
    common_type,
    is_signed,
    scalar_bits,
)
from repro.nir import ir


#: What lenient lowering swallows: type errors plus the internal faults a
#: poisoned (recovered-from-error) AST can trip inside the lowerer.
_LOWERING_ERRORS = (NclTypeError, AssertionError, IndexError, KeyError)


class _LoopFrame:
    def __init__(self, continue_block: ir.Block, break_block: ir.Block):
        self.continue_block = continue_block
        self.break_block = break_block


class _Access:
    """Resolved element access: where a read/write lands."""

    def __init__(
        self,
        kind: str,  # 'local' | 'param' | 'global' | 'ctrl' | 'map'
        elem_ty: Type,
        slot: Optional[ir.Alloca] = None,
        param: Optional[ir.Param] = None,
        ref: Optional[ir.GlobalRef] = None,
        index: Optional[ir.Value] = None,
    ):
        self.kind = kind
        self.elem_ty = elem_ty
        self.slot = slot
        self.param = param
        self.ref = ref
        self.index = index


class ModuleLowerer:
    """Lowers a whole analyzed translation unit to one NIR module.

    With ``lenient=True`` (the linter's mode), a function or global that
    fails to lower -- typically because semantic recovery left poisoned
    constructs behind -- is dropped from the module instead of aborting,
    so NIR-level analyses still run over everything that *did* lower.
    """

    def __init__(self, unit: TranslationUnit, name: str = "ncl", lenient: bool = False):
        self.unit = unit
        self.lenient = lenient
        self.module = ir.Module(name)
        self.module.window_fields = list(unit.window_fields)

    def lower(self) -> ir.Module:
        self._lower_globals()
        # Only helpers reachable from kernels are lowered to NIR; other
        # host functions (main, setup code using the ncl:: runtime API)
        # are executed by repro.runtime.hostexec at the AST level.
        for name in self._kernel_reachable_helpers():
            decl = self.unit.functions[name]
            fn = self._make_function(decl, ir.FunctionKind.HELPER)
            self.module.add_function(fn)
        for name, info in self.unit.out_kernels.items():
            fn = self._make_function(info.decl, ir.FunctionKind.OUT_KERNEL)
            self.module.add_function(fn)
        for name, info in self.unit.in_kernels.items():
            fn = self._make_function(info.decl, ir.FunctionKind.IN_KERNEL)
            self.module.add_function(fn)
        # Helpers come first in insertion order, so a helper dropped here
        # cascades: kernels calling it fail on "unknown function" and are
        # dropped in turn rather than referencing a half-lowered callee.
        for fn_name in list(self.module.functions):
            decl = self._decl_for(fn_name)
            try:
                FunctionLowerer(self, self.module.functions[fn_name], decl).lower()
            except _LOWERING_ERRORS:
                if not self.lenient:
                    raise
                del self.module.functions[fn_name]
        return self.module

    def _kernel_reachable_helpers(self) -> "List[str]":
        """Helper functions transitively called from any kernel body."""

        def calls_in(decl: ast.FuncDecl) -> set:
            names = set()
            if decl.body is not None:
                for node in decl.body.walk():
                    if isinstance(node, ast.Call) and node.name in self.unit.functions:
                        names.add(node.name)
            return names

        reachable: set = set()
        frontier = set()
        for info in list(self.unit.out_kernels.values()) + list(
            self.unit.in_kernels.values()
        ):
            frontier |= calls_in(info.decl)
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            decl = self.unit.functions.get(name)
            if decl is None or decl.body is None:
                continue
            reachable.add(name)
            frontier |= calls_in(decl)
        # Stable order: declaration order in the unit.
        return [n for n in self.unit.functions if n in reachable]

    def _decl_for(self, name: str) -> ast.FuncDecl:
        if name in self.unit.out_kernels:
            return self.unit.out_kernels[name].decl
        if name in self.unit.in_kernels:
            return self.unit.in_kernels[name].decl
        return self.unit.functions[name]

    def _lower_globals(self) -> None:
        def add(name: str, gvar: ast.GlobalVar, space: str, with_init: bool) -> None:
            at_label = gvar.at_label if space != "host" else None
            try:
                init = _flatten_init(gvar) if with_init else None
                self.module.add_global(
                    ir.GlobalRef(name, gvar.ty, space, at_label, init)
                )
            except _LOWERING_ERRORS:
                if not self.lenient:
                    raise

        for name, gvar in self.unit.net_globals.items():
            add(name, gvar, "net", True)
        for name, gvar in self.unit.ctrl_vars.items():
            add(name, gvar, "ctrl", True)
        for name, gvar in self.unit.maps.items():
            add(name, gvar, "map", False)
        for name, gvar in self.unit.blooms.items():
            add(name, gvar, "bloom", False)
        for name, gvar in self.unit.host_globals.items():
            add(name, gvar, "host", True)

    def _make_function(self, decl: ast.FuncDecl, kind: ir.FunctionKind) -> ir.Function:
        params = [
            ir.Param(i, p.name, p.ty, p.ext) for i, p in enumerate(decl.params)
        ]
        return ir.Function(decl.name, kind, params, decl.ret, decl.at_label)


class FunctionLowerer:
    def __init__(self, parent: ModuleLowerer, fn: ir.Function, decl: ast.FuncDecl):
        self.parent = parent
        self.module = parent.module
        self.unit = parent.unit
        self.fn = fn
        self.decl = decl
        self.block = fn.new_block("entry")
        self.env: Dict[str, Union[ir.Alloca, ir.Param]] = {}
        self.loops: List[_LoopFrame] = []
        #: source location of the statement/expression being lowered;
        #: every emitted instruction is stamped with it (Instr.loc).
        self.cur_loc = None
        for param in fn.params:
            self.env[param.name] = param

    # -- emission helpers ---------------------------------------------------

    def emit(self, instr: ir.Instr) -> ir.Instr:
        if instr.loc is None:
            instr.loc = self.cur_loc
        return self.block.append(instr)

    def const(self, value: int, ty: Type = I32) -> ir.Const:
        return ir.Const(ty, value)

    def _terminate(self, instr: ir.Instr) -> None:
        if self.block.terminator is None:
            self.block.append(instr)

    def _switch_to(self, block: ir.Block) -> None:
        self.block = block

    # -- entry point ----------------------------------------------------------

    def lower(self) -> None:
        assert self.decl.body is not None
        self.lower_block(self.decl.body)
        self._terminate(ir.Ret())
        _prune_unreachable(self.fn)

    # -- statements ----------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if self.block.terminator is not None:
            return  # dead code after return/break/continue
        if getattr(stmt, "loc", None) is not None:
            self.cur_loc = stmt.loc
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self.lower_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            if value is not None and stmt.value is not None:
                value = self.coerce(value, self.fn.ret, stmt.value)
            self._terminate(ir.Ret(value))
        elif isinstance(stmt, ast.Break):
            self._terminate(ir.Br(self.loops[-1].break_block))
        elif isinstance(stmt, ast.Continue):
            self._terminate(ir.Br(self.loops[-1].continue_block))
        else:
            raise NclTypeError(f"cannot lower {type(stmt).__name__}", stmt.loc)

    def lower_decl(self, stmt: ast.DeclStmt) -> None:
        assert stmt.ty is not None
        slot = ir.Alloca(stmt.ty, stmt.name)
        self.fn.entry.instrs.insert(0, slot)
        slot.block = self.fn.entry
        self.env[stmt.name] = slot
        if stmt.init is not None:
            if stmt.ty.is_pointer:
                # `auto *idx = Idx[key]`: the local holds the lookup token,
                # not the looked-up value.
                value = self.lower_pointer(stmt.init)
            else:
                value = self.coerce(self.lower_expr(stmt.init), stmt.ty, stmt.init)
            self.emit(ir.Store(slot, value))
        else:
            self.emit(ir.Store(slot, ir.Undef(stmt.ty)))

    def lower_if(self, stmt: ast.If) -> None:
        if stmt.cond_decl is not None:
            self.lower_decl(stmt.cond_decl)
            decl_value = self._read_local(stmt.cond_decl.name)
            cond = self.as_bool(decl_value)
        else:
            assert stmt.cond is not None
            cond = self.as_bool(self.lower_expr(stmt.cond))
        then_block = self.fn.new_block("if.then")
        merge_block = self.fn.new_block("if.end")
        else_block = self.fn.new_block("if.else") if stmt.orelse else merge_block
        self._terminate(ir.CondBr(cond, then_block, else_block))
        self._switch_to(then_block)
        self.lower_stmt(stmt.then)
        self._terminate(ir.Br(merge_block))
        if stmt.orelse is not None:
            self._switch_to(else_block)
            self.lower_stmt(stmt.orelse)
            self._terminate(ir.Br(merge_block))
        self._switch_to(merge_block)

    def lower_while(self, stmt: ast.While) -> None:
        head = self.fn.new_block("while.head")
        body = self.fn.new_block("while.body")
        done = self.fn.new_block("while.end")
        self._terminate(ir.Br(head))
        self._switch_to(head)
        cond = self.as_bool(self.lower_expr(stmt.cond))
        self._terminate(ir.CondBr(cond, body, done))
        self._switch_to(body)
        self.loops.append(_LoopFrame(head, done))
        self.lower_stmt(stmt.body)
        self.loops.pop()
        self._terminate(ir.Br(head))
        self._switch_to(done)

    def lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.fn.new_block("for.head")
        body = self.fn.new_block("for.body")
        step = self.fn.new_block("for.step")
        done = self.fn.new_block("for.end")
        self._terminate(ir.Br(head))
        self._switch_to(head)
        if stmt.cond is not None:
            cond = self.as_bool(self.lower_expr(stmt.cond))
            self._terminate(ir.CondBr(cond, body, done))
        else:
            self._terminate(ir.Br(body))
        self._switch_to(body)
        self.loops.append(_LoopFrame(step, done))
        self.lower_stmt(stmt.body)
        self.loops.pop()
        self._terminate(ir.Br(step))
        self._switch_to(step)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self._terminate(ir.Br(head))
        self._switch_to(done)

    # -- expressions ----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> ir.Value:
        saved = self.cur_loc
        if getattr(expr, "loc", None) is not None:
            self.cur_loc = expr.loc
        try:
            return self._lower_expr_inner(expr)
        finally:
            self.cur_loc = saved

    def _lower_expr_inner(self, expr: ast.Expr) -> ir.Value:
        if isinstance(expr, ast.IntLit):
            ty = expr.ty if expr.ty is not None else I32
            return ir.Const(ty, expr.value)
        if isinstance(expr, ast.BoolLit):
            return ir.Const(BOOL, int(expr.value))
        if isinstance(expr, ast.Ident):
            return self.lower_ident(expr)
        if isinstance(expr, ast.Member):
            return self.lower_member(expr)
        if isinstance(expr, ast.Index):
            return self.load_access(self.resolve_access(expr), expr)
        if isinstance(expr, ast.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self.lower_assign(expr)
        if isinstance(expr, ast.Ternary):
            cond = self.as_bool(self.lower_expr(expr.cond))
            a = self.lower_expr(expr.then)
            b = self.lower_expr(expr.other)
            ty = expr.ty or common_type(a.ty, b.ty)
            a = self.coerce(a, ty, expr.then)
            b = self.coerce(b, ty, expr.other)
            return self.emit(ir.Select(cond, a, b, ty))
        if isinstance(expr, ast.Call):
            return self.lower_call(expr)
        if isinstance(expr, ast.Cast):
            value = self.lower_expr(expr.operand)
            if expr.target.is_scalar:
                result = self.coerce(value, expr.target, expr.operand)
                if isinstance(result, ir.Cast) and result is not value:
                    result.explicit = True  # programmer-written cast
                return result
            return value
        raise NclTypeError(f"cannot lower {type(expr).__name__}", expr.loc)

    def lower_ident(self, expr: ast.Ident) -> ir.Value:
        binding = self.env.get(expr.name)
        if isinstance(binding, ir.Param):
            return binding
        if isinstance(binding, ir.Alloca):
            return self.emit(ir.Load(binding))
        sym = expr.decl
        if isinstance(sym, Symbol):
            ref = self.module.globals.get(sym.name)
            if ref is None:
                raise NclTypeError(f"unlowered symbol {sym.name!r}", expr.loc)
            if isinstance(ref.ty, (ArrayType, MapType, BloomFilterType)):
                raise NclTypeError(
                    f"{sym.name!r} used as a value; arrays/maps must be indexed",
                    expr.loc,
                )
            if ref.space == "ctrl":
                return self.emit(ir.CtrlRead(ref))
            return self.emit(ir.LoadElem(ref, self.const(0, U32)))
        raise NclTypeError(f"unresolved identifier {expr.name!r}", expr.loc)

    def _read_local(self, name: str) -> ir.Value:
        binding = self.env[name]
        if isinstance(binding, ir.Alloca):
            return self.emit(ir.Load(binding))
        return binding

    def lower_member(self, expr: ast.Member) -> ir.Value:
        base = expr.base
        if isinstance(base, ast.Ident) and base.name == "window":
            fty = self.unit.window_field_type(expr.field)
            assert fty is not None
            return self.emit(ir.WinField(expr.field, fty))
        if isinstance(base, ast.Ident) and base.name == "location":
            return self.emit(ir.LocField(expr.field, expr.ty or I32))
        raise NclTypeError("unsupported member access", expr.loc)

    def lower_unary(self, expr: ast.Unary) -> ir.Value:
        op = expr.op
        if op in ("++", "--"):
            return self.lower_incdec(expr)
        if op == "*":
            return self.lower_deref(expr.operand, expr)
        if op == "&":
            raise NclTypeError(
                "address-of is only supported as a memcpy argument", expr.loc
            )
        operand = self.lower_expr(expr.operand)
        if op == "!":
            return self.emit(ir.UnOp("lnot", self.as_bool(operand), BOOL))
        ty = expr.ty or operand.ty
        operand = self.coerce(operand, ty, expr.operand)
        if op == "-":
            return self.emit(ir.UnOp("neg", operand, ty))
        if op == "~":
            return self.emit(ir.UnOp("not", operand, ty))
        raise NclTypeError(f"cannot lower unary {op!r}", expr.loc)

    def lower_deref(self, pointer_expr: ast.Expr, ctx: ast.Expr) -> ir.Value:
        pointer = self.lower_pointer(pointer_expr)
        if isinstance(pointer, ir.Param):
            return self.emit(ir.LoadParam(pointer, self.const(0, U32)))
        # Otherwise it must be a Map lookup token.
        ptr_ty = pointer.ty
        assert isinstance(ptr_ty, PointerType)
        return self.emit(ir.MapValue(pointer, ptr_ty.pointee))

    def lower_pointer(self, expr: ast.Expr) -> ir.Value:
        """Lower an expression of pointer type to its pointer value."""
        if isinstance(expr, ast.Ident):
            binding = self.env.get(expr.name)
            if isinstance(binding, ir.Param):
                return binding
            if isinstance(binding, ir.Alloca):
                return self.emit(ir.Load(binding))
        if isinstance(expr, ast.Index) and isinstance(expr.base.ty, MapType):
            ref = self._global_for(expr.base)
            key = self.lower_expr(expr.index)
            key_ty = ref.ty.key  # type: ignore[union-attr]
            return self.emit(ir.MapLookup(ref, self.coerce(key, key_ty, expr.index)))
        return self.lower_expr(expr)

    def lower_incdec(self, expr: ast.Unary) -> ir.Value:
        access = self.resolve_access(expr.operand)
        old = self.load_access(access, expr.operand)
        ty = old.ty
        delta = self.const(1, ty if ty.is_integer else I32)
        op = "add" if expr.op == "++" else "sub"
        new = self.emit(ir.BinOp(op, old, self.coerce(delta, ty, expr), ty))
        self.store_access(access, new, expr)
        return old if expr.postfix else new

    def lower_binary(self, expr: ast.Binary) -> ir.Value:
        op = expr.op
        if op == ",":
            self.lower_expr(expr.lhs)
            return self.lower_expr(expr.rhs)
        if op in ("&&", "||"):
            lhs = self.as_bool(self.lower_expr(expr.lhs))
            rhs = self.as_bool(self.lower_expr(expr.rhs))
            return self.emit(ir.BinOp("and" if op == "&&" else "or", lhs, rhs, BOOL))
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self.lower_compare(op, lhs, rhs, expr)
        ty = expr.ty or common_type(lhs.ty, rhs.ty)
        lhs = self.coerce(lhs, ty, expr.lhs)
        rhs = self.coerce(rhs, ty, expr.rhs)
        ir_op = _arith_op(op, ty, expr.loc)
        return self.emit(ir.BinOp(ir_op, lhs, rhs, ty))

    def lower_compare(
        self, op: str, lhs: ir.Value, rhs: ir.Value, expr: ast.Binary
    ) -> ir.Value:
        # Pointer comparisons reduce to found-ness (a Map token compares
        # against "null").
        if lhs.ty.is_pointer or rhs.ty.is_pointer:
            pointer = lhs if lhs.ty.is_pointer else rhs
            found = self.emit(ir.MapFound(pointer))
            if op == "==":
                return self.emit(ir.UnOp("lnot", found, BOOL))
            return found
        ty = common_type(lhs.ty, rhs.ty)
        lhs = self.coerce(lhs, ty, expr.lhs)
        rhs = self.coerce(rhs, ty, expr.rhs)
        signed = is_signed(ty)
        ir_op = {
            "==": "eq",
            "!=": "ne",
            "<": "slt" if signed else "ult",
            "<=": "sle" if signed else "ule",
            ">": "sgt" if signed else "ugt",
            ">=": "sge" if signed else "uge",
        }[op]
        return self.emit(ir.BinOp(ir_op, lhs, rhs, ty))

    def lower_assign(self, expr: ast.Assign) -> ir.Value:
        access = self.resolve_access(expr.target)
        value = self.lower_expr(expr.value)
        if expr.op == "=":
            if not access.elem_ty.is_pointer:
                value = self.coerce(value, access.elem_ty, expr.value)
        else:
            old = self.load_access(access, expr.target)
            ty = access.elem_ty
            value = self.coerce(value, ty, expr.value)
            ir_op = _arith_op(expr.op.rstrip("="), ty, expr.loc)
            value = self.emit(ir.BinOp(ir_op, old, value, ty))
        self.store_access(access, value, expr)
        return value

    # -- access resolution -----------------------------------------------------

    def _global_for(self, expr: ast.Expr) -> ir.GlobalRef:
        node = expr
        while isinstance(node, ast.Index):
            node = node.base
        if isinstance(node, ast.Ident) and node.name in self.module.globals:
            return self.module.globals[node.name]
        raise NclTypeError("expected a global symbol", expr.loc)

    def resolve_access(self, expr: ast.Expr) -> _Access:
        """Resolve an lvalue (or readable element) expression."""
        if isinstance(expr, ast.Ident):
            binding = self.env.get(expr.name)
            if isinstance(binding, ir.Alloca):
                return _Access("local", binding.slot_ty, slot=binding)
            if isinstance(binding, ir.Param):
                ty = binding.ty
                elem = ty.pointee if isinstance(ty, PointerType) else ty
                if isinstance(ty, PointerType):
                    raise NclTypeError(
                        f"pointer parameter {expr.name!r} must be dereferenced "
                        "or indexed",
                        expr.loc,
                    )
                raise NclTypeError(
                    f"cannot assign to scalar parameter {expr.name!r} "
                    "(window scalars are per-window inputs)",
                    expr.loc,
                )
            sym = expr.decl
            if isinstance(sym, Symbol) and sym.name in self.module.globals:
                ref = self.module.globals[sym.name]
                if ref.space == "ctrl":
                    return _Access("ctrl", ref.elem_type, ref=ref, index=None)
                return _Access(
                    "global", ref.elem_type, ref=ref, index=self.const(0, U32)
                )
            raise NclTypeError(f"cannot resolve {expr.name!r}", expr.loc)
        if isinstance(expr, ast.Index):
            return self.resolve_index_access(expr)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self.lower_pointer(expr.operand)
            if isinstance(pointer, ir.Param):
                elem = pointer.ty.pointee  # type: ignore[union-attr]
                return _Access("param", elem, param=pointer, index=self.const(0, U32))
            ptr_ty = pointer.ty
            assert isinstance(ptr_ty, PointerType)
            access = _Access("map", ptr_ty.pointee)
            access.token = pointer  # type: ignore[attr-defined]
            return access
        raise NclTypeError("expression is not an lvalue", expr.loc)

    def resolve_index_access(self, expr: ast.Index) -> _Access:
        # Collect the index chain: base[ i0 ][ i1 ] ...
        indices: List[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index):
            indices.append(node.index)
            node = node.base
        indices.reverse()
        base = node
        if isinstance(base, ast.Ident):
            binding = self.env.get(base.name)
            if isinstance(binding, ir.Param) and isinstance(binding.ty, PointerType):
                if len(indices) != 1:
                    raise NclTypeError("pointer parameters are 1-D", expr.loc)
                idx = self._index_value(indices[0])
                return _Access(
                    "param", binding.ty.pointee, param=binding, index=idx
                )
            sym = base.decl
            if isinstance(sym, Symbol) and sym.name in self.module.globals:
                ref = self.module.globals[sym.name]
                if isinstance(ref.ty, MapType):
                    if len(indices) != 1:
                        raise NclTypeError("Map lookup takes one key", expr.loc)
                    key = self.lower_expr(indices[0])
                    key = self.coerce(key, ref.ty.key, indices[0])
                    token = self.emit(ir.MapLookup(ref, key))
                    access = _Access("map", ref.ty.value)
                    access.token = token  # type: ignore[attr-defined]
                    return access
                if isinstance(ref.ty, ArrayType):
                    linear = self._linearize(ref.ty, indices, expr)
                    space = "ctrl" if ref.space == "ctrl" else "global"
                    return _Access(space, ref.ty.scalar_element, ref=ref, index=linear)
                raise NclTypeError(f"cannot index {ref.ty!r}", expr.loc)
        raise NclTypeError("unsupported indexed expression", expr.loc)

    def _index_value(self, index_expr: ast.Expr) -> ir.Value:
        value = self.lower_expr(index_expr)
        if value.ty.is_pointer:
            # Fig 5 idiom: Valid[idx] where idx is a Map token.
            ptr_ty = value.ty
            assert isinstance(ptr_ty, PointerType)
            value = self.emit(ir.MapValue(value, ptr_ty.pointee))
        return self.coerce(value, U32, index_expr)

    def _linearize(
        self, array_ty: ArrayType, indices: List[ast.Expr], expr: ast.Expr
    ) -> ir.Value:
        dims: List[int] = []
        elem: Type = array_ty
        while isinstance(elem, ArrayType):
            dims.append(elem.length)
            elem = elem.element
        if len(indices) != len(dims):
            raise NclTypeError(
                f"expected {len(dims)} indices, got {len(indices)} "
                "(partial indexing is only valid inside memcpy)",
                expr.loc,
            )
        linear: Optional[ir.Value] = None
        for dim_idx, index_expr in enumerate(indices):
            idx = self._index_value(index_expr)
            stride = 1
            for d in dims[dim_idx + 1 :]:
                stride *= d
            if stride != 1:
                idx = self.emit(ir.BinOp("mul", idx, self.const(stride, U32), U32))
            linear = (
                idx
                if linear is None
                else self.emit(ir.BinOp("add", linear, idx, U32))
            )
        assert linear is not None
        return linear

    def load_access(self, access: _Access, ctx: ast.Expr) -> ir.Value:
        if access.kind == "local":
            assert access.slot is not None
            return self.emit(ir.Load(access.slot))
        if access.kind == "param":
            assert access.param is not None and access.index is not None
            return self.emit(ir.LoadParam(access.param, access.index))
        if access.kind == "global":
            assert access.ref is not None and access.index is not None
            return self.emit(ir.LoadElem(access.ref, access.index))
        if access.kind == "ctrl":
            assert access.ref is not None
            return self.emit(ir.CtrlRead(access.ref, access.index))
        if access.kind == "map":
            token = getattr(access, "token")
            return self.emit(ir.MapValue(token, access.elem_ty))
        raise NclTypeError("unreadable access", ctx.loc)

    def store_access(self, access: _Access, value: ir.Value, ctx: ast.Expr) -> None:
        if access.kind == "local":
            assert access.slot is not None
            self.emit(ir.Store(access.slot, value))
            return
        if access.kind == "param":
            assert access.param is not None and access.index is not None
            self.emit(ir.StoreParam(access.param, access.index, value))
            return
        if access.kind == "global":
            assert access.ref is not None and access.index is not None
            self.emit(ir.StoreElem(access.ref, access.index, value))
            return
        raise NclTypeError("cannot assign to this expression", ctx.loc)

    # -- calls -----------------------------------------------------------------

    def lower_call(self, expr: ast.Call) -> ir.Value:
        name = expr.name
        if name in ("_drop", "_bcast", "_reflect", "_pass"):
            label = None
            if name == "_pass" and expr.args:
                arg = expr.args[0]
                assert isinstance(arg, ast.StrLit)
                label = arg.value
            return self.emit(ir.Fwd(ir.FwdKind.from_intrinsic(name), label))
        if name == "memcpy":
            return self.lower_memcpy(expr)
        if name == "_locid":
            arg = expr.args[0]
            assert isinstance(arg, ast.StrLit)
            return self.emit(ir.LocLabel(arg.value))
        if name in ("ncl::bf_insert", "ncl::bf_query"):
            ref = self._global_for(expr.args[0])
            key = self.lower_expr(expr.args[1])
            op = "insert" if name.endswith("insert") else "query"
            return self.emit(ir.BloomOp(ref, op, key))
        if name.startswith("ncl::"):
            raise NclTypeError(
                f"{name} is host runtime API and cannot appear in kernel/helper "
                "code lowered to NIR",
                expr.loc,
            )
        callee = self.module.functions.get(name)
        if callee is None:
            raise NclTypeError(f"call to unknown function {name!r}", expr.loc)
        args = []
        for arg_expr, param in zip(expr.args, callee.params):
            value = self.lower_expr(arg_expr)
            if param.ty.is_scalar:
                value = self.coerce(value, param.ty, arg_expr)
            args.append(value)
        return self.emit(ir.CallFn(callee, args))

    def lower_memcpy(self, expr: ast.Call) -> ir.Value:
        dst, dst_off = self.lower_region(expr.args[0])
        src, src_off = self.lower_region(expr.args[1])
        nbytes = self.lower_expr(expr.args[2])
        nbytes = self.coerce(nbytes, U32, expr.args[2])
        return self.emit(ir.Memcpy(dst, dst_off, src, src_off, nbytes))

    def lower_region(self, expr: ast.Expr) -> Tuple[ir.MemRegion, ir.Value]:
        """Resolve a memcpy argument to a region + element offset."""
        node = expr
        if isinstance(node, ast.Unary) and node.op == "&":
            node = node.operand
        # Bare identifier: param pointer or whole global array.
        if isinstance(node, ast.Ident):
            binding = self.env.get(node.name)
            if isinstance(binding, ir.Param):
                return ir.MemRegion("param", param=binding), self.const(0, U32)
            sym = node.decl
            if isinstance(sym, Symbol) and sym.name in self.module.globals:
                ref = self.module.globals[sym.name]
                return ir.MemRegion("global", ref=ref), self.const(0, U32)
            raise NclTypeError("bad memcpy operand", node.loc)
        if isinstance(node, ast.Index):
            indices: List[ast.Expr] = []
            walker: ast.Expr = node
            while isinstance(walker, ast.Index):
                indices.append(walker.index)
                walker = walker.base
            indices.reverse()
            base = walker
            if isinstance(base, ast.Ident):
                binding = self.env.get(base.name)
                if isinstance(binding, ir.Param):
                    if len(indices) != 1:
                        raise NclTypeError("pointer params are 1-D", node.loc)
                    off = self._index_value(indices[0])
                    return ir.MemRegion("param", param=binding), off
                sym = base.decl
                if isinstance(sym, Symbol) and sym.name in self.module.globals:
                    ref = self.module.globals[sym.name]
                    if not isinstance(ref.ty, ArrayType):
                        raise NclTypeError("memcpy needs an array global", node.loc)
                    off = self._partial_linearize(ref.ty, indices, node)
                    return ir.MemRegion("global", ref=ref), off
        raise NclTypeError("unsupported memcpy operand", expr.loc)

    def _partial_linearize(
        self, array_ty: ArrayType, indices: List[ast.Expr], expr: ast.Expr
    ) -> ir.Value:
        """Like _linearize but allows fewer indices than dimensions
        (row addressing: Cache[*idx] selects a 128-element row)."""
        dims: List[int] = []
        elem: Type = array_ty
        while isinstance(elem, ArrayType):
            dims.append(elem.length)
            elem = elem.element
        if len(indices) > len(dims):
            raise NclTypeError("too many indices", expr.loc)
        linear: Optional[ir.Value] = None
        for dim_idx, index_expr in enumerate(indices):
            idx = self._index_value(index_expr)
            stride = 1
            for d in dims[dim_idx + 1 :]:
                stride *= d
            if stride != 1:
                idx = self.emit(ir.BinOp("mul", idx, self.const(stride, U32), U32))
            linear = (
                idx if linear is None else self.emit(ir.BinOp("add", linear, idx, U32))
            )
        return linear if linear is not None else self.const(0, U32)

    # -- coercions ---------------------------------------------------------------

    def as_bool(self, value: ir.Value) -> ir.Value:
        if value.ty == BOOL:
            return value
        if value.ty.is_pointer:
            return self.emit(ir.MapFound(value))
        return self.emit(ir.Cast("bool", value, BOOL))

    def coerce(self, value: ir.Value, to_ty: Type, ctx: ast.Expr) -> ir.Value:
        if value.ty == to_ty or not to_ty.is_scalar:
            return value
        if isinstance(value, ir.Const):
            from repro.util.intops import wrap

            bits = scalar_bits(to_ty)
            return ir.Const(to_ty, wrap(value.value, bits, is_signed(to_ty)))
        if to_ty == BOOL:
            return self.as_bool(value)
        from_bits = scalar_bits(value.ty)
        to_bits = scalar_bits(to_ty)
        if from_bits == to_bits:
            kind = "zext"  # same width re-signing: bit pattern preserved
        elif from_bits < to_bits:
            kind = "sext" if is_signed(value.ty) else "zext"
        else:
            kind = "trunc"
        return self.emit(ir.Cast(kind, value, to_ty))


def _arith_op(op: str, ty: Type, loc=None) -> str:
    signed = is_signed(ty) if ty.is_scalar else False
    table = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "sdiv" if signed else "udiv",
        "%": "srem" if signed else "urem",
        "<<": "shl",
        ">>": "ashr" if signed else "lshr",
        "&": "and",
        "|": "or",
        "^": "xor",
    }
    if op not in table:
        raise NclTypeError(f"unknown arithmetic operator {op!r}", loc)
    return table[op]


def _flatten_init(gvar: ast.GlobalVar) -> Optional[List[int]]:
    """Evaluate a file-scope initializer to a flat element list.

    Follows C aggregate-initialization: missing elements are zero, a
    braced list distributes over rows of 2-D arrays, and ``{0}`` /
    ``{false}`` zero-fill.
    """
    from repro.ncl.parser import const_eval

    ty = gvar.ty
    if gvar.init is None:
        return None
    if not isinstance(ty, ArrayType):
        init = gvar.init
        if isinstance(init, list):
            init = init[0] if init else None
        value = const_eval(init) if init is not None else 0
        if value is None:
            raise NclTypeError("global initializer must be constant", gvar.loc)
        return [value]
    total = ty.total_elements
    flat = [0] * total
    init = gvar.init
    if not isinstance(init, list):
        raise NclTypeError("array initializer must be braced", gvar.loc)

    def fill(items: list, base: int, sub_ty: Type) -> None:
        if not isinstance(sub_ty, ArrayType):
            return
        elem_ty = sub_ty.element
        elem_size = (
            elem_ty.total_elements if isinstance(elem_ty, ArrayType) else 1
        )
        for i, item in enumerate(items):
            if isinstance(item, list):
                fill(item, base + i * elem_size, elem_ty)
            else:
                value = const_eval(item)
                if value is None:
                    raise NclTypeError("initializer must be constant", gvar.loc)
                flat[base + i * elem_size] = value

    fill(init, 0, ty)
    return flat


def _prune_unreachable(fn: ir.Function) -> None:
    """Drop blocks unreachable from the entry (dead merge blocks etc.)."""
    reachable = set()
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if block in reachable:
            continue
        reachable.add(block)
        stack.extend(block.successors())
    fn.blocks = [b for b in fn.blocks if b in reachable]


def lower_unit(
    unit: TranslationUnit, name: str = "ncl", lenient: bool = False
) -> ir.Module:
    """Lower an analyzed translation unit to a NIR module.

    ``lenient=True`` drops functions/globals that fail to lower instead
    of raising -- used by the linter after error recovery, so analyses
    still see the parts of the program that are well-formed.
    """
    return ModuleLowerer(unit, name, lenient=lenient).lower()
