"""CFG analyses for NIR: dominators, dominance frontiers, orderings.

Implements the Cooper-Harvey-Kennedy iterative dominator algorithm, which
is simple and fast at the CFG sizes NCL kernels produce.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.nir.ir import Block, Function


def reverse_postorder(fn: Function) -> List[Block]:
    """Blocks in reverse postorder from the entry (ignores unreachable)."""
    visited: Set[Block] = set()
    order: List[Block] = []

    def visit(block: Block) -> None:
        if block in visited:
            return
        visited.add(block)
        for succ in block.successors():
            visit(succ)
        order.append(block)

    visit(fn.entry)
    order.reverse()
    return order


class DominatorTree:
    """Immediate dominators + dominance frontiers for one function."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.rpo = reverse_postorder(fn)
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.idom: Dict[Block, Optional[Block]] = {}
        self._compute_idoms()
        self.frontiers: Dict[Block, Set[Block]] = {}
        self._compute_frontiers()
        self.children: Dict[Block, List[Block]] = {b: [] for b in self.rpo}
        for block, idom in self.idom.items():
            if idom is not None and idom is not block:
                self.children[idom].append(block)

    def _compute_idoms(self) -> None:
        entry = self.fn.entry
        preds = self.fn.predecessors()
        idom: Dict[Block, Optional[Block]] = {b: None for b in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                candidates = [p for p in preds[block] if idom.get(p) is not None]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = self._intersect(pred, new_idom, idom)
                if idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(
        self, a: Block, b: Block, idom: Dict[Block, Optional[Block]]
    ) -> Block:
        fa, fb = a, b
        while fa is not fb:
            while self._rpo_index[fa] > self._rpo_index[fb]:
                fa = idom[fa]  # type: ignore[assignment]
            while self._rpo_index[fb] > self._rpo_index[fa]:
                fb = idom[fb]  # type: ignore[assignment]
        return fa

    def _compute_frontiers(self) -> None:
        self.frontiers = {b: set() for b in self.rpo}
        preds = self.fn.predecessors()
        for block in self.rpo:
            if len(preds[block]) < 2:
                continue
            for pred in preds[block]:
                if pred not in self._rpo_index:
                    continue
                runner: Optional[Block] = pred
                while runner is not None and runner is not self.idom[block]:
                    self.frontiers[runner].add(block)
                    runner = self.idom[runner]
                    if runner is pred:  # safety against malformed idoms
                        break

    def dominates(self, a: Block, b: Block) -> bool:
        """True if *a* dominates *b* (reflexive)."""
        runner: Optional[Block] = b
        while runner is not None:
            if runner is a:
                return True
            nxt = self.idom.get(runner)
            if nxt is runner:
                return runner is a
            runner = nxt
        return False

    def dom_depth(self, block: Block) -> int:
        depth = 0
        runner = block
        while self.idom.get(runner) is not runner:
            nxt = self.idom.get(runner)
            if nxt is None:
                break
            runner = nxt
            depth += 1
        return depth


def natural_loops(fn: Function) -> List[Dict]:
    """Find natural loops via back edges (tail -> header where header
    dominates tail). Returns [{header, body: set[Block], latches}]."""
    dom = DominatorTree(fn)
    loops: Dict[Block, Dict] = {}
    for block in dom.rpo:
        for succ in block.successors():
            if dom.dominates(succ, block):
                info = loops.setdefault(
                    succ, {"header": succ, "body": {succ}, "latches": []}
                )
                info["latches"].append(block)
                # Walk predecessors backwards from the latch to collect the
                # loop body; the header (already in the body) stops the walk.
                preds = fn.predecessors()
                stack = [block]
                while stack:
                    node = stack.pop()
                    if node in info["body"]:
                        continue
                    info["body"].add(node)
                    stack.extend(preds.get(node, []))
    return list(loops.values())
