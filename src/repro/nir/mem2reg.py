"""SSA construction (mem2reg) for NIR.

Promotes scalar ``Alloca`` slots to SSA registers using the classic
algorithm: phi insertion at iterated dominance frontiers of the stores,
then a renaming walk over the dominator tree.

All NCL locals are scalars (sema rejects local arrays in kernels), and
the lowering only ever touches allocas through ``Load``/``Store``, so
every alloca is promotable.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.nir import ir
from repro.nir.cfg import DominatorTree


def promote_allocas(fn: ir.Function) -> int:
    """Promote all allocas in *fn* to SSA form. Returns #promoted."""
    allocas = [i for i in fn.instructions() if isinstance(i, ir.Alloca)]
    if not allocas:
        return 0
    dom = DominatorTree(fn)
    phi_owner: Dict[ir.Phi, ir.Alloca] = {}

    # 1. Phi insertion at iterated dominance frontiers.
    for alloca in allocas:
        def_blocks: Set[ir.Block] = {
            instr.block
            for instr in fn.instructions()
            if isinstance(instr, ir.Store) and instr.slot is alloca and instr.block
        }
        placed: Set[ir.Block] = set()
        work = list(def_blocks)
        while work:
            block = work.pop()
            for frontier in dom.frontiers.get(block, ()):
                if frontier in placed:
                    continue
                placed.add(frontier)
                phi = ir.Phi(alloca.slot_ty)
                phi.block = frontier
                frontier.instrs.insert(0, phi)
                phi_owner[phi] = alloca
                if frontier not in def_blocks:
                    def_blocks.add(frontier)
                    work.append(frontier)

    # 2. Renaming walk.
    stacks: Dict[ir.Alloca, List[ir.Value]] = {a: [] for a in allocas}
    replacements: Dict[ir.Instr, ir.Value] = {}

    def current(alloca: ir.Alloca) -> ir.Value:
        stack = stacks[alloca]
        return stack[-1] if stack else ir.Undef(alloca.slot_ty)

    def rename(block: ir.Block) -> None:
        pushed: Dict[ir.Alloca, int] = {}
        new_instrs: List[ir.Instr] = []
        for instr in block.instrs:
            if isinstance(instr, ir.Phi) and instr in phi_owner:
                alloca = phi_owner[instr]
                stacks[alloca].append(instr)
                pushed[alloca] = pushed.get(alloca, 0) + 1
                new_instrs.append(instr)
            elif isinstance(instr, ir.Load) and instr.slot in stacks:
                replacements[instr] = current(instr.slot)
            elif isinstance(instr, ir.Store) and instr.slot in stacks:
                value = instr.value
                value = replacements.get(value, value) if isinstance(value, ir.Instr) else value
                stacks[instr.slot].append(value)
                pushed[instr.slot] = pushed.get(instr.slot, 0) + 1
            elif isinstance(instr, ir.Alloca) and instr in stacks:
                pass  # dropped
            else:
                _rewrite_operands(instr, replacements)
                new_instrs.append(instr)
        block.instrs = new_instrs

        for succ in block.successors():
            for phi in succ.phis():
                if phi in phi_owner:
                    phi.add_incoming(current(phi_owner[phi]), block)

        for child in dom.children.get(block, ()):
            rename(child)

        for alloca, count in pushed.items():
            del stacks[alloca][-count:]

    rename(fn.entry)

    # 3. Any remaining references (e.g. phis fed by loads renamed later)
    #    were already rewritten during the walk via `replacements`, but phi
    #    incomings added before a replacement landed need a second pass.
    for block in fn.blocks:
        for instr in block.instrs:
            _rewrite_operands(instr, replacements)

    # Prune trivial phis (single unique incoming value) repeatedly.
    _prune_trivial_phis(fn, set(phi_owner))
    return len(allocas)


def _rewrite_operands(instr: ir.Instr, replacements: Dict[ir.Instr, ir.Value]) -> None:
    changed = True
    while changed:
        changed = False
        for idx, op in enumerate(instr.operands):
            if isinstance(op, ir.Instr) and op in replacements:
                new = replacements[op]
                instr.operands[idx] = new
                if isinstance(instr, ir.Phi):
                    instr.incoming[idx] = (new, instr.incoming[idx][1])
                changed = True


def _prune_trivial_phis(fn: ir.Function, candidate_phis: Set[ir.Phi]) -> None:
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for phi in list(block.phis()):
                values = [
                    v for v, _ in phi.incoming if v is not phi and not isinstance(v, ir.Undef)
                ]
                unique: List[ir.Value] = []
                for v in values:
                    if not any(_same_value(v, u) for u in unique):
                        unique.append(v)
                if len(unique) == 1:
                    replacement = unique[0]
                    for b in fn.blocks:
                        for instr in b.instrs:
                            instr.replace_operand(phi, replacement)
                    block.instrs.remove(phi)
                    changed = True


def _same_value(a: ir.Value, b: ir.Value) -> bool:
    if a is b:
        return True
    if isinstance(a, ir.Const) and isinstance(b, ir.Const):
        return a == b
    return False
