"""The NIR verifier.

Run after construction and after every pass (the pass manager enforces
this): catches malformed CFGs, dangling values, def-before-use violations
and phi inconsistencies early, the way ``opt -verify`` does for LLVM.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import IrError
from repro.nir import ir
from repro.nir.cfg import DominatorTree


def verify_function(fn: ir.Function) -> None:
    if not fn.blocks:
        raise IrError(f"{fn.name}: function has no blocks")
    _verify_uniqueness(fn)
    _verify_terminators(fn)
    _verify_phis(fn)
    _verify_dominance(fn)


def _verify_uniqueness(fn: ir.Function) -> None:
    """Each instruction object appears in exactly one block, once -- a
    pass that moves code by appending without removing corrupts every
    later analysis keyed by instruction identity."""
    seen: Dict[ir.Instr, str] = {}
    for block in fn.blocks:
        for instr in block.instrs:
            if instr in seen:
                raise IrError(
                    f"{fn.name}: %{instr.id} appears in both "
                    f"{seen[instr]} and {block.label}"
                )
            seen[instr] = block.label
    entry = fn.entry
    for instr in entry.instrs:
        if isinstance(instr, ir.Phi):
            raise IrError(
                f"{fn.name}/{entry.label}: phi %{instr.id} in the entry "
                "block (the entry has no predecessors)"
            )


def verify_module(module: ir.Module) -> None:
    for fn in module.functions.values():
        verify_function(fn)


def _verify_terminators(fn: ir.Function) -> None:
    block_set = set(fn.blocks)
    for block in fn.blocks:
        term = block.terminator
        if term is None:
            raise IrError(f"{fn.name}/{block.label}: missing terminator")
        for instr in block.instrs[:-1]:
            if instr.is_terminator:
                raise IrError(
                    f"{fn.name}/{block.label}: terminator {instr.render()} "
                    "in the middle of a block"
                )
        # Every branch edge must target a block that is still part of this
        # function -- a pass that removed a block but left a stale edge
        # behind is reported here, by field, not at some later traversal.
        if isinstance(term, ir.Br):
            if term.target not in block_set:
                raise IrError(
                    f"{fn.name}/{block.label}: br targets {term.target.label!r}, "
                    "which is not a block of this function"
                )
        elif isinstance(term, ir.CondBr):
            for edge, target in (("then", term.then), ("else", term.other)):
                if target not in block_set:
                    raise IrError(
                        f"{fn.name}/{block.label}: condbr {edge}-edge targets "
                        f"{target.label!r}, which is not a block of this function"
                    )
        for succ in block.successors():
            if succ not in block_set:
                raise IrError(
                    f"{fn.name}/{block.label}: successor {succ.label} not in function"
                )
        for instr in block.instrs:
            if instr.block is not block:
                raise IrError(
                    f"{fn.name}/{block.label}: instruction {instr.render()} has "
                    "stale block pointer"
                )


def _verify_phis(fn: ir.Function) -> None:
    preds = fn.predecessors()
    for block in fn.blocks:
        seen_non_phi = False
        for instr in block.instrs:
            if isinstance(instr, ir.Phi):
                if seen_non_phi:
                    raise IrError(
                        f"{fn.name}/{block.label}: phi after non-phi instruction"
                    )
                incoming_blocks = [b for _, b in instr.incoming]
                if len(instr.incoming) != len(set(preds[block])):
                    raise IrError(
                        f"{fn.name}/{block.label}: phi %{instr.id} has "
                        f"{len(instr.incoming)} incoming values but the block "
                        f"has {len(set(preds[block]))} predecessors"
                    )
                if set(incoming_blocks) != set(preds[block]):
                    raise IrError(
                        f"{fn.name}/{block.label}: phi %{instr.id} incoming blocks "
                        f"{[b.label for b in incoming_blocks]} != predecessors "
                        f"{[b.label for b in preds[block]]}"
                    )
                if len(incoming_blocks) != len(set(incoming_blocks)):
                    raise IrError(
                        f"{fn.name}/{block.label}: phi %{instr.id} duplicate "
                        "incoming block"
                    )
            else:
                seen_non_phi = True


def _verify_dominance(fn: ir.Function) -> None:
    """Every use of an instruction result must be dominated by its def."""
    dom = DominatorTree(fn)
    reachable = set(dom.rpo)
    positions: Dict[ir.Instr, int] = {}
    for block in fn.blocks:
        for idx, instr in enumerate(block.instrs):
            positions[instr] = idx
    for block in fn.blocks:
        if block not in reachable:
            continue
        for instr in block.instrs:
            if isinstance(instr, ir.Phi):
                for value, pred in instr.incoming:
                    _check_phi_use(fn, dom, instr, value, pred, positions)
                continue
            for op in instr.operands:
                if not isinstance(op, ir.Instr):
                    continue
                def_block = op.block
                if def_block is None or def_block not in reachable:
                    raise IrError(
                        f"{fn.name}: %{instr.id} uses %{op.id} from an "
                        "unreachable/detached block"
                    )
                if def_block is block:
                    if positions[op] >= positions[instr]:
                        raise IrError(
                            f"{fn.name}/{block.label}: %{instr.id} uses %{op.id} "
                            "before definition"
                        )
                elif not dom.dominates(def_block, block):
                    raise IrError(
                        f"{fn.name}: %{instr.id} in {block.label} uses %{op.id} "
                        f"defined in non-dominating {def_block.label}"
                    )


def _check_phi_use(fn, dom, phi, value, pred, positions) -> None:
    if not isinstance(value, ir.Instr):
        return
    def_block = value.block
    if def_block is None:
        raise IrError(f"{fn.name}: phi %{phi.id} uses detached %{value.id}")
    if not dom.dominates(def_block, pred):
        raise IrError(
            f"{fn.name}: phi %{phi.id} incoming %{value.id} from {pred.label} "
            f"not dominated by def in {def_block.label}"
        )
