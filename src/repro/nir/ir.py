"""NIR -- the NCL intermediate representation.

NIR plays the role LLVM IR plays in the paper's nclc (Fig 6): a typed,
register-based IR over basic blocks, constructed from the NCL AST, put
into SSA form, optimized, and finally lowered to the P4-like switch
target (or interpreted directly on hosts).

Value taxonomy
--------------
* :class:`Const` -- typed integer/bool constant.
* :class:`Param` -- a kernel/function parameter (scalar value or the
  base of a pointer parameter).
* :class:`Undef` -- explicit undefined value (from uninitialized locals).
* :class:`Instr` subclasses -- every instruction that produces a result.

Memory model
------------
Scalars live in SSA registers after mem2reg. Aggregate state is accessed
through dedicated instructions naming the symbol they touch:

* ``LoadElem``/``StoreElem`` -- switch memory (``_net_`` arrays) and host
  global arrays, with a linearized element index;
* ``LoadParam``/``StoreParam`` -- window data / ``_ext_`` host buffers
  reached through pointer parameters;
* ``CtrlRead`` -- ``_ctrl_`` variables (never written from kernel code);
* ``MapLookup``/``MapFound``/``MapValue`` -- ``ncl::Map`` access;
* ``Memcpy`` -- bulk copy between parameter/global windows of elements.

Forwarding decisions (``_drop``/``_pass``/``_bcast``/``_reflect``) are
modelled by :class:`Fwd`, which writes the per-window decision register;
the last executed ``Fwd`` wins, default is ``pass`` (paper S4.1).
"""

from __future__ import annotations

import itertools
from enum import Enum, auto
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import IrError
from repro.ncl.types import (
    ArrayType,
    BloomFilterType,
    BOOL,
    MapType,
    PointerType,
    Type,
    U16,
)


class FwdKind(Enum):
    """The four forwarding decisions an outgoing kernel can make."""

    PASS = auto()
    DROP = auto()
    BCAST = auto()
    REFLECT = auto()

    @classmethod
    def from_intrinsic(cls, name: str) -> "FwdKind":
        return {
            "_pass": cls.PASS,
            "_drop": cls.DROP,
            "_bcast": cls.BCAST,
            "_reflect": cls.REFLECT,
        }[name]


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Value:
    """Anything an instruction may consume."""

    ty: Type

    def short(self) -> str:
        raise NotImplementedError


class Const(Value):
    __slots__ = ("ty", "value")

    def __init__(self, ty: Type, value: int):
        self.ty = ty
        self.value = int(value)

    def short(self) -> str:
        return f"{self.value}:{self.ty!r}"

    def __repr__(self) -> str:
        return f"Const({self.short()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and (self.ty, self.value) == (other.ty, other.value)

    def __hash__(self) -> int:
        return hash((self.ty, self.value))


class Undef(Value):
    __slots__ = ("ty",)

    def __init__(self, ty: Type):
        self.ty = ty

    def short(self) -> str:
        return f"undef:{self.ty!r}"

    def __repr__(self) -> str:
        return f"Undef({self.ty!r})"


class Param(Value):
    """A function parameter. Pointer params are window-data bases."""

    __slots__ = ("ty", "name", "index", "ext")

    def __init__(self, index: int, name: str, ty: Type, ext: bool = False):
        self.index = index
        self.name = name
        self.ty = ty
        self.ext = ext

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"Param({self.index}, {self.name}, {self.ty!r})"


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

_id_counter = itertools.count()


class Instr(Value):
    """Base instruction. ``operands`` drives generic rewriting/analysis."""

    mnemonic = "?"
    has_side_effects = False
    is_terminator = False

    def __init__(self, ty: Type, operands: Sequence[Value] = ()):
        self.ty = ty
        self.operands: List[Value] = list(operands)
        self.id = next(_id_counter)
        self.block: Optional["Block"] = None
        #: NCL source location of the construct this instruction was
        #: lowered from (stamped by the lowerer; None for synthetic IR).
        self.loc = None

    def short(self) -> str:
        return f"%{self.id}"

    def replace_operand(self, old: Value, new: Value) -> None:
        self.operands = [new if op is old else op for op in self.operands]

    def render(self) -> str:
        ops = ", ".join(op.short() for op in self.operands)
        return f"%{self.id} = {self.mnemonic} {ops}".rstrip()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} %{self.id}>"


class BinOp(Instr):
    """Arithmetic/bitwise/comparison. ``op`` is one of:

    add sub mul udiv sdiv urem srem shl lshr ashr and or xor
    eq ne ult ule ugt uge slt sle sgt sge
    """

    COMPARES = frozenset("eq ne ult ule ugt uge slt sle sgt sge".split())
    ARITH = frozenset("add sub mul udiv sdiv urem srem shl lshr ashr and or xor".split())

    def __init__(self, op: str, lhs: Value, rhs: Value, ty: Type):
        if op not in self.COMPARES and op not in self.ARITH:
            raise IrError(f"unknown binop {op!r}")
        super().__init__(BOOL if op in self.COMPARES else ty, (lhs, rhs))
        self.op = op

    mnemonic = "binop"

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return f"%{self.id} = {self.op} {self.operands[0].short()}, {self.operands[1].short()}"


class UnOp(Instr):
    """``neg`` (two's complement), ``not`` (bitwise), ``lnot`` (logical)."""

    def __init__(self, op: str, operand: Value, ty: Type):
        if op not in ("neg", "not", "lnot"):
            raise IrError(f"unknown unop {op!r}")
        super().__init__(BOOL if op == "lnot" else ty, (operand,))
        self.op = op

    mnemonic = "unop"

    def render(self) -> str:
        return f"%{self.id} = {self.op} {self.operands[0].short()}"


class Cast(Instr):
    """zext / sext / trunc / bool (int -> i1 by != 0).

    ``explicit`` distinguishes a cast the programmer wrote from an
    implicit conversion the lowerer inserted; the width-truncation lint
    only warns about the latter.
    """

    def __init__(self, kind: str, operand: Value, to_ty: Type, explicit: bool = False):
        if kind not in ("zext", "sext", "trunc", "bool"):
            raise IrError(f"unknown cast kind {kind!r}")
        super().__init__(to_ty, (operand,))
        self.kind = kind
        self.explicit = explicit

    mnemonic = "cast"

    def render(self) -> str:
        return f"%{self.id} = {self.kind} {self.operands[0].short()} to {self.ty!r}"


class Select(Instr):
    """``select cond, a, b`` -- branch-free ternary."""

    def __init__(self, cond: Value, a: Value, b: Value, ty: Type):
        super().__init__(ty, (cond, a, b))

    mnemonic = "select"


class Alloca(Instr):
    """Stack slot for a scalar local; removed by mem2reg."""

    def __init__(self, slot_ty: Type, name: str):
        super().__init__(PointerType(slot_ty), ())
        self.slot_ty = slot_ty
        self.name = name

    mnemonic = "alloca"

    def render(self) -> str:
        return f"%{self.id} = alloca {self.slot_ty!r}  ; {self.name}"


class Load(Instr):
    def __init__(self, slot: Alloca):
        super().__init__(slot.slot_ty, (slot,))

    mnemonic = "load"

    @property
    def slot(self) -> Alloca:
        slot = self.operands[0]
        assert isinstance(slot, Alloca)
        return slot


class Store(Instr):
    has_side_effects = True

    def __init__(self, slot: Alloca, value: Value):
        from repro.ncl.types import VOID

        super().__init__(VOID, (slot, value))

    mnemonic = "store"

    @property
    def slot(self) -> Alloca:
        slot = self.operands[0]
        assert isinstance(slot, Alloca)
        return slot

    @property
    def value(self) -> Value:
        return self.operands[1]


class GlobalRef:
    """Descriptor of a module-level symbol referenced by instructions."""

    def __init__(
        self,
        name: str,
        ty: Type,
        space: str,  # 'net' | 'ctrl' | 'map' | 'bloom' | 'host'
        at_label: Optional[str] = None,
        init: object = None,
    ):
        self.name = name
        self.ty = ty
        self.space = space
        self.at_label = at_label
        self.init = init

    @property
    def elem_type(self) -> Type:
        if isinstance(self.ty, ArrayType):
            return self.ty.scalar_element
        return self.ty

    @property
    def total_elements(self) -> int:
        if isinstance(self.ty, ArrayType):
            return self.ty.total_elements
        return 1

    def __repr__(self) -> str:
        return f"GlobalRef({self.space} {self.name}: {self.ty!r})"


class LoadElem(Instr):
    """Read one element of a global array (or a scalar global: index 0)."""

    def __init__(self, ref: GlobalRef, index: Value):
        super().__init__(ref.elem_type, (index,))
        self.ref = ref

    mnemonic = "ldelem"

    @property
    def index(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return f"%{self.id} = ldelem {self.ref.name}[{self.operands[0].short()}]"


class StoreElem(Instr):
    has_side_effects = True

    def __init__(self, ref: GlobalRef, index: Value, value: Value):
        from repro.ncl.types import VOID

        super().__init__(VOID, (index, value))
        self.ref = ref

    mnemonic = "stelem"

    @property
    def index(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"stelem {self.ref.name}[{self.operands[0].short()}] = "
            f"{self.operands[1].short()}"
        )


class LoadParam(Instr):
    """Read ``param[index]`` through a pointer parameter (window data)."""

    def __init__(self, param: Param, index: Value):
        pointee = param.ty.pointee if isinstance(param.ty, PointerType) else param.ty
        super().__init__(pointee, (index,))
        self.param = param

    mnemonic = "ldparam"

    @property
    def index(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return f"%{self.id} = ldparam {self.param.name}[{self.operands[0].short()}]"


class StoreParam(Instr):
    has_side_effects = True

    def __init__(self, param: Param, index: Value, value: Value):
        from repro.ncl.types import VOID

        super().__init__(VOID, (index, value))
        self.param = param

    mnemonic = "stparam"

    @property
    def index(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"stparam {self.param.name}[{self.operands[0].short()}] = "
            f"{self.operands[1].short()}"
        )


class WinField(Instr):
    """Read a window-struct field (builtin or user extension)."""

    def __init__(self, field: str, ty: Type):
        super().__init__(ty, ())
        self.field = field

    mnemonic = "winfld"

    def render(self) -> str:
        return f"%{self.id} = winfld .{self.field}"


class LocField(Instr):
    """Read a location-struct field; resolved per switch at versioning."""

    def __init__(self, field: str, ty: Type):
        super().__init__(ty, ())
        self.field = field

    mnemonic = "locfld"

    def render(self) -> str:
        return f"%{self.id} = locfld .{self.field}"


class LocLabel(Instr):
    """``_locid("label")`` -- becomes a Const once the AND is known."""

    def __init__(self, label: str):
        super().__init__(U16, ())
        self.label = label

    mnemonic = "locid"

    def render(self) -> str:
        return f'%{self.id} = locid "{self.label}"'


class CtrlRead(Instr):
    """Read a ``_ctrl_`` variable (scalar, or one element of a ctrl array)."""

    def __init__(self, ref: GlobalRef, index: Optional[Value] = None):
        ops = (index,) if index is not None else ()
        super().__init__(ref.elem_type, ops)
        self.ref = ref

    mnemonic = "ctrlrd"

    @property
    def index(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def render(self) -> str:
        idx = f"[{self.operands[0].short()}]" if self.operands else ""
        return f"%{self.id} = ctrlrd {self.ref.name}{idx}"


class MapLookup(Instr):
    """Look up ``key`` in a Map; yields an opaque lookup token."""

    def __init__(self, ref: GlobalRef, key: Value):
        assert isinstance(ref.ty, MapType)
        super().__init__(PointerType(ref.ty.value), (key,))
        self.ref = ref

    mnemonic = "maplkp"

    @property
    def key(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return f"%{self.id} = maplkp {self.ref.name}[{self.operands[0].short()}]"


class MapFound(Instr):
    """i1: did the lookup hit?"""

    def __init__(self, token: Value):
        super().__init__(BOOL, (token,))

    mnemonic = "mapfnd"


class MapValue(Instr):
    """The value behind a successful lookup (undefined on miss)."""

    def __init__(self, token: Value, value_ty: Type):
        super().__init__(value_ty, (token,))

    mnemonic = "mapval"


class BloomOp(Instr):
    """``insert`` (side effect) or ``query`` (yields i1) on a BloomFilter."""

    def __init__(self, ref: GlobalRef, op: str, key: Value):
        from repro.ncl.types import VOID

        assert isinstance(ref.ty, BloomFilterType)
        if op not in ("insert", "query"):
            raise IrError(f"unknown bloom op {op!r}")
        super().__init__(BOOL if op == "query" else VOID, (key,))
        self.ref = ref
        self.op = op
        self.has_side_effects = op == "insert"

    mnemonic = "bloom"

    def render(self) -> str:
        return f"%{self.id} = bloom.{self.op} {self.ref.name}, {self.operands[0].short()}"


class MemRegion:
    """One side of a memcpy: (param | global) base plus an element offset."""

    def __init__(
        self,
        kind: str,  # 'param' | 'global'
        param: Optional[Param] = None,
        ref: Optional[GlobalRef] = None,
    ):
        if kind not in ("param", "global"):
            raise IrError(f"bad memcpy region kind {kind!r}")
        self.kind = kind
        self.param = param
        self.ref = ref
        if kind == "param" and param is None:
            raise IrError("param region without param")
        if kind == "global" and ref is None:
            raise IrError("global region without ref")

    @property
    def elem_type(self) -> Type:
        if self.kind == "param":
            assert self.param is not None
            ty = self.param.ty
            return ty.pointee if isinstance(ty, PointerType) else ty
        assert self.ref is not None
        return self.ref.elem_type

    @property
    def name(self) -> str:
        return self.param.name if self.kind == "param" else self.ref.name  # type: ignore[union-attr]


class Memcpy(Instr):
    """Bulk copy of ``nbytes`` between two element regions.

    operands = (dst_offset_elems, src_offset_elems, nbytes).
    """

    has_side_effects = True

    def __init__(
        self,
        dst: MemRegion,
        dst_off: Value,
        src: MemRegion,
        src_off: Value,
        nbytes: Value,
    ):
        from repro.ncl.types import VOID

        super().__init__(VOID, (dst_off, src_off, nbytes))
        self.dst = dst
        self.src = src

    mnemonic = "memcpy"

    @property
    def dst_off(self) -> Value:
        return self.operands[0]

    @property
    def src_off(self) -> Value:
        return self.operands[1]

    @property
    def nbytes(self) -> Value:
        return self.operands[2]

    def render(self) -> str:
        return (
            f"memcpy {self.dst.name}+{self.operands[0].short()} <- "
            f"{self.src.name}+{self.operands[1].short()}, {self.operands[2].short()}B"
        )


class Fwd(Instr):
    """Set the window forwarding decision (last writer wins)."""

    has_side_effects = True

    def __init__(self, kind: FwdKind, label: Optional[str] = None):
        from repro.ncl.types import VOID

        super().__init__(VOID, ())
        self.kind = kind
        self.label = label

    mnemonic = "fwd"

    def render(self) -> str:
        suffix = f' "{self.label}"' if self.label else ""
        return f"fwd {self.kind.name.lower()}{suffix}"


class CallFn(Instr):
    """Direct call to a helper function (always inlined before lowering)."""

    has_side_effects = True

    def __init__(self, callee: "Function", args: Sequence[Value]):
        super().__init__(callee.ret, args)
        self.callee = callee

    mnemonic = "call"

    def render(self) -> str:
        args = ", ".join(op.short() for op in self.operands)
        return f"%{self.id} = call {self.callee.name}({args})"


class Phi(Instr):
    def __init__(self, ty: Type):
        super().__init__(ty, ())
        self.incoming: List[Tuple[Value, "Block"]] = []

    mnemonic = "phi"

    def add_incoming(self, value: Value, block: "Block") -> None:
        self.incoming.append((value, block))
        self.operands.append(value)

    def set_incoming(self, idx: int, value: Value) -> None:
        self.incoming[idx] = (value, self.incoming[idx][1])
        self.operands[idx] = value

    def replace_operand(self, old: Value, new: Value) -> None:
        super().replace_operand(old, new)
        self.incoming = [
            (new if val is old else val, blk) for val, blk in self.incoming
        ]

    def render(self) -> str:
        parts = ", ".join(f"[{v.short()}, {b.label}]" for v, b in self.incoming)
        return f"%{self.id} = phi {parts}"


# Terminators ----------------------------------------------------------------


class Br(Instr):
    is_terminator = True
    has_side_effects = True

    def __init__(self, target: "Block"):
        from repro.ncl.types import VOID

        super().__init__(VOID, ())
        self.target = target

    mnemonic = "br"

    def successors(self) -> List["Block"]:
        return [self.target]

    def render(self) -> str:
        return f"br {self.target.label}"


class CondBr(Instr):
    is_terminator = True
    has_side_effects = True

    def __init__(self, cond: Value, then: "Block", other: "Block"):
        from repro.ncl.types import VOID

        super().__init__(VOID, (cond,))
        self.then = then
        self.other = other

    mnemonic = "condbr"

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def successors(self) -> List["Block"]:
        return [self.then, self.other]

    def render(self) -> str:
        return f"condbr {self.operands[0].short()}, {self.then.label}, {self.other.label}"


class Ret(Instr):
    is_terminator = True
    has_side_effects = True

    def __init__(self, value: Optional[Value] = None):
        from repro.ncl.types import VOID

        super().__init__(VOID, (value,) if value is not None else ())

    mnemonic = "ret"

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> List["Block"]:
        return []

    def render(self) -> str:
        return f"ret {self.operands[0].short()}" if self.operands else "ret"


TERMINATORS = (Br, CondBr, Ret)


# ---------------------------------------------------------------------------
# Blocks, functions, modules
# ---------------------------------------------------------------------------


class Block:
    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> List["Block"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]

    def append(self, instr: Instr) -> Instr:
        if self.terminator is not None:
            raise IrError(f"appending after terminator in {self.label}")
        instr.block = self
        self.instrs.append(instr)
        return instr

    def phis(self) -> List[Phi]:
        return [i for i in self.instrs if isinstance(i, Phi)]

    def non_phis(self) -> List[Instr]:
        return [i for i in self.instrs if not isinstance(i, Phi)]

    def render(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr.render()}" for instr in self.instrs)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Block({self.label})"


class FunctionKind(Enum):
    OUT_KERNEL = auto()
    IN_KERNEL = auto()
    HELPER = auto()


class Function:
    def __init__(
        self,
        name: str,
        kind: FunctionKind,
        params: List[Param],
        ret: Type,
        at_label: Optional[str] = None,
    ):
        self.name = name
        self.kind = kind
        self.params = params
        self.ret = ret
        self.at_label = at_label
        self.blocks: List[Block] = []
        self._label_counter = 0

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IrError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, hint: str = "bb") -> Block:
        label = f"{hint}{self._label_counter}"
        self._label_counter += 1
        block = Block(label)
        self.blocks.append(block)
        return block

    def instructions(self) -> Iterable[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def predecessors(self) -> Dict[Block, List[Block]]:
        preds: Dict[Block, List[Block]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def remove_block(self, block: Block) -> None:
        self.blocks.remove(block)

    def render(self) -> str:
        params = ", ".join(
            f"{'_ext_ ' if p.ext else ''}{p.name}: {p.ty!r}" for p in self.params
        )
        head = f"func {self.name}({params}) -> {self.ret!r} [{self.kind.name}]"
        if self.at_label:
            head += f' @ "{self.at_label}"'
        body = "\n".join(block.render() for block in self.blocks)
        return f"{head}\n{body}"

    def __repr__(self) -> str:
        return f"Function({self.name}, {self.kind.name})"


class Module:
    """A set of functions plus the global symbols they reference.

    One module is produced per compilation; IR versioning (nclc stage 2)
    clones it per AND location.
    """

    def __init__(self, name: str):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalRef] = {}
        self.window_fields: List[Tuple[str, Type]] = []

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IrError(f"duplicate function {fn.name}")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, ref: GlobalRef) -> GlobalRef:
        if ref.name in self.globals:
            raise IrError(f"duplicate global {ref.name}")
        self.globals[ref.name] = ref
        return ref

    def kernels(self, kind: Optional[FunctionKind] = None) -> List[Function]:
        out = []
        for fn in self.functions.values():
            if fn.kind is FunctionKind.HELPER:
                continue
            if kind is None or fn.kind is kind:
                out.append(fn)
        return out

    def render(self) -> str:
        lines = [f"module {self.name}"]
        for ref in self.globals.values():
            lines.append(f"  global {ref.space} {ref.name}: {ref.ty!r}")
        for fn in self.functions.values():
            lines.append("")
            lines.append(fn.render())
        return "\n".join(lines)
