"""NIR interpreter.

Executes a kernel function against a window and some device state. This
is the *reference semantics* of NCL: the PISA-compiled switch program is
differentially tested against it, and hosts use it directly to run
incoming kernels (the "host binary" of the paper's dual pipeline).

The interpreter is deliberately strict: out-of-bounds element accesses
raise instead of wrapping, because on a real switch they would be
compile-time-impossible (register arrays are sized) and we want tests to
catch miscompiled indices.
"""

from __future__ import annotations

from typing import Callable, Dict, List, MutableSequence, Optional, Sequence, Tuple

from repro.errors import PisaError
from repro.ncl.types import (
    ArrayType,
    BloomFilterType,
    MapType,
    PointerType,
    Type,
    is_signed,
    scalar_bits,
    sizeof,
)
from repro.nir import ir
from repro.util import intops


class MapState:
    """Runtime state of an ``ncl::Map``: an exact-match table whose entries
    are inserted/removed by the control plane only."""

    def __init__(self, ty: MapType):
        self.ty = ty
        self.entries: Dict[int, int] = {}

    def insert(self, key: int, value: int) -> None:
        if len(self.entries) >= self.ty.capacity and key not in self.entries:
            raise PisaError(
                f"Map capacity exceeded ({self.ty.capacity} entries)"
            )
        self.entries[int(key)] = int(value)

    def erase(self, key: int) -> None:
        self.entries.pop(int(key), None)

    def lookup(self, key: int) -> Tuple[bool, int]:
        key = int(key)
        if key in self.entries:
            return True, self.entries[key]
        return False, 0


class BloomState:
    """Runtime state of an ``ncl::BloomFilter``."""

    def __init__(self, ty: BloomFilterType):
        self.ty = ty
        self.bits = [0] * ty.nbits

    def _positions(self, key: int) -> List[int]:
        positions = []
        h = key & 0xFFFFFFFFFFFFFFFF
        for i in range(self.ty.nhashes):
            # Simple multiplicative double hashing; deterministic across runs.
            h1 = (h * 0x9E3779B97F4A7C15 + i) & 0xFFFFFFFFFFFFFFFF
            h2 = (h ^ (h >> 33)) * 0xC2B2AE3D27D4EB4F & 0xFFFFFFFFFFFFFFFF
            positions.append((h1 + i * h2) % self.ty.nbits)
        return positions

    def insert(self, key: int) -> None:
        for pos in self._positions(key):
            self.bits[pos] = 1

    def query(self, key: int) -> bool:
        return all(self.bits[pos] for pos in self._positions(key))


class DeviceState:
    """Mutable state of one NCP-capable device (switch or host side).

    ``arrays`` holds ``_net_`` register arrays (and host globals when the
    interpreter runs incoming kernels); ``ctrl`` holds control variables;
    ``maps``/``blooms`` the stdlib containers.
    """

    def __init__(self) -> None:
        self.arrays: Dict[str, List[int]] = {}
        self.ctrl: Dict[str, object] = {}
        self.maps: Dict[str, MapState] = {}
        self.blooms: Dict[str, BloomState] = {}

    @classmethod
    def from_module(
        cls, module: ir.Module, location: Optional[str] = None
    ) -> "DeviceState":
        """Instantiate state for all globals visible at *location*.

        ``location=None`` instantiates everything (useful for tests);
        otherwise only location-less globals and those pinned to the
        given label exist on the device (paper S4.1).
        """
        state = cls()
        for ref in module.globals.values():
            if ref.space == "host":
                continue
            if location is not None and ref.at_label is not None and ref.at_label != location:
                continue
            state.instantiate(ref)
        return state

    def instantiate(self, ref: ir.GlobalRef) -> None:
        if ref.space == "map":
            assert isinstance(ref.ty, MapType)
            self.maps[ref.name] = MapState(ref.ty)
        elif ref.space == "bloom":
            assert isinstance(ref.ty, BloomFilterType)
            self.blooms[ref.name] = BloomState(ref.ty)
        elif ref.space == "ctrl":
            if isinstance(ref.ty, ArrayType):
                init = ref.init if ref.init is not None else [0] * ref.total_elements
                self.ctrl[ref.name] = list(init)
            else:
                self.ctrl[ref.name] = ref.init[0] if ref.init else 0
        else:
            init = ref.init if ref.init is not None else [0] * ref.total_elements
            values = list(init)
            if len(values) < ref.total_elements:
                values.extend([0] * (ref.total_elements - len(values)))
            self.arrays[ref.name] = values

    def ctrl_write(self, name: str, value, index: Optional[int] = None) -> None:
        """Control-plane write to a _ctrl_ variable (host-only path)."""
        if name not in self.ctrl:
            raise PisaError(f"unknown control variable {name!r}")
        if index is None:
            self.ctrl[name] = value
        else:
            self.ctrl[name][index] = value  # type: ignore[index]

    def snapshot(self) -> Dict[str, object]:
        return {
            "arrays": {k: list(v) for k, v in self.arrays.items()},
            "ctrl": {
                k: (list(v) if isinstance(v, list) else v) for k, v in self.ctrl.items()
            },
            "maps": {k: dict(v.entries) for k, v in self.maps.items()},
        }


class WindowContext:
    """Everything a kernel invocation sees about the current window."""

    def __init__(
        self,
        meta: Dict[str, int],
        args: Sequence[object],
        location_id: int = 0,
        location_labels: Optional[Dict[str, int]] = None,
    ):
        self.meta = dict(meta)
        self.args = list(args)
        self.location_id = location_id
        self.location_labels = dict(location_labels or {})


class InterpResult:
    """Outcome of interpreting a kernel on one window."""

    def __init__(self, fwd: ir.FwdKind, fwd_label: Optional[str], ret: Optional[int]):
        self.fwd = fwd
        self.fwd_label = fwd_label
        self.ret = ret

    def __repr__(self) -> str:
        label = f' "{self.fwd_label}"' if self.fwd_label else ""
        return f"InterpResult({self.fwd.name.lower()}{label})"


_MAX_STEPS = 1_000_000


class Interpreter:
    def __init__(self, module: ir.Module, state: DeviceState):
        self.module = module
        self.state = state

    def run(self, fn: ir.Function, ctx: WindowContext) -> InterpResult:
        if len(ctx.args) != len(fn.params):
            raise PisaError(
                f"{fn.name}: expected {len(fn.params)} args, got {len(ctx.args)}"
            )
        return _FrameInterp(self, fn, ctx).run()


class _FrameInterp:
    def __init__(self, parent: Interpreter, fn: ir.Function, ctx: WindowContext):
        self.parent = parent
        self.state = parent.state
        self.module = parent.module
        self.fn = fn
        self.ctx = ctx
        self.values: Dict[int, object] = {}
        self.fwd = ir.FwdKind.PASS
        self.fwd_label: Optional[str] = None
        self.steps = 0

    # -- value plumbing -----------------------------------------------------

    def value_of(self, value: ir.Value) -> object:
        if isinstance(value, ir.Const):
            return value.value
        if isinstance(value, ir.Param):
            return self.ctx.args[value.index]
        if isinstance(value, ir.Undef):
            return 0
        if isinstance(value, ir.Instr):
            if value.id not in self.values:
                raise PisaError(f"use of unevaluated %{value.id} ({value.render()})")
            return self.values[value.id]
        raise PisaError(f"cannot evaluate {value!r}")

    def int_of(self, value: ir.Value) -> int:
        v = self.value_of(value)
        if not isinstance(v, int):
            raise PisaError(f"expected integer, got {type(v).__name__}")
        return v

    def _wrap(self, raw: int, ty: Type) -> int:
        if not ty.is_scalar:
            return raw
        return intops.wrap(raw, scalar_bits(ty), is_signed(ty))

    # -- execution loop ---------------------------------------------------------

    def run(self) -> InterpResult:
        block = self.fn.entry
        prev_block: Optional[ir.Block] = None
        while True:
            # Phis evaluate in parallel against the incoming edge.
            phi_updates: List[Tuple[ir.Phi, object]] = []
            for phi in block.phis():
                for value, pred in phi.incoming:
                    if pred is prev_block:
                        phi_updates.append((phi, self.value_of(value)))
                        break
                else:
                    if prev_block is not None:
                        raise PisaError(
                            f"phi %{phi.id} has no incoming for {prev_block.label}"
                        )
                    phi_updates.append((phi, 0))
            for phi, value in phi_updates:
                self.values[phi.id] = value

            for instr in block.non_phis():
                self.steps += 1
                if self.steps > _MAX_STEPS:
                    raise PisaError(f"{self.fn.name}: step budget exceeded")
                result = self.execute(instr)
                if isinstance(result, _Jump):
                    prev_block, block = block, result.target
                    break
                if isinstance(result, _Return):
                    return InterpResult(self.fwd, self.fwd_label, result.value)
            else:
                raise PisaError(f"{self.fn.name}/{block.label}: fell off block end")

    # -- instruction semantics --------------------------------------------------

    def execute(self, instr: ir.Instr):
        if isinstance(instr, ir.BinOp):
            self.values[instr.id] = self.exec_binop(instr)
        elif isinstance(instr, ir.UnOp):
            self.values[instr.id] = self.exec_unop(instr)
        elif isinstance(instr, ir.Cast):
            self.values[instr.id] = self.exec_cast(instr)
        elif isinstance(instr, ir.Select):
            cond = self.int_of(instr.operands[0])
            self.values[instr.id] = self.value_of(
                instr.operands[1] if cond else instr.operands[2]
            )
        elif isinstance(instr, ir.Load):
            # Pre-mem2reg IR: emulate the stack slot via a dict.
            self.values[instr.id] = self.values.get(("slot", instr.slot.id), 0)
        elif isinstance(instr, ir.Store):
            self.values[("slot", instr.slot.id)] = self.value_of(instr.value)
        elif isinstance(instr, ir.Alloca):
            self.values.setdefault(("slot", instr.id), 0)
        elif isinstance(instr, ir.LoadElem):
            self.values[instr.id] = self.exec_load_elem(instr)
        elif isinstance(instr, ir.StoreElem):
            self.exec_store_elem(instr)
        elif isinstance(instr, ir.LoadParam):
            self.values[instr.id] = self.exec_load_param(instr)
        elif isinstance(instr, ir.StoreParam):
            self.exec_store_param(instr)
        elif isinstance(instr, ir.WinField):
            if instr.field not in self.ctx.meta:
                raise PisaError(f"window field {instr.field!r} not bound")
            self.values[instr.id] = self.ctx.meta[instr.field]
        elif isinstance(instr, ir.LocField):
            if instr.field != "id":
                raise PisaError(f"unknown location field {instr.field!r}")
            self.values[instr.id] = self.ctx.location_id
        elif isinstance(instr, ir.LocLabel):
            if instr.label not in self.ctx.location_labels:
                raise PisaError(f"unresolved location label {instr.label!r}")
            self.values[instr.id] = self.ctx.location_labels[instr.label]
        elif isinstance(instr, ir.CtrlRead):
            self.values[instr.id] = self.exec_ctrl_read(instr)
        elif isinstance(instr, ir.MapLookup):
            state = self.state.maps.get(instr.ref.name)
            if state is None:
                raise PisaError(f"Map {instr.ref.name!r} not present on device")
            found, value = state.lookup(self.int_of(instr.key))
            self.values[instr.id] = ("maptok", found, value)
        elif isinstance(instr, ir.MapFound):
            token = self.value_of(instr.operands[0])
            self.values[instr.id] = int(self._token(token)[1])
        elif isinstance(instr, ir.MapValue):
            token = self.value_of(instr.operands[0])
            self.values[instr.id] = self._token(token)[2]
        elif isinstance(instr, ir.BloomOp):
            bloom = self.state.blooms.get(instr.ref.name)
            if bloom is None:
                raise PisaError(f"BloomFilter {instr.ref.name!r} not on device")
            key = self.int_of(instr.operands[0])
            if instr.op == "insert":
                bloom.insert(key)
            else:
                self.values[instr.id] = int(bloom.query(key))
        elif isinstance(instr, ir.Memcpy):
            self.exec_memcpy(instr)
        elif isinstance(instr, ir.Fwd):
            self.fwd = instr.kind
            self.fwd_label = instr.label
        elif isinstance(instr, ir.CallFn):
            self.values[instr.id] = self.exec_call(instr)
        elif isinstance(instr, ir.Br):
            return _Jump(instr.target)
        elif isinstance(instr, ir.CondBr):
            return _Jump(instr.then if self.int_of(instr.cond) else instr.other)
        elif isinstance(instr, ir.Ret):
            value = self.int_of(instr.value) if instr.value is not None else None
            return _Return(value)
        else:
            raise PisaError(f"cannot interpret {instr.render()}")
        return None

    @staticmethod
    def _token(token) -> Tuple[str, bool, int]:
        if not (isinstance(token, tuple) and token and token[0] == "maptok"):
            raise PisaError("expected a Map lookup token")
        return token  # type: ignore[return-value]

    def exec_binop(self, instr: ir.BinOp) -> int:
        a = self.int_of(instr.lhs)
        b = self.int_of(instr.rhs)
        op = instr.op
        ty = instr.ty
        if op in ir.BinOp.COMPARES:
            # Operands were coerced to a common type at lowering; compare
            # directly (signedness baked into the op choice).
            table: Dict[str, Callable[[int, int], bool]] = {
                "eq": lambda x, y: x == y,
                "ne": lambda x, y: x != y,
                "ult": lambda x, y: x < y,
                "ule": lambda x, y: x <= y,
                "ugt": lambda x, y: x > y,
                "uge": lambda x, y: x >= y,
                "slt": lambda x, y: x < y,
                "sle": lambda x, y: x <= y,
                "sgt": lambda x, y: x > y,
                "sge": lambda x, y: x >= y,
            }
            if op.startswith("u"):
                bits = 64
                a = intops.to_unsigned(a, bits)
                b = intops.to_unsigned(b, bits)
            return int(table[op](a, b))
        bits = scalar_bits(ty)
        if op == "add":
            raw = a + b
        elif op == "sub":
            raw = a - b
        elif op == "mul":
            raw = a * b
        elif op == "udiv":
            raw = intops.checked_udiv(intops.to_unsigned(a, bits), intops.to_unsigned(b, bits))
        elif op == "sdiv":
            raw = intops.checked_sdiv(a, b)
        elif op == "urem":
            ua, ub = intops.to_unsigned(a, bits), intops.to_unsigned(b, bits)
            intops.checked_udiv(ua, ub)
            raw = ua % ub
        elif op == "srem":
            raw = intops.checked_srem(a, b)
        elif op == "shl":
            raw = a << intops.shift_amount(b, bits)
        elif op == "lshr":
            raw = intops.to_unsigned(a, bits) >> intops.shift_amount(b, bits)
        elif op == "ashr":
            raw = intops.wrap_signed(a, bits) >> intops.shift_amount(b, bits)
        elif op == "and":
            raw = a & b
        elif op == "or":
            raw = a | b
        elif op == "xor":
            raw = a ^ b
        else:
            raise PisaError(f"unknown binop {op}")
        return self._wrap(raw, ty)

    def exec_unop(self, instr: ir.UnOp) -> int:
        a = self.int_of(instr.operands[0])
        if instr.op == "neg":
            return self._wrap(-a, instr.ty)
        if instr.op == "not":
            return self._wrap(~a, instr.ty)
        return int(not a)

    def exec_cast(self, instr: ir.Cast) -> int:
        a = self.int_of(instr.operands[0])
        src_ty = instr.operands[0].ty
        if instr.kind == "bool":
            return int(a != 0)
        src_bits = scalar_bits(src_ty) if src_ty.is_scalar else 64
        if instr.kind == "zext":
            raw = intops.to_unsigned(a, src_bits)
        elif instr.kind == "sext":
            raw = intops.wrap_signed(a, src_bits)
        else:  # trunc
            raw = a
        return self._wrap(raw, instr.ty)

    def exec_load_elem(self, instr: ir.LoadElem) -> int:
        array = self._array(instr.ref)
        idx = self.int_of(instr.index)
        self._bounds(instr.ref, idx)
        return array[idx]

    def exec_store_elem(self, instr: ir.StoreElem) -> None:
        array = self._array(instr.ref)
        idx = self.int_of(instr.index)
        self._bounds(instr.ref, idx)
        array[idx] = self._wrap(self.int_of(instr.value), instr.ref.elem_type)

    def _array(self, ref: ir.GlobalRef) -> MutableSequence[int]:
        array = self.state.arrays.get(ref.name)
        if array is None:
            raise PisaError(f"global {ref.name!r} not present on device")
        return array

    def _bounds(self, ref: ir.GlobalRef, idx: int) -> None:
        if not 0 <= idx < ref.total_elements:
            raise PisaError(
                f"index {idx} out of range for {ref.name} "
                f"[{ref.total_elements} elements]"
            )

    def exec_load_param(self, instr: ir.LoadParam) -> int:
        buf = self.value_of(instr.param)
        idx = self.int_of(instr.index)
        if isinstance(buf, int):  # scalar parameter, index must be 0
            if idx != 0:
                raise PisaError("indexing a scalar parameter")
            return buf
        try:
            return int(buf[idx])  # type: ignore[index]
        except IndexError:
            raise PisaError(
                f"window-data index {idx} out of range for {instr.param.name}"
            ) from None

    def exec_store_param(self, instr: ir.StoreParam) -> None:
        buf = self.value_of(instr.param)
        idx = self.int_of(instr.index)
        param_ty = instr.param.ty
        elem_ty = param_ty.pointee if isinstance(param_ty, PointerType) else param_ty
        value = self._wrap(self.int_of(instr.value), elem_ty)
        try:
            buf[idx] = value  # type: ignore[index]
        except (IndexError, TypeError):
            raise PisaError(
                f"cannot store to {instr.param.name}[{idx}]"
            ) from None

    def exec_ctrl_read(self, instr: ir.CtrlRead):
        if instr.ref.name not in self.state.ctrl:
            raise PisaError(f"control variable {instr.ref.name!r} not on device")
        value = self.state.ctrl[instr.ref.name]
        if instr.index is not None:
            idx = self.int_of(instr.index)
            return value[idx]  # type: ignore[index]
        return value

    def exec_memcpy(self, instr: ir.Memcpy) -> None:
        nbytes = self.int_of(instr.nbytes)
        dst_elem = sizeof(instr.dst.elem_type)
        src_elem = sizeof(instr.src.elem_type)
        if nbytes % dst_elem or nbytes % src_elem:
            raise PisaError(
                f"memcpy length {nbytes} not a multiple of element sizes "
                f"({dst_elem}/{src_elem})"
            )
        if dst_elem != src_elem:
            raise PisaError("memcpy between different element widths")
        count = nbytes // dst_elem
        src_vals = [
            self._region_read(instr.src, self.int_of(instr.src_off) + i)
            for i in range(count)
        ]
        for i, value in enumerate(src_vals):
            self._region_write(
                instr.dst, self.int_of(instr.dst_off) + i, value
            )

    def _region_read(self, region: ir.MemRegion, idx: int) -> int:
        if region.kind == "param":
            buf = self.value_of(region.param)  # type: ignore[arg-type]
            if isinstance(buf, int):
                if idx != 0:
                    raise PisaError("memcpy overruns scalar parameter")
                return buf
            return int(buf[idx])  # type: ignore[index]
        ref = region.ref
        assert ref is not None
        self._bounds(ref, idx)
        return self._array(ref)[idx]

    def _region_write(self, region: ir.MemRegion, idx: int, value: int) -> None:
        value = self._wrap(value, region.elem_type)
        if region.kind == "param":
            buf = self.value_of(region.param)  # type: ignore[arg-type]
            try:
                buf[idx] = value  # type: ignore[index]
            except (IndexError, TypeError):
                raise PisaError("memcpy overruns parameter buffer") from None
            return
        ref = region.ref
        assert ref is not None
        self._bounds(ref, idx)
        self._array(ref)[idx] = value

    def exec_call(self, instr: ir.CallFn):
        args = [self.value_of(op) for op in instr.operands]
        sub_ctx = WindowContext(
            self.ctx.meta, args, self.ctx.location_id, self.ctx.location_labels
        )
        sub = _FrameInterp(self.parent, instr.callee, sub_ctx)
        result = sub.run()
        # Forwarding decisions made in helpers propagate to the caller.
        if sub.fwd is not ir.FwdKind.PASS or sub.fwd_label:
            self.fwd = sub.fwd
            self.fwd_label = sub.fwd_label
        return result.ret


class _Jump:
    def __init__(self, target: ir.Block):
        self.target = target


class _Return:
    def __init__(self, value: Optional[int]):
        self.value = value


def run_kernel(
    module: ir.Module,
    kernel: str,
    state: DeviceState,
    meta: Dict[str, int],
    args: Sequence[object],
    location_id: int = 0,
    location_labels: Optional[Dict[str, int]] = None,
) -> InterpResult:
    """Convenience wrapper: interpret one kernel over one window."""
    fn = module.functions[kernel]
    ctx = WindowContext(meta, args, location_id, location_labels)
    return Interpreter(module, state).run(fn, ctx)
