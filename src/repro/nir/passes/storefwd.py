"""Store-to-load forwarding for switch memory.

After full unrolling and memcpy expansion, a kernel often re-reads a
register element it has just written (Fig 4: ``accum[base+i] += d[i]``
followed by the result copy-out). On hardware each such read is another
access to the register array -- the scarcest resource on the chip -- so
forwarding the stored SSA value into the load both removes work and is
frequently the difference between backend acceptance and rejection.

Soundness strategy (deliberately conservative):

* all stores to the candidate array must have *statically disambiguated*
  indexes -- every pair of (index) expressions must be provably equal or
  provably distinct. The supported forms are plain constants and
  ``base + const`` with one common dynamic ``base`` per array (exactly
  what unrolled window loops produce);
* a load forwards from a same-index store only if that store's block
  dominates the load's block (or precedes it in the same block) and no
  same-index store can occur between them on any path -- enforced by
  requiring every other same-index store to be dominated by the load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.nir import ir
from repro.nir.cfg import DominatorTree

IndexKey = Tuple  # ("const", c) | ("base", id(base), c)


def _index_key(value: ir.Value) -> Optional[Tuple[Optional[ir.Value], int]]:
    """Decompose an index into (base_value_or_None, const_offset)."""
    if isinstance(value, ir.Const):
        return (None, value.value)
    if isinstance(value, ir.BinOp) and value.op == "add":
        if isinstance(value.rhs, ir.Const) and not isinstance(value.lhs, ir.Const):
            return (value.lhs, value.rhs.value)
        if isinstance(value.lhs, ir.Const) and not isinstance(value.rhs, ir.Const):
            return (value.rhs, value.lhs.value)
    # bare dynamic value: offset 0
    if isinstance(value, (ir.Instr, ir.Param)):
        return (value, 0)
    return None


def _keys_comparable(a, b) -> Optional[bool]:
    """True=same element, False=provably distinct, None=unknown."""
    base_a, off_a = a
    base_b, off_b = b
    if base_a is base_b:
        return off_a == off_b
    if base_a is None or base_b is None:
        return None  # const vs base+k: may collide for some base
    return None  # two different dynamic bases


def forward_stores(fn: ir.Function) -> int:
    """Forward stored values into dominated same-element loads.

    Also performs the enabling analysis for register splitting: returns
    the number of loads replaced.
    """
    from repro.nir.cfg import natural_loops

    if natural_loops(fn):
        return 0  # only sound on acyclic (post-unroll) CFGs
    dom = DominatorTree(fn)
    # Gather per-array access lists.
    arrays: Dict[str, Dict[str, List[ir.Instr]]] = {}
    opaque: set = set()  # arrays touched by un-expanded memcpys/calls
    for block in fn.blocks:
        for instr in block.instrs:
            if isinstance(instr, (ir.LoadElem, ir.StoreElem)):
                entry = arrays.setdefault(instr.ref.name, {"loads": [], "stores": []})
                entry["loads" if isinstance(instr, ir.LoadElem) else "stores"].append(
                    instr
                )
            elif isinstance(instr, ir.Memcpy):
                for region in (instr.dst, instr.src):
                    if region.ref is not None:
                        opaque.add(region.ref.name)
            elif isinstance(instr, ir.CallFn):
                return 0  # calls may touch anything; run after inlining
    for name in opaque:
        arrays.pop(name, None)

    order: Dict[ir.Instr, Tuple[int, int]] = {}
    block_index = {b: i for i, b in enumerate(fn.blocks)}
    for block in fn.blocks:
        for pos, instr in enumerate(block.instrs):
            order[instr] = (block_index[instr.block], pos)

    def precedes(a: ir.Instr, b: ir.Instr) -> bool:
        """a executes before b: same block earlier, or a's block strictly
        dominates b's block."""
        if a.block is b.block:
            return order[a][1] < order[b][1]
        return dom.dominates(a.block, b.block)

    replaced = 0
    replacements: Dict[ir.Instr, ir.Value] = {}
    for name, accesses in arrays.items():
        stores = accesses["stores"]
        loads = accesses["loads"]
        if not stores or not loads:
            continue
        store_keys = [_index_key(s.index) for s in stores]
        load_keys = [_index_key(ld.index) for ld in loads]
        if any(k is None for k in store_keys + load_keys):
            continue
        # Full pairwise disambiguation: store/store and store/load.
        ok = True
        for i in range(len(store_keys)):
            for j in range(i + 1, len(store_keys)):
                if _keys_comparable(store_keys[i], store_keys[j]) is None:
                    ok = False
            for j in range(len(load_keys)):
                if _keys_comparable(store_keys[i], load_keys[j]) is None:
                    ok = False
        if not ok:
            continue
        for load, lkey in zip(loads, load_keys):
            same = [
                s
                for s, skey in zip(stores, store_keys)
                if _keys_comparable(skey, lkey)
            ]
            if not same:
                continue
            dominating = [s for s in same if precedes(s, load)]
            others = [s for s in same if s not in dominating]
            # Every non-dominating same-element store must come strictly
            # after the load (no conditional store could interpose).
            if any(not precedes(load, s) for s in others):
                continue
            if not dominating:
                continue
            # The nearest dominating store: they are totally ordered by
            # `precedes` within the dominating set (all dominate load).
            nearest = dominating[0]
            for s in dominating[1:]:
                if precedes(nearest, s):
                    nearest = s
            replacements[load] = nearest.value
            replaced += 1

    if replacements:
        for block in fn.blocks:
            block.instrs = [i for i in block.instrs if i not in replacements]
            for instr in block.instrs:
                for old, new in replacements.items():
                    instr.replace_operand(old, new)
    return replaced
