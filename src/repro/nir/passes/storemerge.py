"""Predicated store fusion.

Hardware register arrays admit one access per packet, but that access is
a *RegisterAction*: read, ALU, and a possibly-predicated write in one
stage. SwitchML's accumulator reset is the canonical pattern::

    count[seq] = count[seq] + 1;          // store S1 (unconditional)
    if (count[seq] == nworkers) {
        count[seq] = 0;                   // store S2 (conditional rewrite)
    }

which naive codegen turns into two register accesses. This pass fuses
them into one predicated store::

    count[seq] = (count[seq] + 1 == nworkers) ? 0 : count[seq] + 1;

Conditions (conservative):

* S1 sits in a block ending in ``CondBr``; S2 in a successor that has
  that block as its only predecessor;
* same array, structurally identical element index;
* S2's value is available at the branch (operands dominate S1's block);
* no other access to the array between S1 and the branch, nor before S2
  in its block (store-to-load forwarding has usually cleared these);
* the condition does not depend on the stored value's memory state
  (it is an SSA value computed before the terminator).
"""

from __future__ import annotations

from typing import List, Optional

from repro.nir import ir
from repro.nir.cfg import DominatorTree, natural_loops
from repro.nir.passes.storefwd import _index_key


def merge_conditional_stores(fn: ir.Function) -> int:
    if natural_loops(fn):
        return 0
    merged = 0
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, ir.CondBr):
                continue
            if _try_merge_from(fn, block, term):
                merged += 1
                changed = True
                break
    return merged


def _try_merge_from(fn: ir.Function, block: ir.Block, term: ir.CondBr) -> bool:
    preds = fn.predecessors()
    dom = DominatorTree(fn)
    for taken_on_true, succ in ((True, term.then), (False, term.other)):
        if succ is block or len(preds[succ]) != 1:
            continue
        s2 = _leading_store(succ)
        if s2 is None:
            continue
        s1 = _matching_unconditional_store(block, s2)
        if s1 is None:
            continue
        # S2's value must be available in `block`.
        if not _available_at(dom, s2.value, block, before=term):
            continue
        if not _movable_to_terminator(block, s1):
            continue
        # Build: fused_value = select(cond, s2val, s1val) (or swapped).
        cond = term.cond
        if taken_on_true:
            select = ir.Select(cond, s2.value, s1.value, _store_ty(s1))
        else:
            select = ir.Select(cond, s1.value, s2.value, _store_ty(s1))
        fused = ir.StoreElem(s1.ref, s1.index, select)
        # Remove S1 and S2, insert select+store right before the branch.
        block.instrs.remove(s1)
        succ.instrs.remove(s2)
        insert_at = len(block.instrs) - 1  # before terminator
        select.block = block
        fused.block = block
        block.instrs.insert(insert_at, select)
        block.instrs.insert(insert_at + 1, fused)
        return True
    return False


def _store_ty(store: ir.StoreElem):
    return store.ref.elem_type


def _leading_store(block: ir.Block) -> Optional[ir.StoreElem]:
    """The first register-array store of *block*, provided nothing before
    it touched the same array. PHV accesses (window data, metadata) never
    alias register memory and are skipped."""
    prefix: List[ir.Instr] = []
    for instr in block.instrs:
        if isinstance(instr, ir.StoreElem):
            for earlier in prefix:
                if (
                    isinstance(earlier, (ir.LoadElem, ir.StoreElem))
                    and earlier.ref is instr.ref
                ):
                    return None
            return instr
        if isinstance(instr, (ir.Memcpy, ir.CallFn)):
            return None
        if instr.is_terminator:
            return None
        prefix.append(instr)
    return None


def _matching_unconditional_store(
    block: ir.Block, s2: ir.StoreElem
) -> Optional[ir.StoreElem]:
    key2 = _index_key(s2.index)
    if key2 is None:
        return None
    candidate: Optional[ir.StoreElem] = None
    for instr in block.instrs:
        if isinstance(instr, ir.StoreElem) and instr.ref is s2.ref:
            key1 = _index_key(instr.index)
            if key1 is not None and key1[0] is key2[0] and key1[1] == key2[1]:
                candidate = instr
    return candidate


def _movable_to_terminator(block: ir.Block, store: ir.StoreElem) -> bool:
    """No possibly-aliasing access to the same element between the store
    and the branch (provably distinct offsets off a common base are fine
    -- unrolled window code is full of them)."""
    from repro.nir.passes.storefwd import _keys_comparable

    key = _index_key(store.index)
    seen = False
    for instr in block.instrs:
        if instr is store:
            seen = True
            continue
        if not seen:
            continue
        if isinstance(instr, (ir.LoadElem, ir.StoreElem)) and instr.ref is store.ref:
            other = _index_key(instr.index)
            if key is None or other is None:
                return False
            if _keys_comparable(key, other) is not False:
                return False
        if isinstance(instr, ir.Memcpy):
            if store.ref in (instr.dst.ref, instr.src.ref):
                return False
        if isinstance(instr, ir.CallFn):
            return False
    return True


def _available_at(
    dom: DominatorTree, value: ir.Value, block: ir.Block, before: ir.Instr
) -> bool:
    if not isinstance(value, ir.Instr):
        return True
    def_block = value.block
    if def_block is None:
        return False
    if def_block is block:
        return block.instrs.index(value) < block.instrs.index(before)
    return dom.dominates(def_block, block)
