"""Register-array splitting (arch-specific transformation, paper S5).

Hardware pipelines allow **one access per register array per packet**.
An unrolled window loop touches ``accum[base+0] .. accum[base+W-1]`` --
W accesses to one array -- so the paper's AllReduce is unmappable as-is
on such chips. NetCache and SwitchML solve this by splitting state
across one register array per window offset; this pass performs that
transformation automatically:

``R[base + k]`` (k = 0..W-1, base provably a multiple of W)
    becomes ``R__k[base / W]``

Conditions (checked per module, across all kernels that run on the
switch):

* every access index decomposes as ``base + k`` with one common dynamic
  ``base`` per function (or a plain constant);
* the observed offsets k fit a power-of-two stride W;
* ``base`` is provably a multiple of W: it is a ``shl`` by >= log2(W),
  a multiplication by a multiple of W, or constant 0;
* the array length is a multiple of W.

The module's GlobalRef is replaced by W split refs named ``R__k``; the
driver records the split so the controller can still read the logical
array (:meth:`repro.runtime.controller.Controller.register_dump`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ncl.types import ArrayType, U32
from repro.nir import ir
from repro.nir.passes.storefwd import _index_key


class SplitInfo:
    """Record of one performed split: logical name -> stride + parts."""

    def __init__(self, name: str, stride: int, part_names: List[str]):
        self.name = name
        self.stride = stride
        self.part_names = part_names

    def __repr__(self) -> str:
        return f"SplitInfo({self.name} / {self.stride})"


def _fingerprint(value: Optional[ir.Value], depth: int = 4):
    """Structural identity for base expressions: two `shl %x, 2` in
    sibling branches are the same base even though CSE could not merge
    them (no dominance)."""
    if value is None:
        return None
    if isinstance(value, ir.Const):
        return ("c", value.ty, value.value)
    if isinstance(value, ir.Param):
        return ("p", value.index)
    if depth == 0 or not isinstance(value, ir.Instr):
        return ("i", id(value))
    if isinstance(value, ir.BinOp):
        return ("bin", value.op) + tuple(
            _fingerprint(op, depth - 1) for op in value.operands
        )
    if isinstance(value, ir.Cast):
        return ("cast", value.kind, value.ty, _fingerprint(value.operands[0], depth - 1))
    if isinstance(value, ir.WinField):
        return ("win", value.field)
    if isinstance(value, (ir.MapValue, ir.MapFound)):
        return (type(value).__name__, _fingerprint(value.operands[0], depth - 1))
    if isinstance(value, ir.MapLookup):
        return ("maplkp", value.ref.name, _fingerprint(value.key, depth - 1))
    if isinstance(value, ir.CtrlRead):
        idx = value.index
        return ("ctrl", value.ref.name, _fingerprint(idx, depth - 1) if idx else None)
    return ("i", id(value))


def _provably_multiple_of(value: ir.Value, stride: int) -> bool:
    """Is *value* statically a multiple of *stride* (a power of two)?"""
    if stride == 1:
        return True
    if isinstance(value, ir.Const):
        return value.value % stride == 0
    if isinstance(value, ir.BinOp):
        if value.op == "shl" and isinstance(value.rhs, ir.Const):
            return (1 << value.rhs.value) % stride == 0
        if value.op == "mul":
            for side in (value.lhs, value.rhs):
                if isinstance(side, ir.Const) and side.value % stride == 0:
                    return True
        if value.op == "and" and isinstance(value.rhs, ir.Const):
            # masked so the low bits are zero
            low_mask = stride - 1
            return (value.rhs.value & low_mask) == 0
    return False


def split_register_arrays(
    module: ir.Module, max_accesses: int = 1
) -> List[SplitInfo]:
    """Split arrays whose per-packet access count exceeds *max_accesses*.

    Run after unrolling + memcpy expansion + store-to-load forwarding on
    every kernel of a per-location module. Returns the performed splits.
    """
    splits: List[SplitInfo] = []
    for name in list(module.globals):
        ref = module.globals[name]
        if ref.space != "net" or not isinstance(ref.ty, ArrayType):
            continue
        plan = _plan_split(module, ref, max_accesses)
        if plan is None:
            continue
        splits.append(_apply_split(module, ref, plan))
    return splits


def _collect_accesses(module: ir.Module, ref: ir.GlobalRef):
    per_fn: Dict[ir.Function, List[ir.Instr]] = {}
    for fn in module.functions.values():
        accesses = []
        for instr in fn.instructions():
            if isinstance(instr, (ir.LoadElem, ir.StoreElem)) and instr.ref is ref:
                accesses.append(instr)
            elif isinstance(instr, ir.Memcpy) and (
                (instr.dst.ref is ref) or (instr.src.ref is ref)
            ):
                return None  # un-expanded memcpy: cannot reason
        if accesses:
            per_fn[fn] = accesses
    return per_fn


def _plan_split(
    module: ir.Module, ref: ir.GlobalRef, max_accesses: int
) -> Optional[int]:
    """Return the stride W to split by, or None."""
    per_fn = _collect_accesses(module, ref)
    if per_fn is None or not per_fn:
        return None
    worst = 0
    offsets_seen: List[int] = []
    for fn, accesses in per_fn.items():
        keys = [_index_key(a.index) for a in accesses]
        if any(k is None for k in keys):
            return None
        bases = {_fingerprint(k[0]) for k in keys if k[0] is not None}
        if len(bases) > 1:
            return None  # more than one dynamic base: unsupported
        # distinct elements touched per packet (RMW pairs count once)
        distinct = {(_fingerprint(k[0]), k[1]) for k in keys}
        worst = max(worst, len(distinct))
        offsets_seen.extend(k[1] for k in keys)
    if worst <= max_accesses:
        return None  # nothing to fix
    max_off = max(offsets_seen)
    if min(offsets_seen) < 0:
        return None
    stride = 1
    while stride <= max_off:
        stride <<= 1
    if stride < 2:
        return None
    if ref.total_elements % stride != 0:
        return None
    # every dynamic base must be a multiple of the stride
    for fn, accesses in per_fn.items():
        for a in accesses:
            key = _index_key(a.index)
            assert key is not None
            base = key[0]
            if base is not None and not _provably_multiple_of(base, stride):
                return None
            if base is None and key[1] >= stride:
                return None  # pure-constant index outside the first group
    return stride


def _apply_split(module: ir.Module, ref: ir.GlobalRef, stride: int) -> SplitInfo:
    elem_ty = ref.elem_type
    part_len = ref.total_elements // stride
    parts: List[ir.GlobalRef] = []
    init = ref.init
    for k in range(stride):
        part_init = None
        if init is not None:
            part_init = [init[i] for i in range(k, len(init), stride)]
        part = ir.GlobalRef(
            f"{ref.name}__{k}",
            ArrayType(elem_ty, part_len),
            "net",
            ref.at_label,
            part_init,
        )
        module.add_global(part)
        parts.append(part)
    del module.globals[ref.name]

    shift = stride.bit_length() - 1
    for fn in module.functions.values():
        for block in fn.blocks:
            new_instrs: List[ir.Instr] = []
            replacements: Dict[ir.Instr, ir.Value] = {}
            for instr in block.instrs:
                if (
                    isinstance(instr, (ir.LoadElem, ir.StoreElem))
                    and instr.ref is ref
                ):
                    key = _index_key(instr.index)
                    assert key is not None
                    base, off = key
                    part = parts[off % stride]
                    if base is None:
                        new_index: ir.Value = ir.Const(U32, off // stride)
                    else:
                        shr = ir.BinOp("lshr", base, ir.Const(U32, shift), U32)
                        shr.block = block
                        new_instrs.append(shr)
                        new_index = shr
                    if isinstance(instr, ir.LoadElem):
                        new = ir.LoadElem(part, new_index)
                        replacements[instr] = new
                    else:
                        new = ir.StoreElem(part, new_index, instr.value)
                    new.block = block
                    new_instrs.append(new)
                else:
                    new_instrs.append(instr)
            block.instrs = new_instrs
            if replacements:
                for b in fn.blocks:
                    for instr in b.instrs:
                        for old, repl in replacements.items():
                            instr.replace_operand(old, repl)
    return SplitInfo(ref.name, stride, [p.name for p in parts])
