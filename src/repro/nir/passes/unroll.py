"""Full loop unrolling.

PISA pipelines have no loops, so every loop in switch code must be fully
unrolled -- which requires a provably constant trip count (the paper's
conformance rule, S5). The trip count is established by abstractly
executing the loop's *control slice*: the instructions that feed the
header condition and the header phis' latch values. The slice must
evaluate to constants given constant phi seeds; anything else (a data-
dependent bound, an induction variable updated under an unknown branch)
makes the count non-constant and the loop is reported unsupported.

Data instructions in the body are unrestricted: the body is cloned once
per iteration with header phis replaced by their per-iteration values,
and constant folding + CFG simplification clean up afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import ConformanceError
from repro.nir import ir
from repro.nir.cfg import natural_loops
from repro.nir.passes.clone import ValueMap, clone_region
from repro.nir.passes.constfold import fold_constants
from repro.nir.passes.dce import eliminate_dead_code
from repro.nir.passes.simplify_cfg import simplify_cfg
from repro.ncl.types import is_signed, scalar_bits
from repro.util import intops

DEFAULT_MAX_TRIPS = 4096


def unroll_loops(fn: ir.Function, max_trips: int = DEFAULT_MAX_TRIPS) -> int:
    """Fully unroll every loop in *fn*. Returns number of loops unrolled.

    Raises :class:`ConformanceError` when a trip count is not provably
    constant or exceeds *max_trips*.
    """
    unrolled = 0
    for _ in range(64):  # nesting depth guard
        fold_constants(fn)
        simplify_cfg(fn)
        loops = natural_loops(fn)
        if not loops:
            return unrolled
        loop = _innermost(loops)
        _unroll_one(fn, loop, max_trips)
        eliminate_dead_code(fn)
        unrolled += 1
    raise ConformanceError(f"{fn.name}: loop nesting too deep to unroll")


def _innermost(loops: List[Dict]) -> Dict:
    """Pick a loop whose body contains no other loop's header."""
    headers = {id(lp["header"]) for lp in loops}
    for loop in sorted(loops, key=lambda lp: len(lp["body"])):
        inner_headers = sum(
            1 for b in loop["body"] if id(b) in headers and b is not loop["header"]
        )
        if inner_headers == 0:
            return loop
    return min(loops, key=lambda lp: len(lp["body"]))


def _unroll_one(fn: ir.Function, loop: Dict, max_trips: int) -> None:
    header: ir.Block = loop["header"]
    body: Set[ir.Block] = loop["body"]
    latches: List[ir.Block] = loop["latches"]
    if len(latches) != 1:
        raise ConformanceError(
            f"{fn.name}: loop at {header.label} has multiple back edges"
        )
    latch = latches[0]
    term = header.terminator
    if not isinstance(term, ir.CondBr):
        raise ConformanceError(
            f"{fn.name}: loop at {header.label} is not a counted loop "
            "(no exit condition at the header)"
        )
    in_body = [s in body for s in term.successors()]
    if in_body == [True, False]:
        exit_block = term.other
    elif in_body == [False, True]:
        exit_block = term.then
    else:
        raise ConformanceError(
            f"{fn.name}: loop at {header.label} has no unique exit edge"
        )
    body_taken_on_true = in_body[0]

    phis = header.phis()
    preds = fn.predecessors()
    preheaders = [p for p in preds[header] if p not in body]

    # -- trip count via the control slice --------------------------------
    seeds: Dict[ir.Phi, int] = {}
    for phi in phis:
        init = _incoming_from(phi, set(preheaders))
        if not isinstance(init, ir.Const):
            # Non-constant seeds are fine as long as the condition slice
            # doesn't depend on them; probe lazily below.
            continue
        seeds[phi] = init.value

    trips = _compute_trip_count(
        fn, header, body, latch, term, phis, seeds, body_taken_on_true, max_trips
    )

    # -- clone the body `trips` times -------------------------------------
    region = [b for b in fn.blocks if b in body]  # stable order
    # Per-iteration value of each header phi.
    phi_values: Dict[ir.Phi, ir.Value] = {
        phi: _incoming_from(phi, set(preheaders)) or ir.Undef(phi.ty) for phi in phis
    }
    prev_tail: Optional[ir.Block] = None  # latch clone of the previous iter
    entry_target: Optional[ir.Block] = None
    final_phi_values = dict(phi_values)

    for k in range(trips):
        vmap = ValueMap()
        for phi, value in phi_values.items():
            vmap.values[phi] = value
        clone_region(fn, region, vmap, suffix=f"it{k}")
        header_clone = vmap.block(header)
        latch_clone = vmap.block(latch)
        # The header clone's exit test is known-true for this iteration.
        hterm = header_clone.terminator
        assert isinstance(hterm, ir.CondBr)
        target = hterm.then if body_taken_on_true else hterm.other
        br = ir.Br(target)
        br.block = header_clone
        header_clone.instrs[-1] = br
        if k == 0:
            entry_target = header_clone
        else:
            assert prev_tail is not None
            _redirect(prev_tail, None, header_clone)
        prev_tail = latch_clone
        # Compute next-iteration phi values through this clone's map.
        next_values: Dict[ir.Phi, ir.Value] = {}
        for phi in phis:
            latch_value = _incoming_from(phi, {latch})
            assert latch_value is not None
            next_values[phi] = vmap.value(latch_value)
        phi_values = next_values
        final_phi_values = next_values

    # -- stitch entry and exit ---------------------------------------------
    if trips > 0:
        assert prev_tail is not None
        _redirect(prev_tail, None, exit_block)

    for pre in preheaders:
        _redirect(pre, header, entry_target if entry_target is not None else exit_block)

    # Exit-block phis had incoming from `header`; they now come from the
    # last latch clone (or the preheader when trips == 0).
    exit_pred = prev_tail if trips > 0 else (preheaders[0] if preheaders else None)
    for phi in exit_block.phis():
        for idx, (value, inc) in enumerate(list(phi.incoming)):
            if inc is header:
                new_value = final_phi_values.get(value, value) if isinstance(value, ir.Phi) else value
                if trips > 0 and isinstance(value, ir.Instr) and not isinstance(value, ir.Phi):
                    raise ConformanceError(
                        f"{fn.name}: unsupported loop-exit value %{value.id}"
                    )
                assert exit_pred is not None
                phi.incoming[idx] = (new_value, exit_pred)
                phi.operands[idx] = new_value

    # Uses of header-defined values outside the loop: only phis can be
    # used outside (header instrs other than phis feed the condition,
    # which is gone). Replace with the final value.
    body_set = set(body)
    for block in fn.blocks:
        if block in body_set:
            continue
        for instr in block.instrs:
            for phi, final in final_phi_values.items():
                instr.replace_operand(phi, final)

    # Drop the original loop blocks.
    fn.blocks = [b for b in fn.blocks if b not in body_set]
    simplify_cfg(fn)


def _redirect(block: ir.Block, old: Optional[ir.Block], new: ir.Block) -> None:
    """Point *block*'s branch at *new* (replacing *old*, or the loop
    header back-edge when old is None and the terminator is a Br)."""
    term = block.terminator
    if isinstance(term, ir.Br):
        if old is None or term.target is old:
            term.target = new
    elif isinstance(term, ir.CondBr):
        if old is None:
            raise ConformanceError("loop latch with conditional back edge")
        if term.then is old:
            term.then = new
        if term.other is old:
            term.other = new


def _incoming_from(phi: ir.Phi, blocks: Set[ir.Block]) -> Optional[ir.Value]:
    for value, block in phi.incoming:
        if block in blocks:
            return value
    return None


def _compute_trip_count(
    fn: ir.Function,
    header: ir.Block,
    body: Set[ir.Block],
    latch: ir.Block,
    term: ir.CondBr,
    phis: List[ir.Phi],
    seeds: Dict[ir.Phi, int],
    body_taken_on_true: bool,
    max_trips: int,
) -> int:
    """Abstractly execute the control slice until the exit test fires."""
    # The slice may only contain instructions in the header or latch (our
    # front end puts induction updates in the `for.step` latch block), or
    # loop-invariant constants.
    slice_instrs = _control_slice(fn, header, latch, body, term, phis)

    env: Dict[int, int] = {}
    values: Dict[ir.Phi, Optional[int]] = {}
    for phi in phis:
        values[phi] = seeds.get(phi)

    order = _execution_order(header, latch, slice_instrs)

    for trip in range(max_trips + 1):
        env = {}
        for phi in phis:
            if values[phi] is not None:
                env[phi.id] = values[phi]  # type: ignore[assignment]
        for instr in order:
            result = _abstract_eval(instr, env)
            if result is not None:
                env[instr.id] = result
        cond_val = _value_in_env(term.cond, env)
        if cond_val is None:
            raise ConformanceError(
                f"{fn.name}: loop at {header.label} has a trip count that is "
                "not provably constant (data-dependent bound?)"
            )
        exits = (not cond_val) if body_taken_on_true else bool(cond_val)
        if exits:
            return trip
        # Advance phis through their latch incoming values.
        new_values: Dict[ir.Phi, Optional[int]] = {}
        for phi in phis:
            latch_value = _incoming_from(phi, {latch})
            if latch_value is None:
                new_values[phi] = None
                continue
            new_values[phi] = _value_in_env(latch_value, env)
        values = new_values
    raise ConformanceError(
        f"{fn.name}: loop at {header.label} exceeds the unroll limit "
        f"({max_trips} iterations)"
    )


def _control_slice(
    fn: ir.Function,
    header: ir.Block,
    latch: ir.Block,
    body: Set[ir.Block],
    term: ir.CondBr,
    phis: List[ir.Phi],
) -> Set[ir.Instr]:
    roots: List[ir.Value] = [term.cond]
    for phi in phis:
        latch_value = _incoming_from(phi, {latch})
        if latch_value is not None:
            roots.append(latch_value)
    slice_set: Set[ir.Instr] = set()
    stack = [r for r in roots if isinstance(r, ir.Instr)]
    while stack:
        instr = stack.pop()
        if instr in slice_set or isinstance(instr, ir.Phi):
            continue
        if instr.block not in body:
            continue  # loop-invariant: evaluated via env lazily
        slice_set.add(instr)
        stack.extend(op for op in instr.operands if isinstance(op, ir.Instr))
    for instr in slice_set:
        if instr.block not in (header, latch):
            raise ConformanceError(
                f"{fn.name}: loop condition depends on %{instr.id} computed "
                "under control flow inside the loop body"
            )
    return slice_set


def _execution_order(
    header: ir.Block, latch: ir.Block, slice_instrs: Set[ir.Instr]
) -> List[ir.Instr]:
    order = [i for i in header.instrs if i in slice_instrs]
    if latch is not header:
        order += [i for i in latch.instrs if i in slice_instrs]
    return order


def _value_in_env(value: ir.Value, env: Dict[int, int]) -> Optional[int]:
    if isinstance(value, ir.Const):
        return value.value
    if isinstance(value, ir.Instr):
        return env.get(value.id)
    return None


def _abstract_eval(instr: ir.Instr, env: Dict[int, int]) -> Optional[int]:
    """Evaluate a pure arithmetic instruction over the abstract env."""
    if isinstance(instr, ir.BinOp):
        a = _value_in_env(instr.lhs, env)
        b = _value_in_env(instr.rhs, env)
        if a is None or b is None:
            return None
        from repro.nir.passes.constfold import _fold_const_pair

        folded = _fold_const_pair(instr.op, a, b, instr)
        return folded.value if isinstance(folded, ir.Const) else None
    if isinstance(instr, ir.UnOp):
        a = _value_in_env(instr.operands[0], env)
        if a is None:
            return None
        if instr.op == "neg":
            raw = -a
        elif instr.op == "not":
            raw = ~a
        else:
            return int(not a)
        if instr.ty.is_scalar:
            return intops.wrap(raw, scalar_bits(instr.ty), is_signed(instr.ty))
        return raw
    if isinstance(instr, ir.Cast):
        a = _value_in_env(instr.operands[0], env)
        if a is None:
            return None
        if instr.kind == "bool":
            return int(a != 0)
        if instr.ty.is_scalar:
            return intops.wrap(a, scalar_bits(instr.ty), is_signed(instr.ty))
        return a
    if isinstance(instr, ir.Select):
        cond = _value_in_env(instr.operands[0], env)
        if cond is None:
            return None
        return _value_in_env(instr.operands[1 if cond else 2], env)
    return None
