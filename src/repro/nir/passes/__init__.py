"""NIR optimization passes and the standard pipelines.

The menu mirrors the paper's S5 "Analysis and optimization" stage:
loop unrolling, constant folding/propagation, GVN/CSE, DCE, plus CFG
simplification and always-inlining of helpers.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.nir import ir
from repro.nir.mem2reg import promote_allocas
from repro.nir.passes.constfold import fold_constants
from repro.nir.passes.dce import eliminate_dead_code
from repro.nir.passes.gvn import global_value_numbering
from repro.nir.passes.inline import inline_calls
from repro.nir.passes.memexpand import expand_memcpy
from repro.nir.passes.regsplit import SplitInfo, split_register_arrays
from repro.nir.passes.simplify_cfg import simplify_cfg
from repro.nir.passes.specialize import specialize_location, specialize_window
from repro.nir.passes.storefwd import forward_stores
from repro.nir.passes.storemerge import merge_conditional_stores
from repro.nir.passes.unroll import unroll_loops
from repro.nir.verify import verify_function

__all__ = [
    "fold_constants",
    "eliminate_dead_code",
    "expand_memcpy",
    "forward_stores",
    "merge_conditional_stores",
    "global_value_numbering",
    "inline_calls",
    "simplify_cfg",
    "specialize_location",
    "specialize_window",
    "split_register_arrays",
    "SplitInfo",
    "unroll_loops",
    "promote_allocas",
    "optimize_host",
    "optimize_switch",
    "PassStats",
]


class PassStats:
    """Per-pass change counters, reported by the Fig 6 compiler bench."""

    def __init__(self) -> None:
        self.counters: dict = {}

    def add(self, name: str, count: int) -> None:
        self.counters[name] = self.counters.get(name, 0) + count

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"PassStats({inner})"


def _run_pass(trace, stage, name, pass_fn, fn, *args, **kwargs):
    """Run one pass, optionally under a CompileTrace (duck-typed: any
    object with ``measure(stage, pass, fn)`` recording wall time and
    IR-size deltas)."""
    if trace is None:
        return pass_fn(fn, *args, **kwargs)
    with trace.measure(stage, name, fn):
        return pass_fn(fn, *args, **kwargs)


def _cleanup(
    fn: ir.Function, stats: PassStats, verify: bool, trace=None, stage: str = ""
) -> None:
    stats.add("constfold", _run_pass(trace, stage, "constfold", fold_constants, fn))
    stats.add("simplifycfg", _run_pass(trace, stage, "simplifycfg", simplify_cfg, fn))
    stats.add("gvn", _run_pass(trace, stage, "gvn", global_value_numbering, fn))
    stats.add("dce", _run_pass(trace, stage, "dce", eliminate_dead_code, fn))
    stats.add("simplifycfg", _run_pass(trace, stage, "simplifycfg", simplify_cfg, fn))
    if verify:
        verify_function(fn)


def optimize_host(
    fn: ir.Function,
    stats: Optional[PassStats] = None,
    verify: bool = True,
    trace=None,
    stage: str = "host",
) -> PassStats:
    """The host pipeline: SSA + early optimizations, loops kept."""
    stats = stats or PassStats()
    stats.add("inline", _run_pass(trace, stage, "inline", inline_calls, fn))
    stats.add("mem2reg", _run_pass(trace, stage, "mem2reg", promote_allocas, fn))
    if verify:
        verify_function(fn)
    _cleanup(fn, stats, verify, trace, stage)
    return stats


def optimize_switch(
    fn: ir.Function,
    window_spec: Optional[Mapping[str, int]] = None,
    stats: Optional[PassStats] = None,
    verify: bool = True,
    max_trips: int = 4096,
    trace=None,
    stage: str = "switch",
) -> PassStats:
    """The device pipeline front half: SSA, specialization, full unroll,
    then the scalar optimizations. After this the CFG is acyclic and
    ready for PISA lowering."""
    stats = stats or PassStats()
    stats.add("inline", _run_pass(trace, stage, "inline", inline_calls, fn))
    stats.add("mem2reg", _run_pass(trace, stage, "mem2reg", promote_allocas, fn))
    if verify:
        verify_function(fn)
    if window_spec:
        stats.add(
            "specialize-window",
            _run_pass(trace, stage, "specialize-window", specialize_window, fn, window_spec),
        )
    _cleanup(fn, stats, verify, trace, stage)
    stats.add(
        "unroll",
        _run_pass(trace, stage, "unroll", unroll_loops, fn, max_trips=max_trips),
    )
    if verify:
        verify_function(fn)
    _cleanup(fn, stats, verify, trace, stage)
    # Post-unroll memory optimizations: expose memcpy element accesses,
    # forward stored values into re-reads (cuts register accesses), clean.
    stats.add("memexpand", _run_pass(trace, stage, "memexpand", expand_memcpy, fn))
    stats.add("storefwd", _run_pass(trace, stage, "storefwd", forward_stores, fn))
    stats.add(
        "storemerge",
        _run_pass(trace, stage, "storemerge", merge_conditional_stores, fn),
    )
    stats.add("storefwd", _run_pass(trace, stage, "storefwd", forward_stores, fn))
    if verify:
        verify_function(fn)
    _cleanup(fn, stats, verify, trace, stage)
    return stats
