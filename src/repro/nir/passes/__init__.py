"""NIR optimization passes: the registry and the standard pipelines.

The menu mirrors the paper's S5 "Analysis and optimization" stage:
loop unrolling, constant folding/propagation, GVN/CSE, DCE, plus CFG
simplification and always-inlining of helpers.

Every pass is *registered* under a stable name (:data:`NIR_PASSES`), so
the pass-manager layer (:mod:`repro.nclc.pm`) can assemble pipelines by
name, fingerprint them for the artifact cache, and time each invocation
individually. The ``-O0/-O1/-O2`` presets are plain lists of registered
pass names (:data:`HOST_PIPELINES` / :data:`SWITCH_PIPELINES`):

* ``-O0`` runs only what correctness demands -- inlining and mem2reg
  (codegen needs SSA over acyclic CFGs), window specialization, the
  constant folding + CFG simplification needed to discover trip counts,
  the full unroll, and memcpy expansion;
* ``-O1`` adds DCE and store forwarding (the latter halves register
  accesses, which chip profiles budget);
* ``-O2`` is the paper's full menu: GVN/CSE, conditional store merging,
  and repeated cleanup rounds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.nir import ir
from repro.nir.mem2reg import promote_allocas
from repro.nir.passes.constfold import fold_constants
from repro.nir.passes.dce import eliminate_dead_code
from repro.nir.passes.gvn import global_value_numbering
from repro.nir.passes.inline import inline_calls
from repro.nir.passes.memexpand import expand_memcpy
from repro.nir.passes.rangesimplify import simplify_ranges
from repro.nir.passes.regsplit import SplitInfo, split_register_arrays
from repro.nir.passes.simplify_cfg import simplify_cfg
from repro.nir.passes.specialize import specialize_location, specialize_window
from repro.nir.passes.storefwd import forward_stores
from repro.nir.passes.storemerge import merge_conditional_stores
from repro.nir.passes.unroll import unroll_loops
from repro.nir.verify import verify_function

__all__ = [
    "fold_constants",
    "eliminate_dead_code",
    "expand_memcpy",
    "forward_stores",
    "merge_conditional_stores",
    "global_value_numbering",
    "inline_calls",
    "simplify_cfg",
    "simplify_ranges",
    "specialize_location",
    "specialize_window",
    "split_register_arrays",
    "SplitInfo",
    "unroll_loops",
    "promote_allocas",
    "optimize_host",
    "optimize_switch",
    "run_function_pipeline",
    "host_pipeline",
    "switch_pipeline",
    "NirPass",
    "NIR_PASSES",
    "HOST_PIPELINES",
    "SWITCH_PIPELINES",
    "OPT_LEVELS",
    "PassStats",
]


class PassStats:
    """Per-pass change counters, reported by the Fig 6 compiler bench."""

    def __init__(self) -> None:
        self.counters: dict = {}

    def add(self, name: str, count: int) -> None:
        self.counters[name] = self.counters.get(name, 0) + count

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"PassStats({inner})"


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class NirPass:
    """A registered function-level pass.

    ``fn(function, **kwargs) -> int`` returns a change count (what
    :class:`PassStats` accumulates). ``analysis`` marks passes that never
    mutate IR (the verifier); the pass manager uses the flag for
    preserved-analysis bookkeeping.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[..., int],
        about: str = "",
        analysis: bool = False,
        takes: Sequence[str] = (),
    ):
        self.name = name
        self.fn = fn
        self.about = about
        self.analysis = analysis
        #: names of pipeline-level keyword options this pass consumes
        #: (e.g. ``window_spec`` for specialize-window)
        self.takes = tuple(takes)

    def __repr__(self) -> str:
        return f"NirPass({self.name})"


NIR_PASSES: Dict[str, NirPass] = {}


def register_nir_pass(
    name: str,
    fn: Callable[..., int],
    about: str = "",
    analysis: bool = False,
    takes: Sequence[str] = (),
) -> NirPass:
    if name in NIR_PASSES:
        raise ValueError(f"duplicate NIR pass {name!r}")
    npass = NirPass(name, fn, about, analysis, takes)
    NIR_PASSES[name] = npass
    return npass


def _verify(fn: ir.Function) -> int:
    verify_function(fn)
    return 0


register_nir_pass("inline", inline_calls, "always-inline helper calls")
register_nir_pass("mem2reg", promote_allocas, "promote scalar locals to SSA")
register_nir_pass("constfold", fold_constants, "constant folding + propagation")
register_nir_pass("simplifycfg", simplify_cfg, "CFG simplification")
register_nir_pass("gvn", global_value_numbering, "global value numbering / CSE")
register_nir_pass("dce", eliminate_dead_code, "dead code elimination")
register_nir_pass(
    "specialize-window",
    lambda fn, window_spec=None: specialize_window(fn, window_spec or {}),
    "bake window-extension fields into constants",
    takes=("window_spec",),
)
register_nir_pass(
    "unroll",
    lambda fn, max_trips=4096: unroll_loops(fn, max_trips=max_trips),
    "full loop unrolling (switch CFGs must be acyclic)",
    takes=("max_trips",),
)
register_nir_pass("memexpand", expand_memcpy, "expand memcpy into element accesses")
register_nir_pass(
    "rangesimplify",
    simplify_ranges,
    "materialize abstractly-proved constants (intervals + known-bits)",
    takes=("window_spec",),
)
register_nir_pass("storefwd", forward_stores, "forward stored values into re-reads")
register_nir_pass(
    "storemerge", merge_conditional_stores, "merge conditional stores (predication)"
)
register_nir_pass("verify", _verify, "IR structural verifier", analysis=True)


# ---------------------------------------------------------------------------
# Pipelines
# ---------------------------------------------------------------------------

#: Cleanup rounds (each ends in a verify, as the monolithic driver did).
_CLEANUP = ("constfold", "simplifycfg", "gvn", "dce", "simplifycfg", "verify")
_CLEANUP_O1 = ("constfold", "simplifycfg", "dce", "simplifycfg", "verify")
#: the minimum folding needed so unroll can discover trip counts and
#: versioning's location split collapses (never skippable).
_CLEANUP_O0 = ("constfold", "simplifycfg", "verify")

#: The host pipeline per opt level: SSA + early optimizations, loops kept.
HOST_PIPELINES: Dict[int, Tuple[str, ...]] = {
    0: ("inline", "mem2reg", "verify", *_CLEANUP_O0),
    1: ("inline", "mem2reg", "verify", *_CLEANUP_O1),
    2: ("inline", "mem2reg", "verify", *_CLEANUP, "rangesimplify", *_CLEANUP),
}

#: The device pipeline front half per opt level: SSA, specialization,
#: full unroll, then scalar/memory optimization. After any of these the
#: CFG is acyclic and ready for PISA lowering.
SWITCH_PIPELINES: Dict[int, Tuple[str, ...]] = {
    0: (
        "inline", "mem2reg", "verify",
        "specialize-window",
        *_CLEANUP_O0,
        "unroll", "verify",
        *_CLEANUP_O0,
        "memexpand",
        "dce",  # unrolled loop counters would otherwise occupy PHV space
        *_CLEANUP_O0,
    ),
    1: (
        "inline", "mem2reg", "verify",
        "specialize-window",
        *_CLEANUP_O1,
        "unroll", "verify",
        *_CLEANUP_O1,
        "memexpand", "storefwd",
        *_CLEANUP_O1,
    ),
    2: (
        "inline", "mem2reg", "verify",
        "specialize-window",
        *_CLEANUP,
        "unroll", "verify",
        *_CLEANUP,
        "memexpand", "storefwd", "storemerge", "storefwd",
        "verify",
        *_CLEANUP,
        "rangesimplify",
        *_CLEANUP,
    ),
}

OPT_LEVELS = tuple(sorted(SWITCH_PIPELINES))


def host_pipeline(opt_level: int = 2) -> Tuple[str, ...]:
    if opt_level not in HOST_PIPELINES:
        raise ValueError(f"unknown opt level {opt_level!r} (have {OPT_LEVELS})")
    return HOST_PIPELINES[opt_level]


def switch_pipeline(opt_level: int = 2) -> Tuple[str, ...]:
    if opt_level not in SWITCH_PIPELINES:
        raise ValueError(f"unknown opt level {opt_level!r} (have {OPT_LEVELS})")
    return SWITCH_PIPELINES[opt_level]


def _run_pass(trace, stage, name, pass_fn, fn, *args, **kwargs):
    """Run one pass, optionally under a CompileTrace (duck-typed: any
    object with ``measure(stage, pass, fn)`` recording wall time and
    IR-size deltas)."""
    if trace is None:
        return pass_fn(fn, *args, **kwargs)
    with trace.measure(stage, name, fn):
        return pass_fn(fn, *args, **kwargs)


def run_function_pipeline(
    fn: ir.Function,
    pipeline: Sequence[str],
    stats: Optional[PassStats] = None,
    verify: bool = True,
    trace=None,
    stage: str = "",
    options: Optional[Mapping[str, object]] = None,
    validator=None,
) -> PassStats:
    """Run the named passes over *fn* in order.

    ``options`` supplies pipeline-level keywords (``window_spec``,
    ``max_trips``) to the passes that declared them via ``takes``.
    ``verify=False`` skips the registered ``verify`` steps (used by
    tests that build deliberately broken IR).

    ``validator`` is the ``--verify-opt`` hook (duck-typed, see
    :class:`repro.analysis.transval.PassValidator`): before each
    transform pass it snapshots the function, afterwards it checks the
    output against the snapshot (structural verify + differential
    vectors + abstract-invariant comparison) and raises
    :class:`repro.analysis.transval.TranslationValidationError` naming
    the pass if the semantics changed.
    """
    stats = stats or PassStats()
    options = dict(options or {})
    for name in pipeline:
        npass = NIR_PASSES.get(name)
        if npass is None:
            raise ValueError(f"unknown NIR pass {name!r}")
        if npass.analysis:
            if verify:
                _run_pass(trace, stage, name, npass.fn, fn)
            continue
        kwargs = {k: options[k] for k in npass.takes if k in options}
        before = validator.snapshot(fn) if validator is not None else None
        stats.add(name, _run_pass(trace, stage, name, npass.fn, fn, **kwargs))
        if validator is not None:
            validator.check(name, before, fn)
    return stats


def optimize_host(
    fn: ir.Function,
    stats: Optional[PassStats] = None,
    verify: bool = True,
    trace=None,
    stage: str = "host",
    opt_level: int = 2,
) -> PassStats:
    """The host pipeline: SSA + early optimizations, loops kept."""
    return run_function_pipeline(
        fn, host_pipeline(opt_level), stats, verify, trace, stage
    )


def optimize_switch(
    fn: ir.Function,
    window_spec: Optional[Mapping[str, int]] = None,
    stats: Optional[PassStats] = None,
    verify: bool = True,
    max_trips: int = 4096,
    trace=None,
    stage: str = "switch",
    opt_level: int = 2,
) -> PassStats:
    """The device pipeline front half: SSA, specialization, full unroll,
    then the scalar optimizations. After this the CFG is acyclic and
    ready for PISA lowering."""
    pipeline = list(switch_pipeline(opt_level))
    if not window_spec:
        pipeline = [p for p in pipeline if p != "specialize-window"]
    return run_function_pipeline(
        fn,
        pipeline,
        stats,
        verify,
        trace,
        stage,
        options={"window_spec": dict(window_spec or {}), "max_trips": max_trips},
    )
