"""NIR optimization passes and the standard pipelines.

The menu mirrors the paper's S5 "Analysis and optimization" stage:
loop unrolling, constant folding/propagation, GVN/CSE, DCE, plus CFG
simplification and always-inlining of helpers.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.nir import ir
from repro.nir.mem2reg import promote_allocas
from repro.nir.passes.constfold import fold_constants
from repro.nir.passes.dce import eliminate_dead_code
from repro.nir.passes.gvn import global_value_numbering
from repro.nir.passes.inline import inline_calls
from repro.nir.passes.memexpand import expand_memcpy
from repro.nir.passes.regsplit import SplitInfo, split_register_arrays
from repro.nir.passes.simplify_cfg import simplify_cfg
from repro.nir.passes.specialize import specialize_location, specialize_window
from repro.nir.passes.storefwd import forward_stores
from repro.nir.passes.storemerge import merge_conditional_stores
from repro.nir.passes.unroll import unroll_loops
from repro.nir.verify import verify_function

__all__ = [
    "fold_constants",
    "eliminate_dead_code",
    "expand_memcpy",
    "forward_stores",
    "merge_conditional_stores",
    "global_value_numbering",
    "inline_calls",
    "simplify_cfg",
    "specialize_location",
    "specialize_window",
    "split_register_arrays",
    "SplitInfo",
    "unroll_loops",
    "promote_allocas",
    "optimize_host",
    "optimize_switch",
    "PassStats",
]


class PassStats:
    """Per-pass change counters, reported by the Fig 6 compiler bench."""

    def __init__(self) -> None:
        self.counters: dict = {}

    def add(self, name: str, count: int) -> None:
        self.counters[name] = self.counters.get(name, 0) + count

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"PassStats({inner})"


def _cleanup(fn: ir.Function, stats: PassStats, verify: bool) -> None:
    stats.add("constfold", fold_constants(fn))
    stats.add("simplifycfg", simplify_cfg(fn))
    stats.add("gvn", global_value_numbering(fn))
    stats.add("dce", eliminate_dead_code(fn))
    stats.add("simplifycfg", simplify_cfg(fn))
    if verify:
        verify_function(fn)


def optimize_host(
    fn: ir.Function, stats: Optional[PassStats] = None, verify: bool = True
) -> PassStats:
    """The host pipeline: SSA + early optimizations, loops kept."""
    stats = stats or PassStats()
    stats.add("inline", inline_calls(fn))
    stats.add("mem2reg", promote_allocas(fn))
    if verify:
        verify_function(fn)
    _cleanup(fn, stats, verify)
    return stats


def optimize_switch(
    fn: ir.Function,
    window_spec: Optional[Mapping[str, int]] = None,
    stats: Optional[PassStats] = None,
    verify: bool = True,
    max_trips: int = 4096,
) -> PassStats:
    """The device pipeline front half: SSA, specialization, full unroll,
    then the scalar optimizations. After this the CFG is acyclic and
    ready for PISA lowering."""
    stats = stats or PassStats()
    stats.add("inline", inline_calls(fn))
    stats.add("mem2reg", promote_allocas(fn))
    if verify:
        verify_function(fn)
    if window_spec:
        stats.add("specialize-window", specialize_window(fn, window_spec))
    _cleanup(fn, stats, verify)
    stats.add("unroll", unroll_loops(fn, max_trips=max_trips))
    if verify:
        verify_function(fn)
    _cleanup(fn, stats, verify)
    # Post-unroll memory optimizations: expose memcpy element accesses,
    # forward stored values into re-reads (cuts register accesses), clean.
    stats.add("memexpand", expand_memcpy(fn))
    stats.add("storefwd", forward_stores(fn))
    stats.add("storemerge", merge_conditional_stores(fn))
    stats.add("storefwd", forward_stores(fn))
    if verify:
        verify_function(fn)
    _cleanup(fn, stats, verify)
    return stats
