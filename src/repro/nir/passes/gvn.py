"""Global value numbering / common subexpression elimination.

Three cooperating mechanisms:

* **dominator-scoped CSE** over pure expressions: two instructions with
  identical opcode + operands compute the same value, so the dominated
  one is replaced by the dominating one. ``MapLookup`` participates
  because kernels cannot write Maps (control-plane managed); likewise
  ``CtrlRead`` and ``WinField``.
* **block-local load CSE** for ``LoadElem``/``LoadParam``: safe within a
  block while tracking clobbers (stores, memcpy, calls) -- cross-block
  load CSE would need full memory dependence and is not attempted.
* **entry hoisting** of pure instructions whose operands are constants
  or parameters (notably ``Idx[key]`` lookups sitting in sibling
  branches): moved to the entry block, after which dominator CSE
  deduplicates them. This is what collapses Fig 5's three ``Idx[key]``
  lookups into a single match-action table apply.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.nir import ir
from repro.nir.cfg import DominatorTree

#: instruction classes that may be hoisted to the entry block when their
#: operands are constants/parameters (all pure, all idempotent)
_HOISTABLE = (ir.MapLookup, ir.WinField, ir.LocField, ir.LocLabel, ir.CtrlRead)


def global_value_numbering(fn: ir.Function) -> int:
    total = _hoist_entry_pure(fn)
    while True:
        changed = _local_load_cse(fn)
        changed += _dominator_cse(fn)
        total += changed
        if changed == 0:
            return total


# ---------------------------------------------------------------------------
# value keys
# ---------------------------------------------------------------------------


def _op_key(v: ir.Value):
    if isinstance(v, ir.Const):
        return ("c", v.ty, v.value)
    if isinstance(v, ir.Param):
        return ("p", v.index)
    if isinstance(v, ir.Instr):
        return ("i", v.id)
    return None


def _key_of(instr: ir.Instr) -> Optional[Tuple]:
    ops = tuple(_op_key(v) for v in instr.operands)
    if any(op is None for op in ops):
        return None
    if isinstance(instr, ir.BinOp):
        if instr.op in ("add", "mul", "and", "or", "xor", "eq", "ne"):
            ops = tuple(sorted(ops))  # commutative normalization
        return ("bin", instr.op, instr.ty, ops)
    if isinstance(instr, ir.UnOp):
        return ("un", instr.op, instr.ty, ops)
    if isinstance(instr, ir.Cast):
        return ("cast", instr.kind, instr.ty, ops)
    if isinstance(instr, ir.Select):
        return ("sel", instr.ty, ops)
    if isinstance(instr, ir.WinField):
        return ("win", instr.field)
    if isinstance(instr, ir.LocField):
        return ("loc", instr.field)
    if isinstance(instr, ir.LocLabel):
        return ("locl", instr.label)
    if isinstance(instr, ir.CtrlRead):
        return ("ctrl", instr.ref.name, ops)
    if isinstance(instr, ir.MapLookup):
        return ("maplkp", instr.ref.name, ops)
    if isinstance(instr, (ir.MapFound, ir.MapValue)):
        return (type(instr).__name__, instr.ty, ops)
    return None


# ---------------------------------------------------------------------------
# entry hoisting
# ---------------------------------------------------------------------------


def _hoist_entry_pure(fn: ir.Function) -> int:
    """Move hoistable instructions with const/param operands to the entry
    block when an identical instruction appears more than once."""
    candidates: Dict[Tuple, List[ir.Instr]] = {}
    for block in fn.blocks:
        for instr in block.instrs:
            if not isinstance(instr, _HOISTABLE):
                continue
            if not all(
                isinstance(op, (ir.Const, ir.Param)) for op in instr.operands
            ):
                continue
            key = _key_of(instr)
            if key is not None:
                candidates.setdefault(key, []).append(instr)
    hoisted = 0
    entry = fn.entry
    for key, instances in candidates.items():
        if len(instances) < 2:
            continue
        leader = instances[0]
        if any(i.block is entry for i in instances):
            continue  # dominator CSE will collapse onto the entry copy
        if leader.block is not entry:
            leader.block.instrs.remove(leader)
            insert_at = len(entry.instrs) - (1 if entry.terminator else 0)
            entry.instrs.insert(insert_at, leader)
            leader.block = entry
            hoisted += 1
    return hoisted


# ---------------------------------------------------------------------------
# dominator-scoped CSE
# ---------------------------------------------------------------------------


def _dominator_cse(fn: ir.Function) -> int:
    dom = DominatorTree(fn)
    replaced = 0

    def walk(block: ir.Block, table: Dict[Tuple, ir.Instr]) -> None:
        nonlocal replaced
        scope: Dict[Tuple, ir.Instr] = dict(table)
        local_replacements: Dict[ir.Instr, ir.Instr] = {}
        keep: List[ir.Instr] = []
        for instr in block.instrs:
            _rewrite(instr, local_replacements)
            key = _key_of(instr)
            if key is not None and key in scope:
                local_replacements[instr] = scope[key]
                replaced += 1
                continue
            if key is not None:
                scope[key] = instr
            keep.append(instr)
        block.instrs = keep
        if local_replacements:
            for b in fn.blocks:
                for instr in b.instrs:
                    _rewrite(instr, local_replacements)
        for child in dom.children.get(block, ()):
            walk(child, scope)

    walk(fn.entry, {})
    return replaced


def _rewrite(instr: ir.Instr, repl: Dict[ir.Instr, ir.Instr]) -> None:
    for idx, op in enumerate(instr.operands):
        target = op
        while isinstance(target, ir.Instr) and target in repl:
            target = repl[target]
        if target is not op:
            instr.operands[idx] = target
            if isinstance(instr, ir.Phi):
                instr.incoming[idx] = (target, instr.incoming[idx][1])


# ---------------------------------------------------------------------------
# block-local load CSE
# ---------------------------------------------------------------------------


def _load_key(instr: ir.Instr) -> Optional[Tuple]:
    if isinstance(instr, ir.LoadElem):
        idx = _op_key(instr.index)
        return ("elem", instr.ref.name, idx) if idx is not None else None
    if isinstance(instr, ir.LoadParam):
        idx = _op_key(instr.index)
        return ("param", instr.param.index, idx) if idx is not None else None
    return None


def _may_alias(load_idx_key, store_idx_key) -> bool:
    """Conservative aliasing of two index keys: distinct constants are the
    only provably-disjoint case."""
    if (
        load_idx_key is not None
        and store_idx_key is not None
        and load_idx_key[0] == "c"
        and store_idx_key[0] == "c"
    ):
        return load_idx_key[2] == store_idx_key[2]
    return True


def _local_load_cse(fn: ir.Function) -> int:
    replaced = 0
    for block in fn.blocks:
        available: Dict[Tuple, ir.Instr] = {}
        repl: Dict[ir.Instr, ir.Instr] = {}
        keep: List[ir.Instr] = []
        for instr in block.instrs:
            _rewrite(instr, repl)
            key = _load_key(instr)
            if key is not None:
                if key in available:
                    repl[instr] = available[key]
                    replaced += 1
                    continue
                available[key] = instr
                keep.append(instr)
                continue
            # Clobbers invalidate the relevant part of the table. Two
            # constant indices that differ provably don't alias.
            if isinstance(instr, ir.StoreElem):
                sk = _op_key(instr.index)
                available = {
                    k: v
                    for k, v in available.items()
                    if not (
                        k[0] == "elem"
                        and k[1] == instr.ref.name
                        and _may_alias(k[2], sk)
                    )
                }
            elif isinstance(instr, ir.StoreParam):
                sk = _op_key(instr.index)
                available = {
                    k: v
                    for k, v in available.items()
                    if not (
                        k[0] == "param"
                        and k[1] == instr.param.index
                        and _may_alias(k[2], sk)
                    )
                }
            elif isinstance(instr, (ir.Memcpy, ir.CallFn)):
                available = {}
            keep.append(instr)
        block.instrs = keep
        if repl:
            for b in fn.blocks:
                for instr in b.instrs:
                    _rewrite(instr, repl)
    return replaced
