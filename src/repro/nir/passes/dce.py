"""Dead code elimination.

Removes pure instructions whose results are never used, iterating until
a fixed point (removing a use can make its operands dead too).
"""

from __future__ import annotations

from typing import Set

from repro.nir import ir

#: Instruction classes that are pure (safe to delete when unused).
_PURE = (
    ir.BinOp,
    ir.UnOp,
    ir.Cast,
    ir.Select,
    ir.Load,
    ir.LoadElem,
    ir.LoadParam,
    ir.WinField,
    ir.LocField,
    ir.LocLabel,
    ir.CtrlRead,
    ir.MapLookup,
    ir.MapFound,
    ir.MapValue,
    ir.Phi,
)


def eliminate_dead_code(fn: ir.Function) -> int:
    """Remove unused pure instructions. Returns number removed."""
    removed_total = 0
    while True:
        used: Set[int] = set()
        for block in fn.blocks:
            for instr in block.instrs:
                for op in instr.operands:
                    if isinstance(op, ir.Instr):
                        used.add(op.id)
        removed = 0
        for block in fn.blocks:
            keep = []
            for instr in block.instrs:
                is_dead = (
                    isinstance(instr, _PURE)
                    and instr.id not in used
                    and not instr.is_terminator
                )
                if isinstance(instr, ir.BloomOp) and instr.op == "query":
                    is_dead = instr.id not in used
                if is_dead:
                    removed += 1
                else:
                    keep.append(instr)
            block.instrs = keep
        removed_total += removed
        if removed == 0:
            return removed_total
