"""Range-guided simplification: materialize abstractly-proved constants.

Runs the abstract interpreter (:mod:`repro.analysis.absint`) over the
function and rewrites every *use* of a value whose interval+known-bits
facts pin it to a single representative into an :class:`ir.Const`.
Branch conditions with a proved direction become constant conditions.

This deliberately only touches uses: the defining instruction stays in
place (it may have side effects or trap; DCE removes it when it is
actually dead), and the constant conditions are folded away by the
``simplifycfg`` round the -O2 pipelines schedule right after this pass.

What this catches that constant folding cannot: facts that flow through
the known-bits domain (``(x | 9) & 1`` is 1 for every x) or through
interval joins across control flow.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.nir import ir


def simplify_ranges(
    fn: ir.Function, window_spec: Optional[Mapping[str, int]] = None
) -> int:
    # Imported lazily: repro.analysis.__init__ pulls in the lint pipeline,
    # which imports the nclc layer, which imports this package.
    from repro.analysis.absint import analyze_function

    facts = analyze_function(fn, win_ext=dict(window_spec or {}))
    changed = 0
    for block in fn.blocks:
        if block not in facts.reachable:
            continue
        for instr in block.instrs:
            for idx, op in enumerate(instr.operands):
                if not isinstance(op, ir.Instr) or op is instr:
                    continue
                val = facts.values.get(op)
                if val is None or not val.is_singleton:
                    continue
                const = ir.Const(op.ty, val.lo)
                if isinstance(instr, ir.Phi):
                    instr.set_incoming(idx, const)
                else:
                    instr.operands[idx] = const
                changed += 1
            if isinstance(instr, ir.CondBr) and not isinstance(
                instr.cond, ir.Const
            ):
                decided = facts.branch_decisions.get(instr)
                if decided is not None:
                    instr.operands[0] = ir.Const(
                        instr.cond.ty, 1 if decided else 0
                    )
                    changed += 1
    return changed
