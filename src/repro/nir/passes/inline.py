"""Always-inline helper calls.

PISA has no call stack, so every ``CallFn`` in a kernel is inlined before
lowering (hosts could keep calls, but we inline there too for uniform
optimization). Inlining splits the call block, clones the callee's blocks
in between, rewires returns to the continuation, and replaces the call's
result with a phi over the returned values.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConformanceError
from repro.nir import ir
from repro.nir.passes.clone import ValueMap, clone_region

_MAX_INLINE_DEPTH = 32


def inline_calls(fn: ir.Function, depth: int = 0) -> int:
    """Inline every CallFn in *fn*; recurses into callees first."""
    if depth > _MAX_INLINE_DEPTH:
        raise ConformanceError(
            f"{fn.name}: call nesting exceeds {_MAX_INLINE_DEPTH} "
            "(recursive helper functions are not allowed)"
        )
    inlined = 0
    while True:
        call = _find_call(fn)
        if call is None:
            return inlined
        _inline_one(fn, call, depth)
        inlined += 1


def _find_call(fn: ir.Function) -> Optional[ir.CallFn]:
    for instr in fn.instructions():
        if isinstance(instr, ir.CallFn):
            return instr
    return None


def _inline_one(fn: ir.Function, call: ir.CallFn, depth: int) -> None:
    callee = call.callee
    if callee is fn:
        raise ConformanceError(f"{fn.name}: direct recursion cannot be inlined")
    # Make sure the callee itself is call-free (post-order inlining).
    inline_calls(callee, depth + 1)

    block = call.block
    assert block is not None
    call_idx = block.instrs.index(call)

    # Split the call block: everything after the call moves to `cont`.
    cont = fn.new_block(f"{block.label}.cont")
    tail = block.instrs[call_idx + 1 :]
    block.instrs = block.instrs[:call_idx]
    for instr in tail:
        instr.block = cont
        cont.instrs.append(instr)
    # Successor phis referencing `block` now come from `cont`.
    for succ in cont.successors():
        for phi in succ.phis():
            phi.incoming = [
                (v, cont if b is block else b) for v, b in phi.incoming
            ]

    # Seed the value map: callee params -> call arguments.
    vmap = ValueMap()
    param_map: Dict[ir.Param, ir.Value] = {}
    for param, arg in zip(callee.params, call.operands):
        param_map[param] = arg
    clones = clone_region(fn, callee.blocks, vmap, suffix=f"inl{call.id}")
    _substitute_params(clones, param_map)

    # Entry edge.
    br = ir.Br(vmap.block(callee.entry))
    br.block = block
    block.instrs.append(br)

    # Rewire returns to the continuation, collecting returned values.
    returned: List[ir.Value] = []
    ret_blocks: List[ir.Block] = []
    for clone in clones:
        term = clone.terminator
        if isinstance(term, ir.Ret):
            if term.value is not None:
                returned.append(term.value)
            ret_blocks.append(clone)
            jump = ir.Br(cont)
            jump.block = clone
            clone.instrs[-1] = jump

    # Replace the call's result.
    result: Optional[ir.Value] = None
    if not callee.ret.is_void:
        if len(ret_blocks) == 1:
            result = returned[0] if returned else ir.Undef(callee.ret)
        else:
            phi = ir.Phi(callee.ret)
            phi.block = cont
            cont.instrs.insert(0, phi)
            for rb, value in zip(ret_blocks, returned):
                phi.add_incoming(value, rb)
            result = phi
    if result is not None:
        for b in fn.blocks:
            for instr in b.instrs:
                instr.replace_operand(call, result)


def _substitute_params(blocks: List[ir.Block], param_map: Dict[ir.Param, ir.Value]) -> None:
    for block in blocks:
        for instr in block.instrs:
            for idx, op in enumerate(instr.operands):
                if isinstance(op, ir.Param) and op in param_map:
                    new = param_map[op]
                    instr.operands[idx] = new
                    if isinstance(instr, ir.Phi):
                        instr.incoming[idx] = (new, instr.incoming[idx][1])
            # Param-addressed memory ops need their .param field rebound.
            if isinstance(instr, (ir.LoadParam, ir.StoreParam)):
                bound = param_map.get(instr.param)
                if isinstance(bound, ir.Param):
                    instr.param = bound
                elif bound is not None:
                    raise ConformanceError(
                        "cannot inline a helper that indexes a non-parameter "
                        "pointer argument"
                    )
            if isinstance(instr, ir.Memcpy):
                for region in (instr.dst, instr.src):
                    if region.kind == "param" and region.param in param_map:
                        bound = param_map[region.param]
                        if isinstance(bound, ir.Param):
                            region.param = bound
                        else:
                            raise ConformanceError(
                                "cannot inline memcpy over non-parameter pointer"
                            )
