"""Memcpy expansion (device pipeline).

After window specialization + constant folding, every ``memcpy`` in
switch code has a constant byte count; this pass expands it into
element-wise loads/stores so later passes (store-to-load forwarding,
register splitting) and codegen see the individual accesses.

Host-side IR keeps its ``Memcpy`` instructions (the interpreter executes
them directly, and dynamic lengths are fine there).
"""

from __future__ import annotations

from typing import List

from repro.errors import ConformanceError
from repro.ncl.types import U32, sizeof
from repro.nir import ir


def expand_memcpy(fn: ir.Function) -> int:
    """Expand all constant-length memcpys. Returns number expanded."""
    expanded = 0
    for block in fn.blocks:
        new_instrs: List[ir.Instr] = []
        for instr in block.instrs:
            if isinstance(instr, ir.Memcpy) and isinstance(instr.nbytes, ir.Const):
                new_instrs.extend(_expand_one(fn, instr))
                expanded += 1
            else:
                new_instrs.append(instr)
        for i in new_instrs:
            i.block = block
        block.instrs = new_instrs
    return expanded


def _expand_one(fn: ir.Function, instr: ir.Memcpy) -> List[ir.Instr]:
    nbytes = instr.nbytes.value  # type: ignore[union-attr]
    dst_elem = sizeof(instr.dst.elem_type)
    src_elem = sizeof(instr.src.elem_type)
    if dst_elem != src_elem:
        raise ConformanceError(
            f"{fn.name}: memcpy between different element widths "
            f"({src_elem} vs {dst_elem} bytes)"
        )
    if nbytes % dst_elem:
        raise ConformanceError(
            f"{fn.name}: memcpy length {nbytes} is not a multiple of the "
            f"element size {dst_elem}"
        )
    count = nbytes // dst_elem
    out: List[ir.Instr] = []

    def elem_index(base: ir.Value, i: int) -> ir.Value:
        if isinstance(base, ir.Const):
            return ir.Const(U32, base.value + i)
        if i == 0:
            return base
        add = ir.BinOp("add", base, ir.Const(U32, i), U32)
        out.append(add)
        return add

    for i in range(count):
        src_idx = elem_index(instr.src_off, i)
        if instr.src.kind == "param":
            load: ir.Instr = ir.LoadParam(instr.src.param, src_idx)  # type: ignore[arg-type]
        else:
            load = ir.LoadElem(instr.src.ref, src_idx)  # type: ignore[arg-type]
        out.append(load)
        dst_idx = elem_index(instr.dst_off, i)
        if instr.dst.kind == "param":
            store: ir.Instr = ir.StoreParam(instr.dst.param, dst_idx, load)  # type: ignore[arg-type]
        else:
            store = ir.StoreElem(instr.dst.ref, dst_idx, load)  # type: ignore[arg-type]
        out.append(store)
    return out
