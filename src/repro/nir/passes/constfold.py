"""Constant folding + propagation (the paper's "const. folding/propagation").

Folds pure instructions whose operands are all constants into ``Const``
values, propagates them into uses, and simplifies algebraic identities
(x+0, x*1, x*0, x&0, select on const, casts of consts). Also performs
strength reduction of multiplication/division/modulo by powers of two --
PISA ALUs have shifters but no general divider, so this turns otherwise
non-conformant kernels into conformant ones.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ncl.types import BOOL, is_signed, scalar_bits
from repro.nir import ir
from repro.util import intops


def fold_constants(fn: ir.Function) -> int:
    """Iterate folding to a fixed point. Returns number of folds."""
    total = 0
    while True:
        changed = _fold_once(fn)
        total += changed
        if not changed:
            return total


def _fold_once(fn: ir.Function) -> int:
    replacements: Dict[ir.Instr, ir.Value] = {}
    for block in fn.blocks:
        for instr in list(block.instrs):  # _materialize may insert mid-walk
            folded = _try_fold(instr)
            if folded is not None:
                replacements[instr] = folded
    if not replacements:
        return 0

    def resolve(v: ir.Value) -> ir.Value:
        seen = set()
        while isinstance(v, ir.Instr) and v in replacements and id(v) not in seen:
            seen.add(id(v))
            v = replacements[v]
        return v

    resolved = {old: resolve(new) for old, new in replacements.items()}
    for block in fn.blocks:
        block.instrs = [i for i in block.instrs if i not in resolved]
        for instr in block.instrs:
            for old, new in resolved.items():
                instr.replace_operand(old, new)
    return len(resolved)


def _const(value: ir.Value) -> Optional[int]:
    if isinstance(value, ir.Const):
        return value.value
    return None


def _try_fold(instr: ir.Instr) -> Optional[ir.Value]:
    if isinstance(instr, ir.BinOp):
        return _fold_binop(instr)
    if isinstance(instr, ir.UnOp):
        a = _const(instr.operands[0])
        if a is None:
            return None
        if instr.op == "neg":
            raw = -a
        elif instr.op == "not":
            raw = ~a
        else:
            return ir.Const(BOOL, int(not a))
        return _wrap_const(raw, instr.ty)
    if isinstance(instr, ir.Cast):
        a = _const(instr.operands[0])
        if a is None:
            # zext/trunc of a bool-typed value to same width etc. -- leave.
            return None
        src_ty = instr.operands[0].ty
        if instr.kind == "bool":
            return ir.Const(BOOL, int(a != 0))
        src_bits = scalar_bits(src_ty) if src_ty.is_scalar else 64
        if instr.kind == "zext":
            raw = intops.to_unsigned(a, src_bits)
        elif instr.kind == "sext":
            raw = intops.wrap_signed(a, src_bits)
        else:
            raw = a
        return _wrap_const(raw, instr.ty)
    if isinstance(instr, ir.Select):
        cond = _const(instr.operands[0])
        if cond is not None:
            return instr.operands[1] if cond else instr.operands[2]
        if _values_equal(instr.operands[1], instr.operands[2]):
            return instr.operands[1]
        return None
    return None


def _fold_binop(instr: ir.BinOp) -> Optional[ir.Value]:
    a = _const(instr.lhs)
    b = _const(instr.rhs)
    ty = instr.ty
    if a is not None and b is not None:
        return _fold_const_pair(instr.op, a, b, instr)
    # Algebraic identities with one constant side.
    op = instr.op
    if op == "add":
        if b == 0:
            return instr.lhs
        if a == 0:
            return instr.rhs
    elif op == "sub":
        if b == 0:
            return instr.lhs
        if _values_equal(instr.lhs, instr.rhs):
            return ir.Const(ty, 0)
    elif op == "mul":
        if b == 1:
            return instr.lhs
        if a == 1:
            return instr.rhs
        if b == 0 or a == 0:
            return ir.Const(ty, 0)
        # Strength-reduce x * 2^k -> x << k (PISA has no multiplier on
        # some targets; shifts are always available).
        const_side, value_side = (b, instr.lhs) if b is not None else (a, instr.rhs)
        if const_side is not None and const_side > 0 and _is_pow2(const_side):
            shift = const_side.bit_length() - 1
            new = ir.BinOp("shl", value_side, ir.Const(ty, shift), ty)
            return _materialize(new, instr)
    elif op in ("udiv", "sdiv") and b is not None and b > 0 and _is_pow2(b):
        if op == "udiv":
            shift = b.bit_length() - 1
            new = ir.BinOp("lshr", instr.lhs, ir.Const(ty, shift), ty)
            return _materialize(new, instr)
    elif op == "urem" and b is not None and b > 0 and _is_pow2(b):
        new = ir.BinOp("and", instr.lhs, ir.Const(ty, b - 1), ty)
        return _materialize(new, instr)
    elif op in ("and",):
        if b == 0 or a == 0:
            return ir.Const(ty, 0)
        mask_all = intops.mask(scalar_bits(ty)) if ty.is_scalar else None
        if mask_all is not None and b == mask_all:
            return instr.lhs
    elif op in ("or", "xor"):
        if b == 0:
            return instr.lhs
        if a == 0:
            return instr.rhs
    elif op in ("shl", "lshr", "ashr"):
        if b == 0:
            return instr.lhs
    elif op in ("eq", "ne") and _values_equal(instr.lhs, instr.rhs):
        return ir.Const(BOOL, int(op == "eq"))
    return None


def _materialize(new: ir.Instr, old: ir.Instr) -> ir.Instr:
    """Insert *new* right before *old* in its block and return it."""
    block = old.block
    assert block is not None
    idx = block.instrs.index(old)
    new.block = block
    block.instrs.insert(idx, new)
    return new


def _fold_const_pair(op: str, a: int, b: int, instr: ir.BinOp) -> Optional[ir.Value]:
    ty = instr.ty
    bits = scalar_bits(ty) if ty.is_scalar else 64
    try:
        if op in ir.BinOp.COMPARES:
            if op.startswith("u"):
                ua, ub = intops.to_unsigned(a, 64), intops.to_unsigned(b, 64)
            else:
                ua, ub = a, b
            result = {
                "eq": a == b,
                "ne": a != b,
                "ult": ua < ub,
                "ule": ua <= ub,
                "ugt": ua > ub,
                "uge": ua >= ub,
                "slt": ua < ub,
                "sle": ua <= ub,
                "sgt": ua > ub,
                "sge": ua >= ub,
            }[op]
            return ir.Const(BOOL, int(result))
        if op == "add":
            raw = a + b
        elif op == "sub":
            raw = a - b
        elif op == "mul":
            raw = a * b
        elif op == "udiv":
            raw = intops.checked_udiv(intops.to_unsigned(a, bits), intops.to_unsigned(b, bits))
        elif op == "sdiv":
            raw = intops.checked_sdiv(a, b)
        elif op == "urem":
            raw = intops.to_unsigned(a, bits) % intops.to_unsigned(b, bits)
        elif op == "srem":
            raw = intops.checked_srem(a, b)
        elif op == "shl":
            raw = a << intops.shift_amount(b, bits)
        elif op == "lshr":
            raw = intops.to_unsigned(a, bits) >> intops.shift_amount(b, bits)
        elif op == "ashr":
            raw = intops.wrap_signed(a, bits) >> intops.shift_amount(b, bits)
        elif op == "and":
            raw = a & b
        elif op == "or":
            raw = a | b
        elif op == "xor":
            raw = a ^ b
        else:
            return None
    except ZeroDivisionError:
        return None  # leave the trap in place; the interpreter will raise
    return _wrap_const(raw, ty)


def _wrap_const(raw: int, ty) -> ir.Const:
    if ty.is_scalar:
        return ir.Const(ty, intops.wrap(raw, scalar_bits(ty), is_signed(ty)))
    return ir.Const(ty, raw)


def _values_equal(a: ir.Value, b: ir.Value) -> bool:
    if a is b:
        return True
    return isinstance(a, ir.Const) and isinstance(b, ir.Const) and a == b


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0
