"""IR specialization passes used by nclc's versioning stage.

* :func:`specialize_window` pins window-struct fields to constants from
  the window specification (the prototype scope of the paper, S6:
  "windows that fit a packet" -- their geometry is fixed per deployment,
  so switch code can treat ``window.len`` etc. as compile-time constants).
  Host-side IR is *not* specialized: hosts handle windows dynamically.

* :func:`specialize_location` resolves the location struct and
  ``_locid`` labels against a concrete AND location, yielding the
  per-switch module versions (nclc stage 2, S5).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import ConformanceError
from repro.ncl.types import is_signed, scalar_bits
from repro.nir import ir
from repro.util import intops


def _replace_all(fn: ir.Function, replacements: Dict[ir.Instr, ir.Value]) -> None:
    if not replacements:
        return
    for block in fn.blocks:
        block.instrs = [i for i in block.instrs if i not in replacements]
        for instr in block.instrs:
            for old, new in replacements.items():
                instr.replace_operand(old, new)


def specialize_window(fn: ir.Function, spec: Mapping[str, int]) -> int:
    """Replace ``WinField`` reads named in *spec* with constants."""
    replacements: Dict[ir.Instr, ir.Value] = {}
    for instr in fn.instructions():
        if isinstance(instr, ir.WinField) and instr.field in spec:
            value = spec[instr.field]
            if instr.ty.is_scalar:
                value = intops.wrap(value, scalar_bits(instr.ty), is_signed(instr.ty))
            replacements[instr] = ir.Const(instr.ty, value)
    _replace_all(fn, replacements)
    return len(replacements)


def specialize_location(
    fn: ir.Function,
    location_id: int,
    label_ids: Mapping[str, int],
) -> int:
    """Resolve location-struct fields and ``_locid`` labels for one switch."""
    replacements: Dict[ir.Instr, ir.Value] = {}
    for instr in fn.instructions():
        if isinstance(instr, ir.LocField):
            if instr.field != "id":
                raise ConformanceError(f"unknown location field {instr.field!r}")
            replacements[instr] = ir.Const(instr.ty, location_id)
        elif isinstance(instr, ir.LocLabel):
            if instr.label not in label_ids:
                raise ConformanceError(
                    f"_locid label {instr.label!r} is not defined in the AND"
                )
            replacements[instr] = ir.Const(instr.ty, label_ids[instr.label])
    _replace_all(fn, replacements)
    return len(replacements)
