"""CFG simplification.

* folds ``condbr`` on a constant into ``br`` (and fixes phis on the
  no-longer-taken edge);
* removes unreachable blocks;
* merges a block into its single predecessor when that predecessor has a
  single successor;
* threads jumps through empty forwarding blocks (a lone ``br``), the
  bread-and-butter cleanup after loop unrolling.
"""

from __future__ import annotations

from typing import Dict

from repro.nir import ir


def simplify_cfg(fn: ir.Function) -> int:
    """Run all simplifications to a fixed point; returns #changes."""
    total = 0
    while True:
        changed = 0
        changed += _fold_const_branches(fn)
        changed += _remove_unreachable(fn)
        changed += _thread_trivial_jumps(fn)
        changed += _merge_straightline(fn)
        changed += _remove_unreachable(fn)
        total += changed
        if changed == 0:
            return total


def _fold_const_branches(fn: ir.Function) -> int:
    changed = 0
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, ir.CondBr) and isinstance(term.cond, ir.Const):
            taken = term.then if term.cond.value else term.other
            not_taken = term.other if term.cond.value else term.then
            if not_taken is not taken:
                _remove_phi_edge(not_taken, block)
            block.instrs[-1] = _mk_br(taken, block)
            changed += 1
        elif isinstance(term, ir.CondBr) and term.then is term.other:
            block.instrs[-1] = _mk_br(term.then, block)
            changed += 1
    return changed


def _mk_br(target: ir.Block, block: ir.Block) -> ir.Br:
    br = ir.Br(target)
    br.block = block
    return br


def _remove_phi_edge(block: ir.Block, pred: ir.Block) -> None:
    for phi in block.phis():
        for idx, (value, inc_block) in enumerate(list(phi.incoming)):
            if inc_block is pred:
                del phi.incoming[idx]
                del phi.operands[idx]
                break


def _remove_unreachable(fn: ir.Function) -> int:
    reachable = set()
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if block in reachable:
            continue
        reachable.add(block)
        stack.extend(block.successors())
    dead = [b for b in fn.blocks if b not in reachable]
    if not dead:
        return 0
    dead_set = set(dead)
    for block in reachable:
        for phi in block.phis():
            keep = [
                (v, b) for v, b in phi.incoming if b not in dead_set
            ]
            if len(keep) != len(phi.incoming):
                phi.incoming = keep
                phi.operands = [v for v, _ in keep]
    fn.blocks = [b for b in fn.blocks if b in reachable]
    _collapse_single_incoming_phis(fn)
    return len(dead)


def _collapse_single_incoming_phis(fn: ir.Function) -> None:
    replaced: Dict[ir.Phi, ir.Value] = {}
    for block in fn.blocks:
        for phi in list(block.phis()):
            if len(phi.incoming) == 1:
                replaced[phi] = phi.incoming[0][0]
                block.instrs.remove(phi)
    if not replaced:
        return
    # Resolve chains phi -> phi -> value.
    def resolve(v: ir.Value) -> ir.Value:
        seen = set()
        while isinstance(v, ir.Phi) and v in replaced and v not in seen:
            seen.add(v)
            v = replaced[v]
        return v

    for block in fn.blocks:
        for instr in block.instrs:
            for old, _ in replaced.items():
                instr.replace_operand(old, resolve(old))


def _thread_trivial_jumps(fn: ir.Function) -> int:
    """Redirect edges through blocks that contain only ``br target``."""
    changed = 0
    preds = fn.predecessors()
    for block in list(fn.blocks):
        if block is fn.entry or len(block.instrs) != 1:
            continue
        term = block.terminator
        if not isinstance(term, ir.Br):
            continue
        target = term.target
        if target is block:
            continue
        # A phi in target distinguishing this block from our preds blocks
        # the rewrite when a pred already reaches target some other way.
        target_phis = target.phis()
        pred_blocks = preds[block]
        if target_phis:
            existing = {b for phi in target_phis for _, b in phi.incoming}
            if any(p in existing for p in pred_blocks):
                continue
        for pred in pred_blocks:
            pterm = pred.terminator
            if isinstance(pterm, ir.Br) and pterm.target is block:
                pterm.target = target
            elif isinstance(pterm, ir.CondBr):
                if pterm.then is block:
                    pterm.then = target
                if pterm.other is block:
                    pterm.other = target
            for phi in target_phis:
                for idx, (value, inc) in enumerate(list(phi.incoming)):
                    if inc is block:
                        # This edge now comes from pred (possibly several).
                        phi.incoming[idx] = (value, pred)
            changed += 1
        if pred_blocks:
            # Multiple preds: the loop above rewired the first pred's phi
            # entry; extra preds need duplicated entries.
            for phi in target_phis:
                base_entries = [
                    (v, b) for v, b in phi.incoming if b in pred_blocks
                ]
                if base_entries and len(pred_blocks) > 1:
                    value = base_entries[0][0]
                    have = {b for _, b in phi.incoming}
                    for pred in pred_blocks:
                        if pred not in have:
                            phi.add_incoming(value, pred)
        preds = fn.predecessors()
    return changed


def _merge_straightline(fn: ir.Function) -> int:
    """Merge B into A when A->B is the only edge in either direction."""
    changed = 0
    while True:
        preds = fn.predecessors()
        merged = False
        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, ir.Br):
                continue
            target = term.target
            if target is block or target is fn.entry:
                continue
            if len(preds[target]) != 1:
                continue
            if target.phis():
                # Single-pred phis are trivial; inline them first.
                for phi in list(target.phis()):
                    value = phi.incoming[0][0]
                    for b in fn.blocks:
                        for instr in b.instrs:
                            instr.replace_operand(phi, value)
                    target.instrs.remove(phi)
            block.instrs.pop()  # drop the br
            for instr in target.instrs:
                instr.block = block
                block.instrs.append(instr)
            # Phis in target's successors referenced target as incoming.
            for succ in block.successors():
                for phi in succ.phis():
                    phi.incoming = [
                        (v, block if b is target else b) for v, b in phi.incoming
                    ]
            fn.blocks.remove(target)
            changed += 1
            merged = True
            break
        if not merged:
            return changed
