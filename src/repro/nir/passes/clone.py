"""Block/region cloning utilities used by loop unrolling and inlining."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.nir import ir


class ValueMap:
    """Maps original values/blocks to their clones; identity by default."""

    def __init__(self) -> None:
        self.values: Dict[ir.Instr, ir.Value] = {}
        self.blocks: Dict[ir.Block, ir.Block] = {}

    def value(self, v: ir.Value) -> ir.Value:
        if isinstance(v, ir.Instr):
            return self.values.get(v, v)
        return v

    def block(self, b: ir.Block) -> ir.Block:
        return self.blocks.get(b, b)


def clone_instr(instr: ir.Instr, vmap: ValueMap) -> ir.Instr:
    """Clone one instruction, remapping operands and branch targets."""
    if isinstance(instr, ir.BinOp):
        new = ir.BinOp(instr.op, vmap.value(instr.lhs), vmap.value(instr.rhs), instr.ty)
    elif isinstance(instr, ir.UnOp):
        new = ir.UnOp(instr.op, vmap.value(instr.operands[0]), instr.ty)
    elif isinstance(instr, ir.Cast):
        new = ir.Cast(
            instr.kind, vmap.value(instr.operands[0]), instr.ty,
            explicit=instr.explicit,
        )
    elif isinstance(instr, ir.Select):
        new = ir.Select(
            vmap.value(instr.operands[0]),
            vmap.value(instr.operands[1]),
            vmap.value(instr.operands[2]),
            instr.ty,
        )
    elif isinstance(instr, ir.Alloca):
        new = ir.Alloca(instr.slot_ty, instr.name)
    elif isinstance(instr, ir.Load):
        slot = vmap.value(instr.slot)
        assert isinstance(slot, ir.Alloca)
        new = ir.Load(slot)
    elif isinstance(instr, ir.Store):
        slot = vmap.value(instr.slot)
        assert isinstance(slot, ir.Alloca)
        new = ir.Store(slot, vmap.value(instr.value))
    elif isinstance(instr, ir.LoadElem):
        new = ir.LoadElem(instr.ref, vmap.value(instr.index))
    elif isinstance(instr, ir.StoreElem):
        new = ir.StoreElem(instr.ref, vmap.value(instr.index), vmap.value(instr.value))
    elif isinstance(instr, ir.LoadParam):
        new = ir.LoadParam(instr.param, vmap.value(instr.index))
    elif isinstance(instr, ir.StoreParam):
        new = ir.StoreParam(instr.param, vmap.value(instr.index), vmap.value(instr.value))
    elif isinstance(instr, ir.WinField):
        new = ir.WinField(instr.field, instr.ty)
    elif isinstance(instr, ir.LocField):
        new = ir.LocField(instr.field, instr.ty)
    elif isinstance(instr, ir.LocLabel):
        new = ir.LocLabel(instr.label)
    elif isinstance(instr, ir.CtrlRead):
        idx = instr.index
        new = ir.CtrlRead(instr.ref, vmap.value(idx) if idx is not None else None)
    elif isinstance(instr, ir.MapLookup):
        new = ir.MapLookup(instr.ref, vmap.value(instr.key))
    elif isinstance(instr, ir.MapFound):
        new = ir.MapFound(vmap.value(instr.operands[0]))
    elif isinstance(instr, ir.MapValue):
        new = ir.MapValue(vmap.value(instr.operands[0]), instr.ty)
    elif isinstance(instr, ir.BloomOp):
        new = ir.BloomOp(instr.ref, instr.op, vmap.value(instr.operands[0]))
    elif isinstance(instr, ir.Memcpy):
        new = ir.Memcpy(
            ir.MemRegion(instr.dst.kind, param=instr.dst.param, ref=instr.dst.ref),
            vmap.value(instr.dst_off),
            ir.MemRegion(instr.src.kind, param=instr.src.param, ref=instr.src.ref),
            vmap.value(instr.src_off),
            vmap.value(instr.nbytes),
        )
    elif isinstance(instr, ir.Fwd):
        new = ir.Fwd(instr.kind, instr.label)
    elif isinstance(instr, ir.CallFn):
        new = ir.CallFn(instr.callee, [vmap.value(op) for op in instr.operands])
    elif isinstance(instr, ir.Phi):
        new = ir.Phi(instr.ty)
        for value, block in instr.incoming:
            new.add_incoming(vmap.value(value), vmap.block(block))
    elif isinstance(instr, ir.Br):
        new = ir.Br(vmap.block(instr.target))
    elif isinstance(instr, ir.CondBr):
        new = ir.CondBr(
            vmap.value(instr.cond), vmap.block(instr.then), vmap.block(instr.other)
        )
    elif isinstance(instr, ir.Ret):
        new = ir.Ret(vmap.value(instr.value) if instr.value is not None else None)
    else:
        raise ir.IrError(f"cannot clone {type(instr).__name__}")  # type: ignore[attr-defined]
    new.loc = instr.loc
    return new


def clone_function(fn: ir.Function, new_name: Optional[str] = None) -> ir.Function:
    """Deep-copy a whole function (used by nclc's IR versioning to create
    per-location module versions that are then specialized in place)."""
    new_fn = ir.Function(
        new_name or fn.name,
        fn.kind,
        [ir.Param(p.index, p.name, p.ty, p.ext) for p in fn.params],
        fn.ret,
        fn.at_label,
    )
    param_map = {old: new for old, new in zip(fn.params, new_fn.params)}
    vmap = ValueMap()
    for block in fn.blocks:
        clone = ir.Block(block.label)
        vmap.blocks[block] = clone
        new_fn.blocks.append(clone)
    for block in fn.blocks:
        clone = vmap.blocks[block]
        for instr in block.instrs:
            new = clone_instr(instr, vmap)
            new.block = clone
            clone.instrs.append(new)
            vmap.values[instr] = new
    for clone in new_fn.blocks:
        for instr in clone.instrs:
            for idx, op in enumerate(instr.operands):
                if isinstance(op, ir.Instr) and op in vmap.values:
                    new_op = vmap.values[op]
                    if new_op is not op:
                        instr.operands[idx] = new_op
                        if isinstance(instr, ir.Phi):
                            instr.incoming[idx] = (new_op, instr.incoming[idx][1])
                elif isinstance(op, ir.Param) and op in param_map:
                    instr.operands[idx] = param_map[op]
                    if isinstance(instr, ir.Phi):
                        instr.incoming[idx] = (param_map[op], instr.incoming[idx][1])
            if isinstance(instr, ir.Phi):
                instr.incoming = [(v, vmap.block(b)) for v, b in instr.incoming]
            elif isinstance(instr, ir.Br):
                instr.target = vmap.block(instr.target)
            elif isinstance(instr, ir.CondBr):
                instr.then = vmap.block(instr.then)
                instr.other = vmap.block(instr.other)
            if isinstance(instr, (ir.LoadParam, ir.StoreParam)) and instr.param in param_map:
                instr.param = param_map[instr.param]
            if isinstance(instr, ir.Memcpy):
                for region in (instr.dst, instr.src):
                    if region.kind == "param" and region.param in param_map:
                        region.param = param_map[region.param]
    new_fn._label_counter = fn._label_counter
    return new_fn


def clone_region(
    fn: ir.Function,
    blocks: Iterable[ir.Block],
    vmap: ValueMap,
    suffix: str,
) -> List[ir.Block]:
    """Clone *blocks* into *fn*. ``vmap`` may be pre-seeded (e.g. to map
    header phis to concrete values); it is extended with all clones.

    Branch targets and phi incomings pointing inside the region are
    remapped; those pointing outside are preserved.
    """
    originals = list(blocks)
    clones: List[ir.Block] = []
    for block in originals:
        clone = ir.Block(f"{block.label}.{suffix}")
        vmap.blocks[block] = clone
        clones.append(clone)
        fn.blocks.append(clone)
    for block, clone in zip(originals, clones):
        for instr in block.instrs:
            if isinstance(instr, ir.Instr) and instr in vmap.values:
                continue  # pre-seeded (e.g. header phi replaced by a value)
            new = clone_instr(instr, vmap)
            new.block = clone
            clone.instrs.append(new)
            vmap.values[instr] = new
    # Second pass: operands referencing region instructions cloned *after*
    # their use site (possible with phis/back edges) need remapping.
    for clone in clones:
        for instr in clone.instrs:
            for idx, op in enumerate(instr.operands):
                if isinstance(op, ir.Instr) and op in vmap.values:
                    new_op = vmap.values[op]
                    if new_op is not op:
                        instr.operands[idx] = new_op
                        if isinstance(instr, ir.Phi):
                            instr.incoming[idx] = (new_op, instr.incoming[idx][1])
            if isinstance(instr, ir.Phi):
                instr.incoming = [
                    (v, vmap.block(b)) for v, b in instr.incoming
                ]
            elif isinstance(instr, ir.Br):
                instr.target = vmap.block(instr.target)
            elif isinstance(instr, ir.CondBr):
                instr.then = vmap.block(instr.then)
                instr.other = vmap.block(instr.other)
    return clones
