"""NIR: the NCL intermediate representation, passes, and interpreter."""

from repro.nir.ir import Function, FunctionKind, FwdKind, Module
from repro.nir.interp import DeviceState, Interpreter, InterpResult, WindowContext, run_kernel
from repro.nir.lower import lower_unit
from repro.nir.verify import verify_function, verify_module

__all__ = [
    "DeviceState",
    "Function",
    "FunctionKind",
    "FwdKind",
    "Interpreter",
    "InterpResult",
    "Module",
    "WindowContext",
    "lower_unit",
    "run_kernel",
    "verify_function",
    "verify_module",
]
