"""NCL language frontend: lexer, parser, semantic analysis, type system."""

from repro.ncl.ast import KernelKind, Program
from repro.ncl.lexer import tokenize
from repro.ncl.parser import parse
from repro.ncl.sema import TranslationUnit, analyze

__all__ = [
    "KernelKind",
    "Program",
    "TranslationUnit",
    "analyze",
    "parse",
    "tokenize",
    "frontend",
]


def frontend(source: str, filename: str = "<ncl>", defines=None, sink=None) -> TranslationUnit:
    """Parse and analyze NCL source in one step.

    With a :class:`repro.diag.DiagnosticSink` as *sink*, semantic errors
    are collected instead of raised (parse errors still raise -- the
    parser is fail-fast).
    """
    return analyze(parse(source, filename, defines), sink=sink)
