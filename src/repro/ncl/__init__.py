"""NCL language frontend: lexer, parser, semantic analysis, type system."""

from repro.ncl.ast import KernelKind, Program
from repro.ncl.lexer import tokenize
from repro.ncl.parser import parse
from repro.ncl.sema import TranslationUnit, analyze

__all__ = [
    "KernelKind",
    "Program",
    "TranslationUnit",
    "analyze",
    "parse",
    "tokenize",
    "frontend",
]


def frontend(source: str, filename: str = "<ncl>", defines=None) -> TranslationUnit:
    """Parse and analyze NCL source in one step."""
    return analyze(parse(source, filename, defines))
