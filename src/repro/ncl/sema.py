"""Semantic analysis for NCL.

Resolves identifiers, type-checks every expression and statement, enforces
the NCL-specific rules from the paper (S4.1/S4.2), and produces the
:class:`TranslationUnit` semantic model that the nclc compiler driver
consumes.

Key NCL rules enforced here:

* ``_net_`` switch memory is accessible only from kernel code; host code
  touches ``_ctrl_`` variables exclusively through ``ncl::ctrl_wr``.
* ``_ctrl_`` variables and ``ncl::Map`` containers are read-only in
  kernels (Maps additionally require a location).
* forwarding intrinsics (``_drop``/``_pass``/``_bcast``/``_reflect``)
  are valid only inside outgoing kernels;
* ``_ext_`` parameters are valid only on incoming kernels and must
  trail the window-data parameters;
* the builtin ``window`` struct is readable in kernels only; extension
  fields come from a ``struct window { ... };`` declaration;
* incoming kernels' non-``_ext_`` parameter lists must be pairable with
  an outgoing kernel's parameter list (same types, same order).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.diag import DiagnosticSink, diagnostic_from_error
from repro.errors import NclTypeError, SourceLocation
from repro.ncl import ast
from repro.ncl.symbols import Scope, Symbol, SymbolKind
from repro.ncl.types import (
    ArrayType,
    BloomFilterType,
    BOOL,
    I32,
    I64,
    IntType,
    MapType,
    POISON,
    PointerType,
    Type,
    U16,
    U32,
    U64,
    VOID,
    assignable,
    common_type,
)

#: Builtin fields of the window struct (paper S4.2: "sequence number,
#: sender etc."). Extension fields are appended after these.
BUILTIN_WINDOW_FIELDS: List[Tuple[str, Type]] = [
    ("seq", U32),  # window sequence number within a kernel invocation
    ("from", U16),  # node id of the sending host
    ("last", BOOL),  # set on the final window of an invocation
]

#: Forwarding intrinsics available in _out_ kernels (paper S4.1).
FORWARDING_INTRINSICS = ("_drop", "_pass", "_bcast", "_reflect")

#: Runtime API entry points callable from host code.
HOST_RUNTIME_CALLS = ("ncl::out", "ncl::in", "ncl::ctrl_wr", "ncl::map_insert", "ncl::map_erase")


class KernelInfo:
    """Semantic summary of one network kernel."""

    def __init__(self, decl: ast.FuncDecl):
        self.decl = decl
        self.name = decl.name
        self.kind = decl.kernel_kind
        self.at_label = decl.at_label
        self.params = decl.params

    @property
    def data_params(self) -> List[ast.Param]:
        """Window-data parameters (everything that is not ``_ext_``)."""
        return [p for p in self.params if not p.ext]

    @property
    def ext_params(self) -> List[ast.Param]:
        return [p for p in self.params if p.ext]

    def data_signature(self) -> Tuple[Type, ...]:
        return tuple(p.ty for p in self.data_params)

    def __repr__(self) -> str:
        return f"KernelInfo({self.kind.name if self.kind else '?'} {self.name})"


class TranslationUnit:
    """The fully analyzed program: the compiler front end's output."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.out_kernels: Dict[str, KernelInfo] = {}
        self.in_kernels: Dict[str, KernelInfo] = {}
        self.functions: Dict[str, ast.FuncDecl] = {}  # host + helper functions
        self.net_globals: Dict[str, ast.GlobalVar] = {}  # switch memory
        self.ctrl_vars: Dict[str, ast.GlobalVar] = {}  # _ctrl_ scalars/arrays
        self.maps: Dict[str, ast.GlobalVar] = {}
        self.blooms: Dict[str, ast.GlobalVar] = {}
        self.host_globals: Dict[str, ast.GlobalVar] = {}
        self.window_fields: List[Tuple[str, Type]] = list(BUILTIN_WINDOW_FIELDS)
        self.symbols: Dict[str, Symbol] = {}

    @property
    def kernels(self) -> Dict[str, KernelInfo]:
        merged = dict(self.out_kernels)
        merged.update(self.in_kernels)
        return merged

    def window_field_type(self, name: str) -> Optional[Type]:
        for fname, fty in self.window_fields:
            if fname == name:
                return fty
        return None

    def switch_symbols(self) -> List[Symbol]:
        """All switch-resident symbols (memory, ctrl vars, maps, blooms)."""
        return [s for s in self.symbols.values() if s.is_switch_side]

    def paired_out_kernel(self, in_kernel: str) -> Optional[KernelInfo]:
        """Find the outgoing kernel whose parameter list the given incoming
        kernel matches (paper S4.1: an _in_ kernel is 'paired' with an
        _out_ kernel and must match its parameter list)."""
        info = self.in_kernels.get(in_kernel)
        if info is None:
            return None
        sig = info.data_signature()
        for out in self.out_kernels.values():
            if out.data_signature() == sig:
                return out
        return None


class _FnContext:
    """Tracks what the checker may see inside the current function body."""

    def __init__(self, decl: ast.FuncDecl):
        self.decl = decl
        self.kind = decl.kernel_kind  # None for host functions
        self.in_loop = 0
        # Host code may name _ctrl_ variables / Maps only as arguments to
        # control-plane runtime calls (ncl::ctrl_wr, ncl::map_insert, ...).
        self.in_ctrl_call = 0

    @property
    def is_out_kernel(self) -> bool:
        return self.kind is ast.KernelKind.OUT

    @property
    def is_in_kernel(self) -> bool:
        return self.kind is ast.KernelKind.IN

    @property
    def is_kernel(self) -> bool:
        return self.kind is not None


class SemanticAnalyzer:
    """Type checker with two failure modes.

    Without a sink, the first error raises :class:`NclTypeError`
    (fail-fast, the historical behaviour every caller relies on). With a
    :class:`repro.diag.DiagnosticSink`, errors are recorded and analysis
    keeps going: erroneous expressions get the poison type
    (:data:`repro.ncl.types.POISON`), failed declarations still bind
    their name, and every independent mistake in the program surfaces in
    a single run.
    """

    def __init__(self, program: ast.Program, sink: Optional[DiagnosticSink] = None):
        self._program = program
        self._unit = TranslationUnit(program)
        self._globals = Scope()
        self._sink = sink

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def analyze(self) -> TranslationUnit:
        self._collect_window_ext()
        self._collect_globals()
        self._collect_functions()
        for decl in self._program.functions:
            if decl.body is not None:
                with self._recover():
                    self._check_function(decl)
        self._check_kernel_pairing()
        return self._unit

    # ------------------------------------------------------------------
    # Error recovery
    # ------------------------------------------------------------------

    @contextmanager
    def _recover(self):
        """Catch an :class:`NclTypeError` and record it, or re-raise when
        running without a sink. The guarded region simply stops early."""
        try:
            yield
        except NclTypeError as exc:
            if self._sink is None:
                raise
            self._sink.add(diagnostic_from_error(exc))

    def _common_type(self, a: Type, b: Type, loc: SourceLocation) -> Type:
        """`common_type` with the caller's location attached on failure
        (the raw types.py raise carries no source position)."""
        try:
            return common_type(a, b)
        except NclTypeError as exc:
            if exc.loc is None:
                raise NclTypeError(exc.message, loc, code=exc.code) from None
            raise

    # ------------------------------------------------------------------
    # Declaration collection
    # ------------------------------------------------------------------

    def _collect_window_ext(self) -> None:
        ext = self._program.window_ext
        if ext is None:
            return
        builtin_names = {name for name, _ in BUILTIN_WINDOW_FIELDS}
        for name, ty in ext.fields:
            with self._recover():
                if name in builtin_names:
                    raise NclTypeError(
                        f"window extension field {name!r} shadows a builtin field",
                        ext.loc,
                    )
                if any(name == existing for existing, _ in self._unit.window_fields):
                    raise NclTypeError(f"duplicate window field {name!r}", ext.loc)
                self._unit.window_fields.append((name, ty))

    def _collect_globals(self) -> None:
        for gvar in self._program.globals:
            try:
                kind = self._classify_global(gvar)
            except NclTypeError as exc:
                if self._sink is None:
                    raise
                self._sink.add(diagnostic_from_error(exc))
                # Classify by structure anyway so later uses of the name
                # do not cascade into "undeclared identifier" errors.
                kind = self._fallback_kind(gvar)
            sym = Symbol(gvar.name, gvar.ty, kind, gvar.loc, at_label=gvar.at_label)
            with self._recover():
                self._globals.declare(sym)
            self._unit.symbols[gvar.name] = sym
            if kind is SymbolKind.MAP:
                self._unit.maps[gvar.name] = gvar
            elif kind is SymbolKind.BLOOM:
                self._unit.blooms[gvar.name] = gvar
            elif kind is SymbolKind.CTRL:
                self._unit.ctrl_vars[gvar.name] = gvar
            elif kind is SymbolKind.NET_MEM:
                self._unit.net_globals[gvar.name] = gvar
            else:
                self._unit.host_globals[gvar.name] = gvar

    def _classify_global(self, gvar: ast.GlobalVar) -> SymbolKind:
        if isinstance(gvar.ty, MapType):
            if gvar.at_label is None:
                raise NclTypeError(
                    f"Map {gvar.name!r} requires _at_: it is realized as a "
                    "match-action table managed by the control plane",
                    gvar.loc,
                )
            return SymbolKind.MAP
        if isinstance(gvar.ty, BloomFilterType):
            if not gvar.is_net:
                raise NclTypeError(f"BloomFilter {gvar.name!r} must be _net_", gvar.loc)
            return SymbolKind.BLOOM
        if gvar.is_ctrl:
            if not gvar.is_net:
                raise NclTypeError("_ctrl_ requires _net_", gvar.loc)
            if gvar.at_label is None:
                raise NclTypeError(
                    f"control variable {gvar.name!r} requires _at_(label) "
                    "(paper S4.1: location is required for _ctrl_)",
                    gvar.loc,
                )
            return SymbolKind.CTRL
        if gvar.is_net:
            if gvar.ty.is_pointer:
                raise NclTypeError("switch memory cannot be a pointer", gvar.loc)
            return SymbolKind.NET_MEM
        return SymbolKind.HOST_GLOBAL

    @staticmethod
    def _fallback_kind(gvar: ast.GlobalVar) -> SymbolKind:
        """Best-effort kind for a global whose classification errored."""
        if isinstance(gvar.ty, MapType):
            return SymbolKind.MAP
        if isinstance(gvar.ty, BloomFilterType):
            return SymbolKind.BLOOM
        if gvar.is_ctrl:
            return SymbolKind.CTRL
        if gvar.is_net:
            return SymbolKind.NET_MEM
        return SymbolKind.HOST_GLOBAL

    def _collect_functions(self) -> None:
        prototypes: Dict[str, ast.FuncDecl] = {}
        for decl in self._program.functions:
            existing = self._globals.lookup(decl.name)
            if existing is not None:
                proto = prototypes.get(decl.name)
                if (
                    proto is not None
                    and proto.body is None
                    and decl.body is not None
                    and proto.ret == decl.ret
                    and [p.ty for p in proto.params] == [p.ty for p in decl.params]
                ):
                    # definition completing a forward declaration
                    proto.body = decl.body
                    proto.params = decl.params
                    continue
                with self._recover():
                    raise NclTypeError(f"redefinition of {decl.name!r}", decl.loc)
                continue  # recovered: keep the first definition
            if decl.body is None:
                prototypes[decl.name] = decl
            sym = Symbol(decl.name, decl.ret, SymbolKind.FUNC, decl.loc, at_label=decl.at_label)
            self._globals.declare(sym)
            self._unit.symbols[decl.name] = sym
            # Recoverable: an invalid signature still registers the kernel
            # so ncl::out(kernel, ...) call sites do not cascade.
            with self._recover():
                self._validate_signature(decl)
            if decl.kernel_kind is ast.KernelKind.OUT:
                self._unit.out_kernels[decl.name] = KernelInfo(decl)
            elif decl.kernel_kind is ast.KernelKind.IN:
                self._unit.in_kernels[decl.name] = KernelInfo(decl)
            else:
                self._unit.functions[decl.name] = decl

    def _validate_signature(self, decl: ast.FuncDecl) -> None:
        seen_ext = False
        for param in decl.params:
            if param.ext:
                seen_ext = True
                if decl.kernel_kind is not ast.KernelKind.IN:
                    raise NclTypeError(
                        "_ext_ parameters are only valid on incoming kernels",
                        param.loc,
                    )
            elif seen_ext:
                raise NclTypeError(
                    "window-data parameters must precede _ext_ parameters",
                    param.loc,
                )
            if param.ty.is_array:
                raise NclTypeError(
                    "array parameters are not supported; pass a pointer", param.loc
                )
        if decl.kernel_kind is not None:
            if not decl.ret.is_void:
                raise NclTypeError("network kernels must return void", decl.loc)
            if not decl.params:
                raise NclTypeError("a kernel needs at least one data parameter", decl.loc)
            for param in decl.params:
                if not param.ext and not param.ty.is_pointer and not param.ty.is_scalar:
                    raise NclTypeError(
                        f"kernel parameter {param.name!r} must be scalar or pointer",
                        param.loc,
                    )
        if decl.kernel_kind is ast.KernelKind.IN and decl.at_label is not None:
            raise NclTypeError(
                "_at_ is meaningless on incoming kernels (they exist on all hosts)",
                decl.loc,
            )

    def _check_kernel_pairing(self) -> None:
        for name in self._unit.in_kernels:
            if self._unit.paired_out_kernel(name) is None and self._unit.out_kernels:
                info = self._unit.in_kernels[name]
                with self._recover():
                    raise NclTypeError(
                        f"incoming kernel {name!r} does not match any outgoing "
                        "kernel's parameter list",
                        info.decl.loc,
                    )

    # ------------------------------------------------------------------
    # Function body checking
    # ------------------------------------------------------------------

    def _check_function(self, decl: ast.FuncDecl) -> None:
        ctx = _FnContext(decl)
        scope = Scope(self._globals)
        for param in decl.params:
            scope.declare(Symbol(param.name, param.ty, SymbolKind.PARAM, param.loc, ext=param.ext))
        self._check_block(decl.body, scope, ctx)  # type: ignore[arg-type]

    def _check_block(self, block: ast.Block, scope: Scope, ctx: _FnContext) -> None:
        inner = Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner, ctx)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope, ctx: _FnContext) -> None:
        # Statement granularity is the recovery unit: one bad statement is
        # recorded and skipped, its siblings are still checked.
        with self._recover():
            self._check_stmt_inner(stmt, scope, ctx)

    def _check_stmt_inner(self, stmt: ast.Stmt, scope: Scope, ctx: _FnContext) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, ctx)
        elif isinstance(stmt, ast.DeclStmt):
            self._check_decl(stmt, scope, ctx)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope, ctx)
        elif isinstance(stmt, ast.If):
            self._check_if(stmt, scope, ctx)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.cond, scope, ctx)
            ctx.in_loop += 1
            self._check_stmt(stmt.body, Scope(scope), ctx)
            ctx.in_loop -= 1
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, ctx)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner, ctx)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner, ctx)
            ctx.in_loop += 1
            self._check_stmt(stmt.body, Scope(inner), ctx)
            ctx.in_loop -= 1
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope, ctx)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if ctx.in_loop == 0:
                raise NclTypeError("break/continue outside a loop", stmt.loc)
        else:
            raise NclTypeError(f"unsupported statement {type(stmt).__name__}", stmt.loc)

    def _check_decl(self, stmt: ast.DeclStmt, scope: Scope, ctx: _FnContext) -> None:
        try:
            self._check_decl_inner(stmt, scope, ctx)
        except NclTypeError as exc:
            if self._sink is None:
                raise
            self._sink.add(diagnostic_from_error(exc))
            # Bind the name anyway (with poison if the type is unknown) so
            # later uses do not report it as undeclared.
            if stmt.ty is None:
                stmt.ty = POISON
            if scope.lookup(stmt.name) is None:
                scope.declare(Symbol(stmt.name, stmt.ty, SymbolKind.LOCAL, stmt.loc))

    def _check_decl_inner(self, stmt: ast.DeclStmt, scope: Scope, ctx: _FnContext) -> None:
        braced = getattr(stmt, "braced_init", None)
        if braced is not None:
            raise NclTypeError(
                "braced initializers are only supported at file scope", stmt.loc
            )
        if stmt.is_auto:
            init_ty = self._check_expr(stmt.init, scope, ctx)  # type: ignore[arg-type]
            depth = getattr(stmt, "auto_ptr_depth", 0)
            if depth > 0 and not init_ty.is_pointer:
                raise NclTypeError(
                    "auto* requires a pointer initializer (e.g. a Map lookup)",
                    stmt.loc,
                )
            stmt.ty = init_ty
        else:
            assert stmt.ty is not None
            if stmt.ty.is_void:
                raise NclTypeError("cannot declare a void variable", stmt.loc)
            if stmt.init is not None:
                init_ty = self._check_expr(stmt.init, scope, ctx)
                if not assignable(stmt.ty, init_ty):
                    raise NclTypeError(
                        f"cannot initialize {stmt.ty!r} from {init_ty!r}", stmt.loc
                    )
            if ctx.is_kernel and stmt.ty.is_array:
                raise NclTypeError(
                    "local arrays are not supported in kernels "
                    "(use _net_ switch memory)",
                    stmt.loc,
                )
        scope.declare(Symbol(stmt.name, stmt.ty, SymbolKind.LOCAL, stmt.loc))

    def _check_if(self, stmt: ast.If, scope: Scope, ctx: _FnContext) -> None:
        inner = Scope(scope)
        if stmt.cond_decl is not None:
            self._check_decl(stmt.cond_decl, inner, ctx)
            decl_ty = stmt.cond_decl.ty
            if not (decl_ty and (decl_ty.is_pointer or decl_ty.is_scalar)):
                raise NclTypeError(
                    "condition declaration must yield a pointer or scalar",
                    stmt.cond_decl.loc,
                )
        if stmt.cond is not None:
            self._check_condition(stmt.cond, inner, ctx)
        self._check_stmt(stmt.then, Scope(inner), ctx)
        if stmt.orelse is not None:
            self._check_stmt(stmt.orelse, Scope(scope), ctx)

    def _check_condition(self, cond: ast.Expr, scope: Scope, ctx: _FnContext) -> None:
        ty = self._check_expr(cond, scope, ctx)
        if not (ty.is_scalar or ty.is_pointer):
            raise NclTypeError(f"condition must be scalar or pointer, got {ty!r}", cond.loc)

    def _check_return(self, stmt: ast.Return, scope: Scope, ctx: _FnContext) -> None:
        ret = ctx.decl.ret
        if stmt.value is None:
            if not ret.is_void:
                raise NclTypeError("non-void function must return a value", stmt.loc)
            return
        if ret.is_void:
            raise NclTypeError("void function cannot return a value", stmt.loc)
        value_ty = self._check_expr(stmt.value, scope, ctx)
        if not assignable(ret, value_ty):
            raise NclTypeError(f"cannot return {value_ty!r} as {ret!r}", stmt.loc)

    # ------------------------------------------------------------------
    # Expression checking
    # ------------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: Scope, ctx: _FnContext) -> Type:
        try:
            ty = self._check_expr_inner(expr, scope, ctx)
        except NclTypeError as exc:
            if self._sink is None:
                raise
            self._sink.add(diagnostic_from_error(exc))
            ty = POISON
        expr.ty = ty
        return ty

    def _check_expr_inner(self, expr: ast.Expr, scope: Scope, ctx: _FnContext) -> Type:
        if isinstance(expr, ast.IntLit):
            # C-style: decimal literals take the first signed type that
            # fits (int, then long long); only huge values go unsigned.
            if expr.value <= 0x7FFFFFFF:
                return I32
            if expr.value <= 0x7FFFFFFFFFFFFFFF:
                return I64
            return U64
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.StrLit):
            return PointerType(IntType(8, signed=True))
        if isinstance(expr, ast.Ident):
            return self._check_ident(expr, scope, ctx)
        if isinstance(expr, ast.Member):
            return self._check_member(expr, scope, ctx)
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope, ctx)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, scope, ctx)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope, ctx)
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr, scope, ctx)
        if isinstance(expr, ast.Ternary):
            self._check_condition(expr.cond, scope, ctx)
            then_ty = self._check_expr(expr.then, scope, ctx)
            other_ty = self._check_expr(expr.other, scope, ctx)
            if then_ty == other_ty:
                return then_ty
            return self._common_type(then_ty, other_ty, expr.loc)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope, ctx)
        if isinstance(expr, ast.Cast):
            operand_ty = self._check_expr(expr.operand, scope, ctx)
            if expr.target.is_scalar and (operand_ty.is_scalar or operand_ty.is_pointer):
                return expr.target
            if expr.target.is_pointer and operand_ty.is_pointer:
                return expr.target
            raise NclTypeError(
                f"unsupported cast from {operand_ty!r} to {expr.target!r}", expr.loc
            )
        raise NclTypeError(f"unsupported expression {type(expr).__name__}", expr.loc)

    def _check_ident(self, expr: ast.Ident, scope: Scope, ctx: _FnContext) -> Type:
        if expr.name == "window":
            if not ctx.is_kernel:
                raise NclTypeError("'window' is only available in kernel code", expr.loc)
            return VOID  # only valid under a Member access; flagged there
        if expr.name == "location":
            if not ctx.is_out_kernel:
                raise NclTypeError(
                    "'location' is only available in outgoing kernels", expr.loc
                )
            return VOID
        sym = scope.lookup(expr.name)
        if sym is None:
            raise NclTypeError(
                f"use of undeclared identifier {expr.name!r}",
                expr.loc,
                code="NCL0404",
                length=len(expr.name),
            )
        expr.decl = sym
        self._check_symbol_access(sym, expr.loc, ctx)
        return sym.ty

    def _check_symbol_access(self, sym: Symbol, loc: SourceLocation, ctx: _FnContext) -> None:
        if sym.is_switch_side and not ctx.is_out_kernel:
            writable_kinds = (SymbolKind.CTRL, SymbolKind.MAP, SymbolKind.BLOOM)
            if ctx.in_ctrl_call and sym.kind in writable_kinds:
                return  # host writes _ctrl_ state via the control plane
            raise NclTypeError(
                f"switch-side symbol {sym.name!r} is only accessible in "
                "outgoing kernel code (hosts use the control plane)",
                loc,
            )
        if sym.kind is SymbolKind.HOST_GLOBAL and ctx.is_out_kernel:
            raise NclTypeError(
                f"host global {sym.name!r} is not accessible from switch code",
                loc,
            )

    def _check_member(self, expr: ast.Member, scope: Scope, ctx: _FnContext) -> Type:
        base = expr.base
        if isinstance(base, ast.Ident) and base.name == "window":
            if not ctx.is_kernel:
                raise NclTypeError("'window' is only available in kernel code", expr.loc)
            base.ty = VOID
            fty = self._unit.window_field_type(expr.field)
            if fty is None:
                raise NclTypeError(
                    f"window struct has no field {expr.field!r} "
                    "(declare it via `struct window { ... };`)",
                    expr.loc,
                )
            return fty
        if isinstance(base, ast.Ident) and base.name == "location":
            if not ctx.is_out_kernel:
                raise NclTypeError(
                    "'location' is only available in outgoing kernels", expr.loc
                )
            base.ty = VOID
            if expr.field == "id":
                return U16
            raise NclTypeError(f"location struct has no field {expr.field!r}", expr.loc)
        raise NclTypeError(
            "member access is only defined on the builtin window/location structs",
            expr.loc,
        )

    def _check_index(self, expr: ast.Index, scope: Scope, ctx: _FnContext) -> Type:
        base_ty = self._check_expr(expr.base, scope, ctx)
        index_ty = self._check_expr(expr.index, scope, ctx)
        if base_ty.is_error or index_ty.is_error:
            return POISON  # suppress cascades from an already-bad operand
        if isinstance(base_ty, MapType):
            if not ctx.is_out_kernel:
                raise NclTypeError("Map lookup is only valid in outgoing kernels", expr.loc)
            if not index_ty.is_integer:
                raise NclTypeError(f"Map key must be integer, got {index_ty!r}", expr.loc)
            return PointerType(base_ty.value)
        # Auto-deref a pointer used as an index (Fig 5: Valid[idx] with auto *idx).
        if index_ty.is_pointer:
            pointee = index_ty.pointee  # type: ignore[attr-defined]
            if not pointee.is_scalar:
                raise NclTypeError("cannot index with a non-scalar pointer", expr.loc)
            index_ty = pointee
        if not (index_ty.is_integer or index_ty.is_bool):
            raise NclTypeError(f"array index must be integer, got {index_ty!r}", expr.loc)
        if isinstance(base_ty, ArrayType):
            return base_ty.element
        if isinstance(base_ty, PointerType):
            return base_ty.pointee
        raise NclTypeError(f"cannot subscript {base_ty!r}", expr.loc)

    def _check_unary(self, expr: ast.Unary, scope: Scope, ctx: _FnContext) -> Type:
        operand_ty = self._check_expr(expr.operand, scope, ctx)
        if operand_ty.is_error:
            return POISON  # suppress cascades from an already-bad operand
        op = expr.op
        if op in ("++", "--"):
            self._require_lvalue(expr.operand, ctx)
            if not operand_ty.is_scalar:
                raise NclTypeError(f"cannot {op} a {operand_ty!r}", expr.loc)
            return operand_ty
        if op == "*":
            if not operand_ty.is_pointer:
                raise NclTypeError(f"cannot dereference {operand_ty!r}", expr.loc)
            return operand_ty.pointee  # type: ignore[attr-defined]
        if op == "&":
            self._require_lvalue(expr.operand, ctx, for_addressof=True)
            return PointerType(operand_ty)
        if op == "!":
            if not (operand_ty.is_scalar or operand_ty.is_pointer):
                raise NclTypeError(f"cannot logically negate {operand_ty!r}", expr.loc)
            return BOOL
        if op in ("-", "~"):
            if not operand_ty.is_scalar:
                raise NclTypeError(f"cannot apply {op} to {operand_ty!r}", expr.loc)
            return self._common_type(operand_ty, I32, expr.loc)
        raise NclTypeError(f"unsupported unary operator {op!r}", expr.loc)

    def _check_binary(self, expr: ast.Binary, scope: Scope, ctx: _FnContext) -> Type:
        lhs_ty = self._check_expr(expr.lhs, scope, ctx)
        rhs_ty = self._check_expr(expr.rhs, scope, ctx)
        if lhs_ty.is_error or rhs_ty.is_error:
            return POISON  # suppress cascades from an already-bad operand
        op = expr.op
        if op == ",":
            return rhs_ty
        if op in ("&&", "||"):
            for side, ty in ((expr.lhs, lhs_ty), (expr.rhs, rhs_ty)):
                if not (ty.is_scalar or ty.is_pointer):
                    raise NclTypeError(f"cannot use {ty!r} as a boolean", side.loc)
            return BOOL
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lhs_ty.is_pointer and rhs_ty.is_pointer:
                return BOOL
            if lhs_ty.is_pointer or rhs_ty.is_pointer:
                # pointer vs null-ish integer comparison
                other = rhs_ty if lhs_ty.is_pointer else lhs_ty
                if not other.is_integer:
                    raise NclTypeError("invalid pointer comparison", expr.loc)
                return BOOL
            self._common_type(lhs_ty, rhs_ty, expr.loc)  # validates operands
            return BOOL
        if not (lhs_ty.is_scalar and rhs_ty.is_scalar):
            raise NclTypeError(
                f"invalid operands to {op!r}: {lhs_ty!r} and {rhs_ty!r}", expr.loc
            )
        return self._common_type(lhs_ty, rhs_ty, expr.loc)

    def _check_assign(self, expr: ast.Assign, scope: Scope, ctx: _FnContext) -> Type:
        target_ty = self._check_expr(expr.target, scope, ctx)
        value_ty = self._check_expr(expr.value, scope, ctx)
        self._require_lvalue(expr.target, ctx)
        if expr.op == "=":
            if not assignable(target_ty, value_ty):
                raise NclTypeError(
                    f"cannot assign {value_ty!r} to {target_ty!r}", expr.loc
                )
        else:
            if not (target_ty.is_scalar and value_ty.is_scalar):
                raise NclTypeError(
                    f"invalid compound assignment on {target_ty!r}", expr.loc
                )
        return target_ty

    def _require_lvalue(
        self, expr: ast.Expr, ctx: _FnContext, for_addressof: bool = False
    ) -> None:
        if isinstance(expr, ast.Ident):
            if expr.name in ("window", "location"):
                raise NclTypeError(f"{expr.name!r} is not assignable", expr.loc)
            sym = expr.decl
            if isinstance(sym, Symbol):
                if sym.kind in (SymbolKind.CTRL, SymbolKind.MAP, SymbolKind.BLOOM):
                    if for_addressof and ctx.in_ctrl_call:
                        return  # &ctrl_var handle passed to ncl::ctrl_wr
                    raise NclTypeError(
                        f"{sym.name!r} is read-only in kernel code "
                        "(written via the control plane)",
                        expr.loc,
                    )
                if sym.kind is SymbolKind.FUNC:
                    raise NclTypeError("cannot assign to a function", expr.loc)
            return
        if isinstance(expr, ast.Index):
            base_ty = expr.base.ty
            if isinstance(base_ty, MapType):
                raise NclTypeError(
                    "Map entries are read-only in kernel code", expr.loc
                )
            self._require_base_writable(expr.base)
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            inner = expr.operand
            if isinstance(inner.ty, PointerType) and self._is_map_lookup(inner):
                raise NclTypeError("Map entries are read-only in kernel code", expr.loc)
            return
        if isinstance(expr, ast.Member):
            base = expr.base
            if isinstance(base, ast.Ident) and base.name == "window":
                raise NclTypeError(
                    "window metadata fields are read-only in kernel code", expr.loc
                )
            return
        if for_addressof and isinstance(expr, ast.Index):
            return
        raise NclTypeError("expression is not assignable", expr.loc)

    def _require_base_writable(self, base: ast.Expr) -> None:
        node = base
        while isinstance(node, ast.Index):
            node = node.base
        if isinstance(node, ast.Ident) and isinstance(node.decl, Symbol):
            sym = node.decl
            if sym.kind in (SymbolKind.CTRL, SymbolKind.MAP):
                raise NclTypeError(
                    f"{sym.name!r} is read-only in kernel code", node.loc
                )

    @staticmethod
    def _is_map_lookup(expr: ast.Expr) -> bool:
        return isinstance(expr, ast.Index) and isinstance(expr.base.ty, MapType)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _check_call(self, expr: ast.Call, scope: Scope, ctx: _FnContext) -> Type:
        name = expr.name
        if name in FORWARDING_INTRINSICS:
            return self._check_forwarding(expr, scope, ctx)
        if name == "memcpy":
            return self._check_memcpy(expr, scope, ctx)
        if name == "_locid":
            return self._check_locid(expr, ctx)
        if name in ("ncl::bf_insert", "ncl::bf_query"):
            return self._check_bloom_call(expr, scope, ctx)
        if name in HOST_RUNTIME_CALLS:
            return self._check_runtime_call(expr, scope, ctx)
        if name == "__list__":
            for arg in expr.args:
                self._check_expr(arg, scope, ctx)
            return VOID
        # User helper function.
        sym = self._globals.lookup(name)
        if sym is None or sym.kind is not SymbolKind.FUNC:
            raise NclTypeError(
                f"call to undeclared function {name!r}",
                expr.loc,
                code="NCL0405",
                length=len(name),
            )
        decl = self._find_function(name)
        if decl is None:
            raise NclTypeError(f"{name!r} is not callable here", expr.loc)
        if decl.is_kernel:
            raise NclTypeError(
                f"kernel {name!r} cannot be called directly; use ncl::out/ncl::in",
                expr.loc,
            )
        if len(expr.args) != len(decl.params):
            raise NclTypeError(
                f"{name!r} expects {len(decl.params)} arguments, got {len(expr.args)}",
                expr.loc,
            )
        for arg, param in zip(expr.args, decl.params):
            arg_ty = self._check_expr(arg, scope, ctx)
            if not assignable(param.ty, arg_ty):
                raise NclTypeError(
                    f"argument {param.name!r}: cannot pass {arg_ty!r} as {param.ty!r}",
                    arg.loc,
                )
        expr.decl = decl  # type: ignore[attr-defined]
        return decl.ret

    def _find_function(self, name: str) -> Optional[ast.FuncDecl]:
        for decl in self._program.functions:
            if decl.name == name:
                return decl
        return None

    def _check_forwarding(self, expr: ast.Call, scope: Scope, ctx: _FnContext) -> Type:
        expr.is_intrinsic = True
        # Allowed in outgoing kernels and in plain helper functions (which
        # only ever run inlined into outgoing kernels); forbidden in
        # incoming kernels, which have no forwarding role.
        if ctx.is_in_kernel or ctx.decl.name == "main":
            raise NclTypeError(
                f"{expr.name} is only valid inside outgoing kernels", expr.loc
            )
        if expr.name == "_pass":
            if len(expr.args) > 1:
                raise NclTypeError("_pass takes at most one label argument", expr.loc)
            if expr.args and not isinstance(expr.args[0], ast.StrLit):
                raise NclTypeError("_pass label must be a string literal", expr.loc)
            if expr.args:
                expr.args[0].ty = PointerType(IntType(8, signed=True))
        elif expr.args:
            raise NclTypeError(f"{expr.name} takes no arguments", expr.loc)
        return VOID

    def _check_memcpy(self, expr: ast.Call, scope: Scope, ctx: _FnContext) -> Type:
        expr.is_intrinsic = True
        if len(expr.args) != 3:
            raise NclTypeError("memcpy(dst, src, nbytes) takes 3 arguments", expr.loc)
        dst_ty = self._check_expr(expr.args[0], scope, ctx)
        src_ty = self._check_expr(expr.args[1], scope, ctx)
        len_ty = self._check_expr(expr.args[2], scope, ctx)
        for what, ty, arg in (("dst", dst_ty, expr.args[0]), ("src", src_ty, expr.args[1])):
            if not (ty.is_pointer or ty.is_array or ty.is_error):
                raise NclTypeError(f"memcpy {what} must be pointer/array, got {ty!r}", arg.loc)
        if not (len_ty.is_integer or len_ty.is_error):
            raise NclTypeError("memcpy length must be an integer", expr.args[2].loc)
        return VOID

    def _check_locid(self, expr: ast.Call, ctx: _FnContext) -> Type:
        expr.is_intrinsic = True
        if not ctx.is_out_kernel:
            raise NclTypeError("_locid is only valid in outgoing kernels", expr.loc)
        if len(expr.args) != 1 or not isinstance(expr.args[0], ast.StrLit):
            raise NclTypeError('_locid expects a single string label, e.g. _locid("s1")', expr.loc)
        expr.args[0].ty = PointerType(IntType(8, signed=True))
        return U16

    def _check_bloom_call(self, expr: ast.Call, scope: Scope, ctx: _FnContext) -> Type:
        expr.is_intrinsic = True
        if not ctx.is_out_kernel:
            raise NclTypeError(f"{expr.name} is only valid in outgoing kernels", expr.loc)
        if len(expr.args) != 2:
            raise NclTypeError(f"{expr.name}(filter, key) takes 2 arguments", expr.loc)
        filt_ty = self._check_expr(expr.args[0], scope, ctx)
        key_ty = self._check_expr(expr.args[1], scope, ctx)
        if not isinstance(filt_ty, BloomFilterType) and not filt_ty.is_error:
            raise NclTypeError("first argument must be a BloomFilter", expr.args[0].loc)
        if not (key_ty.is_integer or key_ty.is_error):
            raise NclTypeError("BloomFilter key must be integer", expr.args[1].loc)
        return BOOL if expr.name == "ncl::bf_query" else VOID

    def _check_runtime_call(self, expr: ast.Call, scope: Scope, ctx: _FnContext) -> Type:
        expr.is_intrinsic = True
        if ctx.is_kernel:
            raise NclTypeError(
                f"{expr.name} is host-side runtime API, not available in kernels",
                expr.loc,
            )
        is_ctrl_call = expr.name in ("ncl::ctrl_wr", "ncl::map_insert", "ncl::map_erase")
        if is_ctrl_call:
            ctx.in_ctrl_call += 1
        try:
            for arg in expr.args:
                self._check_expr(arg, scope, ctx)
        finally:
            if is_ctrl_call:
                ctx.in_ctrl_call -= 1
        if expr.name in ("ncl::out", "ncl::in"):
            if not expr.args:
                raise NclTypeError(f"{expr.name} requires a kernel argument", expr.loc)
            head = expr.args[0]
            if not isinstance(head, ast.Ident) or (
                head.name not in self._unit.out_kernels
                and head.name not in self._unit.in_kernels
            ):
                raise NclTypeError(
                    f"first argument of {expr.name} must name a kernel", head.loc
                )
        return I32 if expr.name in ("ncl::out", "ncl::in") else VOID


def analyze(
    program: ast.Program, sink: Optional[DiagnosticSink] = None
) -> TranslationUnit:
    """Run semantic analysis over a parsed NCL program.

    Without *sink*, the first error raises :class:`NclTypeError`. With a
    sink, all independent errors are collected and the (possibly
    poison-typed) translation unit is returned; check
    ``sink.has_errors`` before handing it to the compiler.
    """
    return SemanticAnalyzer(program, sink=sink).analyze()
