"""Symbols and scopes for NCL semantic analysis."""

from __future__ import annotations

from enum import Enum, auto
from typing import Dict, List, Optional

from repro.errors import NclTypeError, SourceLocation
from repro.ncl.types import Type


class SymbolKind(Enum):
    LOCAL = auto()  # block-scope variable
    PARAM = auto()  # kernel/function parameter
    HOST_GLOBAL = auto()  # ordinary file-scope variable (host memory)
    NET_MEM = auto()  # _net_ switch memory (register array / scalar)
    CTRL = auto()  # _net_ _ctrl_ control variable (host-written)
    MAP = auto()  # ncl::Map global (implicitly _ctrl_)
    BLOOM = auto()  # ncl::BloomFilter global
    FUNC = auto()  # function or kernel


class Symbol:
    """A named entity. ``at_label`` only applies to switch-side symbols."""

    def __init__(
        self,
        name: str,
        ty: Type,
        kind: SymbolKind,
        loc: SourceLocation,
        at_label: Optional[str] = None,
        ext: bool = False,
    ):
        self.name = name
        self.ty = ty
        self.kind = kind
        self.loc = loc
        self.at_label = at_label
        self.ext = ext

    @property
    def is_switch_side(self) -> bool:
        return self.kind in (SymbolKind.NET_MEM, SymbolKind.CTRL, SymbolKind.MAP, SymbolKind.BLOOM)

    def __repr__(self) -> str:
        return f"Symbol({self.kind.name} {self.name}: {self.ty!r})"


class Scope:
    """Lexically nested symbol table."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> Symbol:
        if symbol.name in self._symbols:
            prev = self._symbols[symbol.name]
            raise NclTypeError(
                f"redeclaration of {symbol.name!r} (previous at {prev.loc})",
                symbol.loc,
            )
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            sym = scope._symbols.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    def locals(self) -> List[Symbol]:
        return list(self._symbols.values())
