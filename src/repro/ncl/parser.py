"""Recursive-descent parser for the NCL C subset.

The grammar covers what the paper's examples (Figs 4 and 5) use, plus the
usual C statement/expression forms:

* file-scope variables with the ``_net_``/``_ctrl_``/``_at_("label")``
  declaration specifiers, arrays (1-D and 2-D) and braced initializers;
* ``ncl::Map<K, V, N>`` and ``ncl::BloomFilter<N, K>`` globals;
* network kernels (``_net_ _out_`` / ``_net_ _in_``) with optional
  ``_at_`` restriction and ``_ext_`` parameters;
* ``struct window { ... };`` window-struct extension;
* ordinary functions (e.g. ``main``) and helper functions;
* statements: blocks, declarations (incl. ``auto *p = Map[k]`` and
  ``if (auto *p = ...)``), if/else, for, while, do-while, return,
  break, continue;
* expressions with full C precedence, including ``?:``, compound
  assignment, pre/post increment, ``&``/``*``, and calls (including
  namespaced ``ncl::...`` runtime calls).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple, Union

from repro.errors import NclSyntaxError, NclTypeError, SourceLocation
from repro.ncl import ast
from repro.ncl.lexer import tokenize
from repro.ncl.tokens import Token, TokenKind
from repro.ncl.types import (
    BUILTIN_TYPE_NAMES,
    ArrayType,
    BloomFilterType,
    MapType,
    PointerType,
    Type,
    VOID,
)

#: Braced-initializer tree: either an expression or a nested list of these.
InitTree = Union[ast.Expr, List["InitTree"]]

_TYPE_KEYWORDS = frozenset(BUILTIN_TYPE_NAMES) | {"signed", "short"}

# Binary operator precedence (C), higher binds tighter.
_BINOP_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class Parser:
    def __init__(self, tokens: List[Token]):
        self._toks = tokens
        self._idx = 0

    # -- token cursor ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._idx + offset, len(self._toks) - 1)
        return self._toks[idx]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.EOF:
            self._idx += 1
        return tok

    def _at_eof(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise NclSyntaxError(f"expected {text!r}, found {tok.text!r}", tok.loc)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise NclSyntaxError(f"expected identifier, found {tok.text!r}", tok.loc)
        return self._next()

    def _accept_punct(self, text: str) -> Optional[Token]:
        if self._peek().is_punct(text):
            return self._next()
        return None

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._next()
        return None

    # -- type parsing -----------------------------------------------------

    def _at_type_start(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.is_keyword(*_TYPE_KEYWORDS) or tok.is_keyword("const", "auto", "static"):
            return True
        # ncl::Map / ncl::BloomFilter
        return (
            tok.kind is TokenKind.IDENT
            and tok.text == "ncl"
            and self._peek(offset + 1).is_punct("::")
            and self._peek(offset + 2).kind is TokenKind.IDENT
            and self._peek(offset + 2).text in ("Map", "BloomFilter")
        )

    def _parse_base_type(self) -> Type:
        """Parse a type specifier (no declarator): keywords or ncl:: templates."""
        tok = self._peek()
        while self._accept_keyword("const", "static"):
            tok = self._peek()
        if tok.kind is TokenKind.IDENT and tok.text == "ncl":
            return self._parse_ncl_template()
        if not tok.is_keyword(*_TYPE_KEYWORDS):
            raise NclSyntaxError(f"expected a type, found {tok.text!r}", tok.loc)
        # Collect multi-keyword C types: "unsigned int", "long long", ...
        words = [self._next().text]
        while self._peek().is_keyword("int", "long", "short", "char", "unsigned", "signed"):
            words.append(self._next().text)
        return _combine_type_words(words, tok.loc)

    def _parse_ncl_template(self) -> Type:
        loc = self._peek().loc
        self._next()  # 'ncl'
        self._expect_punct("::")
        name = self._expect_ident().text
        self._expect_punct("<")
        if name == "Map":
            key = self._parse_base_type()
            self._expect_punct(",")
            value = self._parse_base_type()
            self._expect_punct(",")
            cap = self._parse_const_int("Map capacity", template_arg=True)
            self._expect_template_close(loc)
            return _construct_type(lambda: MapType(key, value, cap), loc)
        if name == "BloomFilter":
            nbits = self._parse_const_int("BloomFilter size", template_arg=True)
            self._expect_punct(",")
            nhashes = self._parse_const_int("BloomFilter hash count", template_arg=True)
            self._expect_template_close(loc)
            return _construct_type(lambda: BloomFilterType(nbits, nhashes), loc)
        raise NclSyntaxError(f"unknown ncl:: type {name!r}", loc)

    def _expect_template_close(self, loc: SourceLocation) -> None:
        tok = self._peek()
        if tok.is_punct(">"):
            self._next()
        elif tok.is_punct(">>"):
            # Split '>>' closing two templates is not needed at depth 1;
            # reaching here means a malformed template.
            raise NclSyntaxError("unexpected '>>' closing template", tok.loc)
        else:
            raise NclSyntaxError("expected '>' to close template", loc)

    def _parse_const_int(self, what: str, template_arg: bool = False) -> int:
        # Inside template argument lists, '<'/'>' close the template rather
        # than act as relational operators, so parsing stops at the
        # additive/shift level (C++ has the same restriction).
        expr = self._parse_binary(8) if template_arg else self.parse_conditional()
        value = const_eval(expr)
        if value is None:
            raise NclSyntaxError(f"{what} must be a constant expression", expr.loc)
        return value

    def _parse_declarator(self, base: Type) -> Tuple[str, Type, SourceLocation]:
        """Parse ``*... name [N][M]...`` and fold into the full type."""
        ty = base
        while self._accept_punct("*"):
            ty = PointerType(ty)
        name_tok = self._expect_ident()
        dims: List[int] = []
        while self._accept_punct("["):
            dims.append(self._parse_const_int("array dimension"))
            self._expect_punct("]")
        for dim in reversed(dims):
            ty = _construct_type(lambda: ArrayType(ty, dim), name_tok.loc)
        return name_tok.text, ty, name_tok.loc

    # -- initializers ------------------------------------------------------

    def _parse_initializer(self) -> InitTree:
        if self._peek().is_punct("{"):
            self._next()
            items: List[InitTree] = []
            if not self._peek().is_punct("}"):
                items.append(self._parse_initializer())
                while self._accept_punct(","):
                    if self._peek().is_punct("}"):
                        break  # trailing comma
                    items.append(self._parse_initializer())
            self._expect_punct("}")
            return items
        return self.parse_assignment()

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        loc = self._peek().loc
        decls: List[ast.Node] = []
        while not self._at_eof():
            decls.append(self._parse_top_level())
        return ast.Program(loc, decls)

    def _parse_top_level(self) -> ast.Node:
        tok = self._peek()
        if tok.is_keyword("struct"):
            return self._parse_window_ext()
        # Gather NCL declaration specifiers.
        is_net = is_ctrl = False
        kernel_kind: Optional[ast.KernelKind] = None
        at_label: Optional[str] = None
        start_loc = tok.loc
        while True:
            tok = self._peek()
            if tok.is_keyword("_net_"):
                is_net = True
                self._next()
            elif tok.is_keyword("_ctrl_"):
                is_ctrl = True
                self._next()
            elif tok.is_keyword("_out_"):
                kernel_kind = ast.KernelKind.OUT
                self._next()
            elif tok.is_keyword("_in_"):
                kernel_kind = ast.KernelKind.IN
                self._next()
            elif tok.is_keyword("_at_"):
                at_label = self._parse_at_label()
            else:
                break

        if kernel_kind is not None and not is_net:
            raise NclSyntaxError("_out_/_in_ require the _net_ specifier", start_loc)

        # Return type may be omitted for kernels (Fig 5's `_net_ _out_ query(...)`).
        if kernel_kind is not None and self._is_untyped_function_head():
            ret: Type = VOID
        else:
            ret = self._parse_base_type()

        if isinstance(ret, (MapType, BloomFilterType)):
            # ncl:: container global, e.g. `_net_ _at_("s1") ncl::Map<...> Idx;`
            name_tok = self._expect_ident()
            self._expect_punct(";")
            if not is_net:
                raise NclSyntaxError("ncl:: containers must be _net_", name_tok.loc)
            return ast.GlobalVar(
                start_loc, name_tok.text, ret, None, is_net=True,
                is_ctrl=True, at_label=at_label,
            )

        name, full_ty, name_loc = self._parse_declarator(ret)

        if self._peek().is_punct("("):
            return self._parse_function_rest(
                start_loc, name, full_ty, kernel_kind, at_label, is_net, is_ctrl
            )

        if kernel_kind is not None:
            raise NclSyntaxError("kernel declaration must be a function", name_loc)

        init: Optional[InitTree] = None
        if self._accept_punct("="):
            init = self._parse_initializer()
        self._expect_punct(";")
        return ast.GlobalVar(
            start_loc, name, full_ty, init,
            is_net=is_net, is_ctrl=is_ctrl, at_label=at_label,
        )

    def _is_untyped_function_head(self) -> bool:
        """True for `name(` with no leading type keyword (implicit void)."""
        return (
            self._peek().kind is TokenKind.IDENT
            and self._peek().text != "ncl"
            and self._peek(1).is_punct("(")
        )

    def _parse_at_label(self) -> str:
        self._next()  # _at_
        self._expect_punct("(")
        tok = self._peek()
        if tok.kind is not TokenKind.STRING_LIT:
            raise NclSyntaxError("_at_ expects a string label", tok.loc)
        self._next()
        self._expect_punct(")")
        return str(tok.value)

    def _parse_window_ext(self) -> ast.WindowExt:
        loc = self._next().loc  # 'struct'
        name_tok = self._expect_ident()
        if name_tok.text != "window":
            raise NclSyntaxError(
                "only the builtin 'window' struct may be extended "
                f"(got struct {name_tok.text!r})",
                name_tok.loc,
            )
        self._expect_punct("{")
        fields: List[Tuple[str, Type]] = []
        while not self._peek().is_punct("}"):
            base = self._parse_base_type()
            fname, fty, floc = self._parse_declarator(base)
            if not fty.is_scalar:
                raise NclSyntaxError("window extension fields must be scalar", floc)
            fields.append((fname, fty))
            self._expect_punct(";")
        self._expect_punct("}")
        self._expect_punct(";")
        return ast.WindowExt(loc, fields)

    def _parse_function_rest(
        self,
        loc: SourceLocation,
        name: str,
        ret: Type,
        kernel_kind: Optional[ast.KernelKind],
        at_label: Optional[str],
        is_net: bool,
        is_ctrl: bool,
    ) -> ast.FuncDecl:
        if is_ctrl:
            raise NclSyntaxError("_ctrl_ is not valid on functions", loc)
        if is_net and kernel_kind is None:
            raise NclSyntaxError("_net_ function must be _out_ or _in_", loc)
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._peek().is_punct(")"):
            params.append(self._parse_param())
            while self._accept_punct(","):
                params.append(self._parse_param())
        self._expect_punct(")")
        body: Optional[ast.Block] = None
        if self._peek().is_punct("{"):
            body = self._parse_block()
        else:
            self._expect_punct(";")
        return ast.FuncDecl(loc, name, ret, params, body, kernel_kind, at_label)

    def _parse_param(self) -> ast.Param:
        ext = bool(self._accept_keyword("_ext_"))
        base = self._parse_base_type()
        name, ty, loc = self._parse_declarator(base)
        return ast.Param(loc, name, ty, ext)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        loc = self._expect_punct("{").loc
        stmts: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._at_eof():
                raise NclSyntaxError("unterminated block", loc)
            stmts.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(loc, stmts)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_punct(";"):
            return ast.Block(self._next().loc, [])
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("return"):
            self._next()
            value = None if self._peek().is_punct(";") else self.parse_expression()
            self._expect_punct(";")
            return ast.Return(tok.loc, value)
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(tok.loc)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(tok.loc)
        if self._at_type_start():
            decl = self._parse_decl_stmt()
            self._expect_punct(";")
            return decl
        expr = self.parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr.loc, expr)

    def _parse_decl_stmt(self) -> ast.DeclStmt:
        tok = self._peek()
        if tok.is_keyword("auto"):
            self._next()
            nptr = 0
            while self._accept_punct("*"):
                nptr += 1
            name_tok = self._expect_ident()
            self._expect_punct("=")
            init = self.parse_assignment()
            decl = ast.DeclStmt(tok.loc, name_tok.text, None, init, is_auto=True)
            decl.auto_ptr_depth = nptr  # type: ignore[attr-defined]
            return decl
        base = self._parse_base_type()
        name, ty, loc = self._parse_declarator(base)
        init: Optional[ast.Expr] = None
        if self._accept_punct("="):
            raw = self._parse_initializer()
            if isinstance(raw, list):
                decl = ast.DeclStmt(loc, name, ty, None)
                decl.braced_init = raw  # type: ignore[attr-defined]
                return decl
            init = raw
        return ast.DeclStmt(loc, name, ty, init)

    def _parse_if(self) -> ast.If:
        loc = self._next().loc
        self._expect_punct("(")
        cond_decl: Optional[ast.DeclStmt] = None
        cond: Optional[ast.Expr] = None
        if self._peek().is_keyword("auto"):
            cond_decl = self._parse_decl_stmt()
        else:
            cond = self.parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        orelse: Optional[ast.Stmt] = None
        if self._accept_keyword("else"):
            orelse = self._parse_statement()
        return ast.If(loc, cond, then, orelse, cond_decl)

    def _parse_for(self) -> ast.For:
        loc = self._next().loc
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_punct(";"):
            if self._at_type_start():
                init = self._parse_decl_stmt()
            else:
                expr = self.parse_expression()
                init = ast.ExprStmt(expr.loc, expr)
        self._expect_punct(";")
        cond = None if self._peek().is_punct(";") else self.parse_expression()
        self._expect_punct(";")
        step = None if self._peek().is_punct(")") else self.parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(loc, init, cond, step, body)

    def _parse_while(self) -> ast.While:
        loc = self._next().loc
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(loc, cond, body)

    def _parse_do_while(self) -> ast.Stmt:
        # Desugar do-while into: body; while (cond) body;
        loc = self._next().loc
        body = self._parse_statement()
        if not self._accept_keyword("while"):
            raise NclSyntaxError("expected 'while' after do-body", self._peek().loc)
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Block(loc, [body, ast.While(loc, cond, body)])

    # -- expressions -----------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self._peek().is_punct(","):
            # Comma operator: evaluate both, yield the right operand.
            loc = self._next().loc
            rhs = self.parse_assignment()
            expr = ast.Binary(loc, ",", expr, rhs)
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        tok = self._peek()
        if tok.is_punct(*_ASSIGN_OPS):
            self._next()
            rhs = self.parse_assignment()
            return ast.Assign(tok.loc, tok.text, lhs, rhs)
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._peek().is_punct("?"):
            loc = self._next().loc
            then = self.parse_assignment()
            self._expect_punct(":")
            other = self.parse_conditional()
            return ast.Ternary(loc, cond, then, other)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            prec = _BINOP_PREC.get(tok.text) if tok.kind is TokenKind.PUNCT else None
            if prec is None or prec < min_prec:
                return lhs
            self._next()
            rhs = self._parse_binary(prec + 1)
            lhs = ast.Binary(tok.loc, tok.text, lhs, rhs)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_punct("++", "--", "-", "+", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(tok.loc, tok.text, operand)
        if tok.is_punct("(") and self._at_type_start(1):
            # Cast expression: (type) unary -- only scalar casts supported.
            self._next()
            target = self._parse_base_type()
            while self._accept_punct("*"):
                target = PointerType(target)
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.Cast(tok.loc, target, operand)
        if tok.is_keyword("sizeof"):
            self._next()
            self._expect_punct("(")
            base = self._parse_base_type()
            while self._accept_punct("*"):
                base = PointerType(base)
            self._expect_punct(")")
            from repro.ncl.types import sizeof as _sizeof

            return ast.IntLit(tok.loc, _sizeof(base))
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._next()
                index = self.parse_expression()
                self._expect_punct("]")
                expr = ast.Index(tok.loc, expr, index)
            elif tok.is_punct("."):
                self._next()
                field = self._expect_ident().text
                expr = ast.Member(tok.loc, expr, field)
            elif tok.is_punct("->"):
                self._next()
                field = self._expect_ident().text
                expr = ast.Member(tok.loc, ast.Unary(tok.loc, "*", expr), field)
            elif tok.is_punct("++", "--"):
                self._next()
                expr = ast.Unary(tok.loc, tok.text, expr, postfix=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT or tok.kind is TokenKind.CHAR_LIT:
            self._next()
            return ast.IntLit(tok.loc, int(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.STRING_LIT:
            self._next()
            return ast.StrLit(tok.loc, str(tok.value))
        if tok.is_keyword("true", "false"):
            self._next()
            return ast.BoolLit(tok.loc, tok.text == "true")
        if tok.is_punct("("):
            self._next()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if tok.kind is TokenKind.IDENT:
            return self._parse_ident_or_call()
        raise NclSyntaxError(f"unexpected token {tok.text!r} in expression", tok.loc)

    def _parse_ident_or_call(self) -> ast.Expr:
        tok = self._next()
        name = tok.text
        while self._peek().is_punct("::"):
            self._next()
            name += "::" + self._expect_ident().text
        if self._peek().is_punct("("):
            self._next()
            args: List[ast.Expr] = []
            if not self._peek().is_punct(")"):
                args.append(self._parse_call_arg())
                while self._accept_punct(","):
                    args.append(self._parse_call_arg())
            self._expect_punct(")")
            return ast.Call(tok.loc, name, args)
        return ast.Ident(tok.loc, name)

    def _parse_call_arg(self) -> ast.Expr:
        # Runtime calls like ncl::out(kernel, {a, b}, wnd, mask) accept a
        # braced list of arrays; represent it as a Call named "__list__".
        if self._peek().is_punct("{"):
            loc = self._next().loc
            items: List[ast.Expr] = []
            if not self._peek().is_punct("}"):
                items.append(self.parse_assignment())
                while self._accept_punct(","):
                    items.append(self.parse_assignment())
            self._expect_punct("}")
            call = ast.Call(loc, "__list__", items)
            call.is_intrinsic = True
            return call
        return self.parse_assignment()


def _construct_type(build, loc: SourceLocation) -> Type:
    """Run a type constructor, attaching *loc* to any validation error.

    The :mod:`repro.ncl.types` constructors validate their arguments
    (positive array lengths, scalar Map keys, ...) but have no notion of
    source positions; re-raising here keeps those errors span-carrying.
    """
    try:
        return build()
    except NclTypeError as exc:
        if exc.loc is not None:
            raise
        raise type(exc)(exc.message, loc, code=exc.code, length=exc.length) from None


def _combine_type_words(words: List[str], loc: SourceLocation) -> Type:
    """Fold multi-keyword C type specifiers into a concrete type."""
    from repro.ncl.types import IntType

    unique = tuple(sorted(words))
    if len(words) == 1 and words[0] in BUILTIN_TYPE_NAMES:
        return BUILTIN_TYPE_NAMES[words[0]]
    # Bare "short"/"signed" fall through to the multi-word folding below.
    signed = "unsigned" not in words
    core = [w for w in words if w not in ("unsigned", "signed")]
    if not core or core == ["int"]:
        return IntType(32, signed)
    if core in (["long"], ["long", "long"], ["long", "int"], ["int", "long"]):
        return IntType(64, signed)
    if core in (["short"], ["short", "int"], ["int", "short"]):
        return IntType(16, signed)
    if core == ["char"]:
        return IntType(8, signed)
    raise NclSyntaxError(f"unsupported type specifier {' '.join(unique)!r}", loc)


def const_eval(expr: ast.Expr) -> Optional[int]:
    """Evaluate an expression tree of literals at parse time (array dims,
    template arguments). Returns None if not constant."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.Unary) and not expr.postfix:
        value = const_eval(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(not value)
        return None
    if isinstance(expr, ast.Binary):
        lhs = const_eval(expr.lhs)
        rhs = const_eval(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return _fold_const_binop(expr.op, lhs, rhs)
        except ZeroDivisionError:
            return None
    if isinstance(expr, ast.Ternary):
        cond = const_eval(expr.cond)
        if cond is None:
            return None
        return const_eval(expr.then if cond else expr.other)
    return None


def _fold_const_binop(op: str, lhs: int, rhs: int) -> Optional[int]:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        q = abs(lhs) // abs(rhs)
        return -q if (lhs < 0) != (rhs < 0) else q
    if op == "%":
        return lhs - rhs * _fold_const_binop("/", lhs, rhs)  # type: ignore[operator]
    if op == "<<":
        return lhs << rhs
    if op == ">>":
        return lhs >> rhs
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op == "&&":
        return int(bool(lhs) and bool(rhs))
    if op == "||":
        return int(bool(lhs) or bool(rhs))
    return None


def parse(
    source: str,
    filename: str = "<ncl>",
    defines: Optional[Mapping[str, int]] = None,
) -> ast.Program:
    """Parse NCL source text into an AST."""
    return Parser(tokenize(source, filename, defines)).parse_program()
