"""Token definitions for the NCL lexer."""

from __future__ import annotations

from enum import Enum, auto
from typing import Union

from repro.errors import SourceLocation


class TokenKind(Enum):
    IDENT = auto()
    KEYWORD = auto()
    INT_LIT = auto()
    CHAR_LIT = auto()
    STRING_LIT = auto()
    PUNCT = auto()
    EOF = auto()


#: C keywords recognized by the parser (a subset; NCL specifiers separate).
KEYWORDS = frozenset(
    {
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "true",
        "false",
        "auto",
        "const",
        "struct",
        "sizeof",
        "static",
        # type keywords
        "void",
        "bool",
        "char",
        "int",
        "unsigned",
        "signed",
        "long",
        "short",
        "int8_t",
        "int16_t",
        "int32_t",
        "int64_t",
        "uint8_t",
        "uint16_t",
        "uint32_t",
        "uint64_t",
        "size_t",
        # NCL declaration specifiers (paper S4.1)
        "_net_",
        "_out_",
        "_in_",
        "_ctrl_",
        "_ext_",
        "_at_",
    }
)

#: Multi-character punctuators, longest first so the lexer can greedy-match.
PUNCTUATORS = [
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "::",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]


class Token:
    """A single lexical token with its source location."""

    __slots__ = ("kind", "text", "value", "loc")

    def __init__(
        self,
        kind: TokenKind,
        text: str,
        loc: SourceLocation,
        value: Union[int, str, None] = None,
    ):
        self.kind = kind
        self.text = text
        self.loc = loc
        self.value = value

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *names: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in names

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r} @ {self.loc})"
