"""The NCL type system.

NCL extends a C subset, so its types are C types: fixed-width integers,
``bool``, ``char``, ``void``, arrays, and pointers (parameters only).
The NCL standard library adds switch-side container types -- ``Map`` and
``BloomFilter`` -- which the compiler lowers to match-action tables
(see the paper, S3.2 and Fig 5).
"""

from __future__ import annotations


from repro.errors import NclTypeError


class Type:
    """Base class for NCL types. Types are immutable and compared by value."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, BoolType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_scalar(self) -> bool:
        """Scalars fit in a single PHV/metadata field."""
        return isinstance(self, (IntType, BoolType))

    @property
    def is_error(self) -> bool:
        return isinstance(self, ErrorType)


class VoidType(Type):
    def __repr__(self) -> str:
        return "void"


class ErrorType(Type):
    """Poison type synthesized during error recovery.

    When semantic analysis runs with a :class:`repro.diag.DiagnosticSink`
    it reports an error and keeps going; the erroneous expression gets
    this type, which is compatible with everything so one mistake does
    not cascade into dozens of follow-on diagnostics.
    """

    @property
    def is_scalar(self) -> bool:
        return True  # behaves like a scalar so conditions/arith proceed

    def __repr__(self) -> str:
        return "<error>"


class BoolType(Type):
    """C++ bool; stored as one byte, one bit semantically."""

    bits = 8

    def __repr__(self) -> str:
        return "bool"


class IntType(Type):
    """Fixed-width integer, e.g. ``uint32_t`` (bits=32, signed=False)."""

    def __init__(self, bits: int, signed: bool):
        if bits not in (8, 16, 32, 64):
            raise NclTypeError(f"unsupported integer width {bits}")
        self.bits = bits
        self.signed = signed

    def _key(self) -> tuple:
        return (self.bits, self.signed)

    def __repr__(self) -> str:
        return f"{'int' if self.signed else 'uint'}{self.bits}_t"


class PointerType(Type):
    """Pointer to an element type. Only valid in kernel parameter lists and
    as the result of a Map lookup (`auto *idx = Idx[key]`)."""

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def _key(self) -> tuple:
        return (self.pointee,)

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


class ArrayType(Type):
    """Fixed-length array. 2-D arrays (e.g. ``char Cache[256][128]``) nest."""

    def __init__(self, element: Type, length: int):
        if length <= 0:
            raise NclTypeError(f"array length must be positive, got {length}")
        self.element = element
        self.length = length

    def _key(self) -> tuple:
        return (self.element, self.length)

    @property
    def total_elements(self) -> int:
        if isinstance(self.element, ArrayType):
            return self.length * self.element.total_elements
        return self.length

    @property
    def scalar_element(self) -> Type:
        """The innermost (non-array) element type."""
        elem = self.element
        while isinstance(elem, ArrayType):
            elem = elem.element
        return elem

    def __repr__(self) -> str:
        return f"{self.element!r}[{self.length}]"


class MapType(Type):
    """``ncl::Map<K, V, N>`` -- control-plane managed exact-match table.

    Lookup (``Idx[key]``) yields a nullable pointer to V, matching Fig 5's
    ``auto *idx = Idx[key]`` idiom.  Implicitly ``_ctrl_``: switch code may
    only read, hosts insert/remove via the control plane.
    """

    def __init__(self, key: Type, value: Type, capacity: int):
        if not key.is_integer:
            raise NclTypeError(f"Map key must be an integer type, got {key!r}")
        if not (value.is_integer or value.is_bool):
            raise NclTypeError(f"Map value must be scalar, got {value!r}")
        if capacity <= 0:
            raise NclTypeError(f"Map capacity must be positive, got {capacity}")
        self.key = key
        self.value = value
        self.capacity = capacity

    def _key(self) -> tuple:
        return (self.key, self.value, self.capacity)

    def __repr__(self) -> str:
        return f"ncl::Map<{self.key!r}, {self.value!r}, {self.capacity}>"


class BloomFilterType(Type):
    """``ncl::BloomFilter<N, K>`` -- switch-side membership sketch."""

    def __init__(self, nbits: int, nhashes: int):
        if nbits <= 0 or nhashes <= 0:
            raise NclTypeError("BloomFilter parameters must be positive")
        self.nbits = nbits
        self.nhashes = nhashes

    def _key(self) -> tuple:
        return (self.nbits, self.nhashes)

    def __repr__(self) -> str:
        return f"ncl::BloomFilter<{self.nbits}, {self.nhashes}>"


# Canonical instances -------------------------------------------------------

VOID = VoidType()
POISON = ErrorType()
BOOL = BoolType()
CHAR = IntType(8, signed=True)
I8 = IntType(8, signed=True)
I16 = IntType(16, signed=True)
I32 = IntType(32, signed=True)
I64 = IntType(64, signed=True)
U8 = IntType(8, signed=False)
U16 = IntType(16, signed=False)
U32 = IntType(32, signed=False)
U64 = IntType(64, signed=False)

#: Spelling of every builtin scalar type keyword.
BUILTIN_TYPE_NAMES = {
    "void": VOID,
    "bool": BOOL,
    "char": CHAR,
    "int": I32,
    "unsigned": U32,
    "long": I64,
    "int8_t": I8,
    "int16_t": I16,
    "int32_t": I32,
    "int64_t": I64,
    "uint8_t": U8,
    "uint16_t": U16,
    "uint32_t": U32,
    "uint64_t": U64,
    "size_t": U64,
}


def scalar_bits(ty: Type) -> int:
    """Bit width of a scalar type (bool counts as 8, per its storage)."""
    if isinstance(ty, IntType):
        return ty.bits
    if isinstance(ty, BoolType):
        return BoolType.bits
    if isinstance(ty, ErrorType):
        return 32  # poison: any width works, recovery never codegens
    raise NclTypeError(f"{ty!r} is not a scalar type")


def is_signed(ty: Type) -> bool:
    if isinstance(ty, IntType):
        return ty.signed
    if isinstance(ty, BoolType):
        return False
    raise NclTypeError(f"{ty!r} is not a scalar type")


def common_type(a: Type, b: Type) -> Type:
    """C-style usual arithmetic conversions, restricted to our widths.

    The wider operand wins; on equal width, unsigned wins. bool promotes
    to ``int`` as in C.
    """
    if a.is_error or b.is_error:
        return POISON
    if a.is_bool and b.is_bool:
        return I32
    ta = I32 if a.is_bool else a
    tb = I32 if b.is_bool else b
    if not (isinstance(ta, IntType) and isinstance(tb, IntType)):
        raise NclTypeError(f"no common arithmetic type for {a!r} and {b!r}")
    # C integer promotion: anything narrower than int becomes (signed) int
    # first, THEN the usual arithmetic conversions apply.
    if ta.bits < 32:
        ta = I32
    if tb.bits < 32:
        tb = I32
    bits = max(ta.bits, tb.bits)
    if ta.bits == tb.bits:
        signed = ta.signed and tb.signed
    else:
        signed = (ta if ta.bits > tb.bits else tb).signed
    return IntType(bits, signed)


def assignable(dst: Type, src: Type) -> bool:
    """Whether a value of type *src* may be assigned to an lvalue of *dst*.

    NCL is stricter than C in one place only: pointer conversions other
    than exact match are rejected (they cannot be represented in a PHV).
    Integer narrowing/widening is allowed, as in C.
    """
    if dst.is_error or src.is_error:
        return True  # poison assigns to/from anything (error recovery)
    if dst.is_array or src.is_array:
        return False  # arrays are not assignable in C
    if dst == src:
        return True
    if dst.is_scalar and src.is_scalar:
        return True
    if dst.is_pointer and src.is_pointer:
        return dst == src
    return False


def sizeof(ty: Type) -> int:
    """Storage size in bytes (used for memcpy bounds and NCP chunk layout)."""
    if isinstance(ty, (IntType, BoolType)):
        return scalar_bits(ty) // 8
    if isinstance(ty, ArrayType):
        return ty.length * sizeof(ty.element)
    if isinstance(ty, PointerType):
        return 8
    raise NclTypeError(f"sizeof not defined for {ty!r}")
