"""Abstract syntax tree for NCL programs.

Nodes are plain data holders produced by the parser; semantic analysis
(:mod:`repro.ncl.sema`) annotates expressions with ``ty`` and resolves
identifiers. Every node records the :class:`SourceLocation` of its first
token for diagnostics.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import List, Optional, Sequence, Tuple

from repro.errors import SourceLocation
from repro.ncl.types import Type


class Node:
    """Common AST node base; subclasses define __slots__-style attributes."""

    def __init__(self, loc: SourceLocation):
        self.loc = loc

    def children(self) -> Sequence["Node"]:
        return ()

    def walk(self):
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions. ``ty`` is filled in by sema."""

    def __init__(self, loc: SourceLocation):
        super().__init__(loc)
        self.ty: Optional[Type] = None


class IntLit(Expr):
    def __init__(self, loc: SourceLocation, value: int):
        super().__init__(loc)
        self.value = value

    def __repr__(self) -> str:
        return f"IntLit({self.value})"


class BoolLit(Expr):
    def __init__(self, loc: SourceLocation, value: bool):
        super().__init__(loc)
        self.value = value

    def __repr__(self) -> str:
        return f"BoolLit({self.value})"


class StrLit(Expr):
    """String literal -- only valid as a location label or kernel argument."""

    def __init__(self, loc: SourceLocation, value: str):
        super().__init__(loc)
        self.value = value

    def __repr__(self) -> str:
        return f"StrLit({self.value!r})"


class Ident(Expr):
    """Identifier reference; sema fills ``decl`` with the resolved symbol."""

    def __init__(self, loc: SourceLocation, name: str):
        super().__init__(loc)
        self.name = name
        self.decl: object = None

    def __repr__(self) -> str:
        return f"Ident({self.name})"


class Index(Expr):
    """``base[index]`` -- array subscript, pointer subscript, or Map lookup."""

    def __init__(self, loc: SourceLocation, base: Expr, index: Expr):
        super().__init__(loc)
        self.base = base
        self.index = index

    def children(self) -> Sequence[Node]:
        return (self.base, self.index)


class Member(Expr):
    """``base.field`` -- used for the builtin window/location structs."""

    def __init__(self, loc: SourceLocation, base: Expr, field: str):
        super().__init__(loc)
        self.base = base
        self.field = field

    def children(self) -> Sequence[Node]:
        return (self.base,)


class Unary(Expr):
    """Prefix unary op: one of ``- ! ~ * & ++ --`` (and postfix ++/--)."""

    def __init__(self, loc: SourceLocation, op: str, operand: Expr, postfix: bool = False):
        super().__init__(loc)
        self.op = op
        self.operand = operand
        self.postfix = postfix

    def children(self) -> Sequence[Node]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"Unary({'post' if self.postfix else ''}{self.op})"


class Binary(Expr):
    def __init__(self, loc: SourceLocation, op: str, lhs: Expr, rhs: Expr):
        super().__init__(loc)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def children(self) -> Sequence[Node]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"Binary({self.op})"


class Assign(Expr):
    """Assignment or compound assignment (``op`` is '=', '+=', ...)."""

    def __init__(self, loc: SourceLocation, op: str, target: Expr, value: Expr):
        super().__init__(loc)
        self.op = op
        self.target = target
        self.value = value

    def children(self) -> Sequence[Node]:
        return (self.target, self.value)


class Ternary(Expr):
    def __init__(self, loc: SourceLocation, cond: Expr, then: Expr, other: Expr):
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.other = other

    def children(self) -> Sequence[Node]:
        return (self.cond, self.then, self.other)


class Call(Expr):
    """Function call. Builtin intrinsics (``_drop``, ``memcpy``, ...) and
    user helper functions share this node; sema classifies them."""

    def __init__(self, loc: SourceLocation, name: str, args: List[Expr]):
        super().__init__(loc)
        self.name = name
        self.args = args
        self.is_intrinsic = False

    def children(self) -> Sequence[Node]:
        return tuple(self.args)

    def __repr__(self) -> str:
        return f"Call({self.name})"


class Cast(Expr):
    def __init__(self, loc: SourceLocation, target: Type, operand: Expr):
        super().__init__(loc)
        self.target = target
        self.operand = operand

    def children(self) -> Sequence[Node]:
        return (self.operand,)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    pass


class Block(Stmt):
    def __init__(self, loc: SourceLocation, stmts: List[Stmt]):
        super().__init__(loc)
        self.stmts = stmts

    def children(self) -> Sequence[Node]:
        return tuple(self.stmts)


class DeclStmt(Stmt):
    """Local variable declaration. ``is_auto`` marks ``auto *x = Map[k]``."""

    def __init__(
        self,
        loc: SourceLocation,
        name: str,
        ty: Optional[Type],
        init: Optional[Expr],
        is_auto: bool = False,
    ):
        super().__init__(loc)
        self.name = name
        self.ty = ty
        self.init = init
        self.is_auto = is_auto

    def children(self) -> Sequence[Node]:
        return (self.init,) if self.init is not None else ()


class ExprStmt(Stmt):
    def __init__(self, loc: SourceLocation, expr: Expr):
        super().__init__(loc)
        self.expr = expr

    def children(self) -> Sequence[Node]:
        return (self.expr,)


class If(Stmt):
    """``if`` statement. ``cond_decl`` carries a C++17-style condition
    declaration (``if (auto *idx = Idx[key]) ...``, Fig 5)."""

    def __init__(
        self,
        loc: SourceLocation,
        cond: Optional[Expr],
        then: Stmt,
        orelse: Optional[Stmt],
        cond_decl: Optional[DeclStmt] = None,
    ):
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.orelse = orelse
        self.cond_decl = cond_decl

    def children(self) -> Sequence[Node]:
        out: List[Node] = []
        if self.cond_decl is not None:
            out.append(self.cond_decl)
        if self.cond is not None:
            out.append(self.cond)
        out.append(self.then)
        if self.orelse is not None:
            out.append(self.orelse)
        return tuple(out)


class While(Stmt):
    def __init__(self, loc: SourceLocation, cond: Expr, body: Stmt):
        super().__init__(loc)
        self.cond = cond
        self.body = body

    def children(self) -> Sequence[Node]:
        return (self.cond, self.body)


class For(Stmt):
    def __init__(
        self,
        loc: SourceLocation,
        init: Optional[Stmt],
        cond: Optional[Expr],
        step: Optional[Expr],
        body: Stmt,
    ):
        super().__init__(loc)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body

    def children(self) -> Sequence[Node]:
        out: List[Node] = []
        for part in (self.init, self.cond, self.step, self.body):
            if part is not None:
                out.append(part)
        return tuple(out)


class Return(Stmt):
    def __init__(self, loc: SourceLocation, value: Optional[Expr]):
        super().__init__(loc)
        self.value = value

    def children(self) -> Sequence[Node]:
        return (self.value,) if self.value is not None else ()


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


class KernelKind(Enum):
    """The two kinds of network kernels (paper S4.1)."""

    OUT = auto()  # _net_ _out_ : runs on switches along the path
    IN = auto()  # _net_ _in_  : runs on the receiving host


class Param(Node):
    """A kernel/function parameter. ``ext`` marks ``_ext_`` host pointers
    on incoming kernels (Fig 4 line 15)."""

    def __init__(self, loc: SourceLocation, name: str, ty: Type, ext: bool = False):
        super().__init__(loc)
        self.name = name
        self.ty = ty
        self.ext = ext

    def __repr__(self) -> str:
        return f"Param({'_ext_ ' if self.ext else ''}{self.name}: {self.ty!r})"


class GlobalVar(Node):
    """File-scope variable.

    - ``is_net`` with no ``is_ctrl``: switch memory (register arrays).
    - ``is_net`` + ``is_ctrl``: control variable, host-written, switch-read.
    - neither: ordinary host global.
    ``at_label`` pins switch memory to one AND location; ``None`` means the
    variable exists on every switch (location-less, SPMD).
    """

    def __init__(
        self,
        loc: SourceLocation,
        name: str,
        ty: Type,
        init: Optional[object],
        is_net: bool = False,
        is_ctrl: bool = False,
        at_label: Optional[str] = None,
    ):
        super().__init__(loc)
        self.name = name
        self.ty = ty
        self.init = init
        self.is_net = is_net
        self.is_ctrl = is_ctrl
        self.at_label = at_label

    def __repr__(self) -> str:
        spec = "".join(
            part
            for part in (
                "_net_ " if self.is_net else "",
                "_ctrl_ " if self.is_ctrl else "",
                f'_at_("{self.at_label}") ' if self.at_label else "",
            )
        )
        return f"GlobalVar({spec}{self.name}: {self.ty!r})"


class WindowExt(Node):
    """Programmer extension of the builtin window struct (paper S4.2).

    Declared as ``struct window { <scalar fields> };`` -- the fields are
    appended to the builtin ones and travel inside the NCP header.
    """

    def __init__(self, loc: SourceLocation, fields: List[Tuple[str, Type]]):
        super().__init__(loc)
        self.fields = fields


class FuncDecl(Node):
    """A function definition: plain host function, helper, or kernel."""

    def __init__(
        self,
        loc: SourceLocation,
        name: str,
        ret: Type,
        params: List[Param],
        body: Optional[Block],
        kernel_kind: Optional[KernelKind] = None,
        at_label: Optional[str] = None,
    ):
        super().__init__(loc)
        self.name = name
        self.ret = ret
        self.params = params
        self.body = body
        self.kernel_kind = kernel_kind
        self.at_label = at_label

    @property
    def is_kernel(self) -> bool:
        return self.kernel_kind is not None

    def children(self) -> Sequence[Node]:
        return (self.body,) if self.body is not None else ()

    def __repr__(self) -> str:
        kind = self.kernel_kind.name if self.kernel_kind else "func"
        return f"FuncDecl({kind} {self.name})"


class Program(Node):
    """One parsed NCL translation unit."""

    def __init__(self, loc: SourceLocation, decls: List[Node]):
        super().__init__(loc)
        self.decls = decls

    def children(self) -> Sequence[Node]:
        return tuple(self.decls)

    @property
    def functions(self) -> List[FuncDecl]:
        return [d for d in self.decls if isinstance(d, FuncDecl)]

    @property
    def globals(self) -> List[GlobalVar]:
        return [d for d in self.decls if isinstance(d, GlobalVar)]

    @property
    def window_ext(self) -> Optional[WindowExt]:
        for d in self.decls:
            if isinstance(d, WindowExt):
                return d
        return None
