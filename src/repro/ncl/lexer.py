"""Hand-written lexer for the NCL C subset.

Supports decimal/hex/octal/binary integer literals with ``u``/``l``
suffixes, character and string literals with the common escapes, ``//``
and ``/* */`` comments, and ``#``-lines (preprocessor directives are
recognized and skipped -- NCL programs in this reproduction use constants
via the ``defines`` compiler option instead of a full preprocessor).
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional

from repro.errors import NclSyntaxError, SourceLocation
from repro.ncl.tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


class Lexer:
    """Tokenizes one NCL translation unit."""

    def __init__(self, source: str, filename: str = "<ncl>"):
        self._src = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    # -- low-level cursor ---------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self._filename, self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._src[idx] if idx < len(self._src) else ""

    def _advance(self, count: int = 1) -> str:
        text = self._src[self._pos : self._pos + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return text

    # -- skipping -----------------------------------------------------------

    def _skip_trivia(self) -> None:
        while self._pos < len(self._src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._src):
                        raise NclSyntaxError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "#" and self._col == 1:
                # Preprocessor line: consume (with backslash continuations).
                while self._pos < len(self._src):
                    if self._peek() == "\\" and self._peek(1) == "\n":
                        self._advance(2)
                    elif self._peek() == "\n":
                        break
                    else:
                        self._advance()
            else:
                return

    # -- literal scanners ---------------------------------------------------

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self._pos
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance(2)
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
        elif self._peek() == "0" and self._peek(1) and self._peek(1) in "bB":
            self._advance(2)
            while self._peek() and self._peek() in "01_":
                self._advance()
        else:
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
        # integer suffixes
        while self._peek() and self._peek() in "uUlL":
            self._advance()
        text = self._src[start : self._pos]
        body = text.rstrip("uUlL").replace("_", "")
        try:
            if body.lower().startswith("0x"):
                value = int(body, 16)
            elif body.lower().startswith("0b"):
                value = int(body, 2)
            elif body.startswith("0") and len(body) > 1:
                value = int(body, 8)
            else:
                value = int(body, 10)
        except ValueError:
            raise NclSyntaxError(f"malformed integer literal {text!r}", loc)
        return Token(TokenKind.INT_LIT, text, loc, value)

    def _lex_escaped_char(self, loc: SourceLocation) -> str:
        ch = self._advance()
        if ch != "\\":
            return ch
        esc = self._advance()
        if esc == "x":
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if not digits:
                raise NclSyntaxError("\\x escape with no hex digits", loc)
            return chr(int(digits, 16))
        if esc in _ESCAPES:
            return _ESCAPES[esc]
        raise NclSyntaxError(f"unknown escape sequence \\{esc}", loc)

    def _lex_char(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        if self._peek() == "'":
            raise NclSyntaxError("empty character literal", loc)
        value = self._lex_escaped_char(loc)
        if self._advance() != "'":
            raise NclSyntaxError("unterminated character literal", loc)
        return Token(TokenKind.CHAR_LIT, f"'{value}'", loc, ord(value))

    def _lex_string(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self._pos >= len(self._src) or self._peek() == "\n":
                raise NclSyntaxError("unterminated string literal", loc)
            if self._peek() == '"':
                self._advance()
                break
            chars.append(self._lex_escaped_char(loc))
        value = "".join(chars)
        return Token(TokenKind.STRING_LIT, f'"{value}"', loc, value)

    # -- main loop ----------------------------------------------------------

    def next_token(self) -> Token:
        self._skip_trivia()
        loc = self._loc()
        if self._pos >= len(self._src):
            return Token(TokenKind.EOF, "", loc)
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch == "'":
            return self._lex_char()
        if ch == '"':
            return self._lex_string()
        if ch.isalpha() or ch == "_":
            start = self._pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self._src[start : self._pos]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, loc)
        for punct in PUNCTUATORS:
            if self._src.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, loc)
        raise NclSyntaxError(f"unexpected character {ch!r}", loc)

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, ending with a single EOF token."""
        while True:
            tok = self.next_token()
            yield tok
            if tok.kind is TokenKind.EOF:
                return


def tokenize(
    source: str,
    filename: str = "<ncl>",
    defines: Optional[Mapping[str, int]] = None,
) -> List[Token]:
    """Tokenize NCL source, substituting integer *defines* for identifiers.

    ``defines`` stands in for ``#define`` object macros (e.g. ``DATA_LEN``
    in the paper's Fig 4); each occurrence of a defined name becomes an
    integer literal token.
    """
    out: List[Token] = []
    defines = dict(defines or {})
    for tok in Lexer(source, filename).tokens():
        if tok.kind is TokenKind.IDENT and tok.text in defines:
            value = defines[tok.text]
            out.append(Token(TokenKind.INT_LIT, str(value), tok.loc, value))
        else:
            out.append(tok)
    return out
