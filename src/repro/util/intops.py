"""Fixed-width integer semantics.

NCL follows C semantics on fixed-width machine integers, and the PISA data
plane operates on fixed-width PHV fields. Python integers are unbounded, so
every arithmetic result in the IR interpreter and the PISA simulator is
normalized through these helpers.
"""

from __future__ import annotations

from repro.errors import ReproError


def mask(bits: int) -> int:
    """All-ones mask of the given width."""
    if bits <= 0:
        raise ReproError(f"invalid bit width {bits}")
    return (1 << bits) - 1


def wrap_unsigned(value: int, bits: int) -> int:
    """Reduce *value* modulo 2**bits into [0, 2**bits)."""
    return value & mask(bits)


def wrap_signed(value: int, bits: int) -> int:
    """Reduce *value* into two's-complement range [-2**(bits-1), 2**(bits-1))."""
    value &= mask(bits)
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def wrap(value: int, bits: int, signed: bool) -> int:
    """Wrap to width, respecting signedness."""
    return wrap_signed(value, bits) if signed else wrap_unsigned(value, bits)


def to_unsigned(value: int, bits: int) -> int:
    """Reinterpret a possibly-negative value as its unsigned bit pattern."""
    return value & mask(bits)


def sign_extend(value: int, from_bits: int, to_bits: int) -> int:
    """Sign-extend the low *from_bits* of value to *to_bits* (unsigned repr)."""
    v = wrap_signed(value, from_bits)
    return to_unsigned(v, to_bits)


def shift_amount(amount: int, bits: int) -> int:
    """Clamp a shift amount the way hardware barrel shifters do (mod width)."""
    if amount < 0:
        raise ReproError(f"negative shift amount {amount}")
    return amount % bits if amount >= bits else amount


def checked_udiv(a: int, b: int) -> int:
    """Unsigned division; raises on divide-by-zero like a trap would."""
    if b == 0:
        raise ZeroDivisionError("division by zero in data-plane arithmetic")
    return a // b


def checked_sdiv(a: int, b: int) -> int:
    """Signed division with C truncation-toward-zero semantics."""
    if b == 0:
        raise ZeroDivisionError("division by zero in data-plane arithmetic")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def checked_srem(a: int, b: int) -> int:
    """Signed remainder matching C: sign of the dividend."""
    return a - b * checked_sdiv(a, b)


def bit_length_fits(value: int, bits: int, signed: bool) -> bool:
    """True if *value* is representable at the given width/signedness."""
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    return lo <= value <= hi
