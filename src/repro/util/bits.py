"""Bit-level packing/unpacking (network order, MSB first).

Shared by the PISA packet parser/deparser and the NCP wire codec so the
two sides agree on layout by construction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ReproError


class BitReader:
    def __init__(self, data: bytes):
        self.data = data
        self.bitpos = 0

    @property
    def bits_left(self) -> int:
        return len(self.data) * 8 - self.bitpos

    def read(self, nbits: int) -> int:
        if nbits > self.bits_left:
            raise ReproError(
                f"buffer too short: need {nbits} bits, have {self.bits_left}"
            )
        value = 0
        for _ in range(nbits):
            byte = self.data[self.bitpos // 8]
            bit = (byte >> (7 - (self.bitpos % 8))) & 1
            value = (value << 1) | bit
            self.bitpos += 1
        return value

    def rest(self) -> bytes:
        if self.bitpos % 8 != 0:
            raise ReproError("read stopped mid-byte")
        return self.data[self.bitpos // 8 :]


class BitWriter:
    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, nbits: int) -> None:
        for shift in range(nbits - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def to_bytes(self) -> bytes:
        if len(self._bits) % 8 != 0:
            raise ReproError("non-byte-aligned bit stream")
        out = bytearray()
        for i in range(0, len(self._bits), 8):
            byte = 0
            for bit in self._bits[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


def pack_fields(fields: Sequence[Tuple[str, int]], values: dict) -> bytes:
    """Pack ``values`` (by field name) per a (name, bits) layout."""
    writer = BitWriter()
    for name, bits in fields:
        writer.write(int(values.get(name, 0)) & ((1 << bits) - 1), bits)
    return writer.to_bytes()


def unpack_fields(fields: Sequence[Tuple[str, int]], data: bytes) -> Tuple[dict, bytes]:
    """Unpack a (name, bits) layout from the front of ``data``.

    Returns (values, remaining_bytes).
    """
    reader = BitReader(data)
    values = {name: reader.read(bits) for name, bits in fields}
    return values, reader.rest()
