"""Shared low-level helpers (fixed-width integer semantics, hashing)."""

from repro.util.intops import (
    mask,
    sign_extend,
    to_unsigned,
    wrap,
    wrap_signed,
    wrap_unsigned,
)

__all__ = [
    "mask",
    "sign_extend",
    "to_unsigned",
    "wrap",
    "wrap_signed",
    "wrap_unsigned",
]
