"""The P4 "backend": chip-constraint checking with structured feedback.

The paper's compilation trajectory ends with handing the generated P4
program to a proprietary backend that accepts or rejects it (S5), and
names the resulting trial-and-error loop as an open problem (S6). This
module is our open stand-in: it evaluates a program against an
:class:`ArchProfile` and either returns an :class:`AcceptanceReport`
with the measured resource usage, or raises :class:`BackendRejection`
whose ``reasons`` are machine-readable feedback the driver surfaces.

Resource model
--------------
* **stages**: the longest sequential chain of table applies / action
  calls through the control program (an If gateway shares its stage with
  the first operation of its branches, so it costs 0 itself);
* **PHV bits**: all header instances plus all metadata fields;
* **SRAM**: register array bytes plus table entry budget estimates;
* **register discipline**: the maximum number of times one register
  array is touched along any single execution path -- real pipelines
  allow a single access per array per packet (an RMW pair counts once).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import BackendRejection
from repro.p4.model import (
    Action,
    Apply,
    ControlNode,
    Do,
    IfNode,
    P4Program,
    PRegRead,
    PRegWrite,
)
from repro.pisa.arch import ArchProfile


class AcceptanceReport:
    """Resource usage of an accepted program."""

    def __init__(
        self,
        program: str,
        profile: str,
        stages: int,
        phv_bits: int,
        sram_bytes: int,
        tables: int,
        actions: int,
        max_register_accesses: Dict[str, int],
    ):
        self.program = program
        self.profile = profile
        self.stages = stages
        self.phv_bits = phv_bits
        self.sram_bytes = sram_bytes
        self.tables = tables
        self.actions = actions
        self.max_register_accesses = dict(max_register_accesses)

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "profile": self.profile,
            "stages": self.stages,
            "phv_bits": self.phv_bits,
            "sram_bytes": self.sram_bytes,
            "tables": self.tables,
            "actions": self.actions,
            "max_register_accesses": dict(self.max_register_accesses),
        }

    def __repr__(self) -> str:
        return (
            f"AcceptanceReport({self.program} on {self.profile}: "
            f"{self.stages} stages, {self.phv_bits} PHV bits, "
            f"{self.sram_bytes} SRAM bytes)"
        )


def _action_register_accesses(action: Action) -> Dict[str, int]:
    """Register accesses of one action; a read+write pair to the same
    array counts once (single-stage RMW)."""
    reads: Dict[str, int] = {}
    writes: Dict[str, int] = {}
    for prim in action.primitives:
        if isinstance(prim, PRegRead):
            reads[prim.reg] = reads.get(prim.reg, 0) + 1
        elif isinstance(prim, PRegWrite):
            writes[prim.reg] = writes.get(prim.reg, 0) + 1
    merged: Dict[str, int] = {}
    for reg in set(reads) | set(writes):
        merged[reg] = max(reads.get(reg, 0), writes.get(reg, 0))
    return merged


class _PathCost:
    __slots__ = ("stages", "reg_accesses")

    def __init__(self, stages: int = 0, reg_accesses: Dict[str, int] = None):
        self.stages = stages
        self.reg_accesses = dict(reg_accesses or {})

    def merge_seq(self, other: "_PathCost") -> "_PathCost":
        out = _PathCost(self.stages + other.stages, self.reg_accesses)
        for reg, n in other.reg_accesses.items():
            out.reg_accesses[reg] = out.reg_accesses.get(reg, 0) + n
        return out

    @staticmethod
    def max_of(a: "_PathCost", b: "_PathCost") -> "_PathCost":
        out = _PathCost(max(a.stages, b.stages))
        for reg in set(a.reg_accesses) | set(b.reg_accesses):
            out.reg_accesses[reg] = max(
                a.reg_accesses.get(reg, 0), b.reg_accesses.get(reg, 0)
            )
        return out


def _cost_of_nodes(program: P4Program, nodes: List[ControlNode]) -> _PathCost:
    total = _PathCost()
    for node in nodes:
        if isinstance(node, Apply):
            table = program.tables[node.table]
            accesses: Dict[str, int] = {}
            for name in set(table.actions + [table.default_action]):
                action_cost = _action_register_accesses(program.actions[name])
                for reg, n in action_cost.items():
                    accesses[reg] = max(accesses.get(reg, 0), n)
            total = total.merge_seq(_PathCost(1, accesses))
        elif isinstance(node, Do):
            accesses = _action_register_accesses(program.actions[node.action])
            total = total.merge_seq(_PathCost(1, accesses))
        elif isinstance(node, IfNode):
            then_cost = _cost_of_nodes(program, node.then_nodes)
            else_cost = _cost_of_nodes(program, node.else_nodes)
            total = total.merge_seq(_PathCost.max_of(then_cost, else_cost))
    return total


def check_program(program: P4Program, profile: ArchProfile) -> AcceptanceReport:
    """Accept or reject *program* against *profile*."""
    program.validate()
    reasons: List[str] = []

    cost = _cost_of_nodes(program, program.control)
    if cost.stages > profile.max_stages:
        reasons.append(
            f"requires {cost.stages} pipeline stages, chip has {profile.max_stages}"
        )

    phv = program.phv_bits()
    if phv > profile.phv_bits:
        reasons.append(f"PHV needs {phv} bits, chip provides {profile.phv_bits}")

    sram = sum(reg.byte_size for reg in program.registers.values())
    sram += sum(t.size * 8 for t in program.tables.values())  # entry estimate
    if sram > profile.sram_bytes:
        reasons.append(f"SRAM needs {sram} bytes, chip provides {profile.sram_bytes}")

    if len(program.tables) > profile.max_tables:
        reasons.append(
            f"{len(program.tables)} tables exceed the chip's {profile.max_tables}"
        )
    if len(program.actions) > profile.max_actions:
        reasons.append(
            f"{len(program.actions)} actions exceed the chip's {profile.max_actions}"
        )
    if len(program.parser) > profile.max_parser_states:
        reasons.append(
            f"{len(program.parser)} parser states exceed the chip's "
            f"{profile.max_parser_states}"
        )

    for reg, count in sorted(cost.reg_accesses.items()):
        if count > profile.max_register_accesses_per_array:
            reasons.append(
                f"register {reg!r} is accessed {count}x on one path; the chip "
                f"allows {profile.max_register_accesses_per_array} access(es) "
                "per array per packet (split the array or recirculate)"
            )

    if not profile.supports_mul and _uses_mul(program):
        reasons.append(
            "program uses general multiplication; this chip's ALUs only shift"
        )

    if reasons:
        raise BackendRejection(reasons)
    return AcceptanceReport(
        program.name,
        profile.name,
        cost.stages,
        phv,
        sram,
        len(program.tables),
        len(program.actions),
        cost.reg_accesses,
    )


def _uses_mul(program: P4Program) -> bool:
    from repro.p4.model import PAssign, PBin, PExpr, PMux, PUn

    def expr_has_mul(e: PExpr) -> bool:
        if isinstance(e, PBin):
            return e.op == "mul" or expr_has_mul(e.lhs) or expr_has_mul(e.rhs)
        if isinstance(e, PUn):
            return expr_has_mul(e.operand)
        if isinstance(e, PMux):
            return expr_has_mul(e.cond) or expr_has_mul(e.a) or expr_has_mul(e.b)
        return False

    for action in program.actions.values():
        for prim in action.primitives:
            if isinstance(prim, PAssign) and expr_has_mul(prim.expr):
                return True
            if isinstance(prim, PRegWrite) and (
                expr_has_mul(prim.expr) or expr_has_mul(prim.index)
            ):
                return True
            if isinstance(prim, PRegRead) and expr_has_mul(prim.index):
                return True
    return False
