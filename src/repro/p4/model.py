"""The P4-like target program model.

This is nclc's code-generation target: a program for a PISA switch,
structured the way P4-16 programs are -- header types, a programmable
parser, match-action tables, actions built from primitive operations,
register extern arrays, and a deparser. The :mod:`repro.pisa` package
interprets this model bmv2-style; :mod:`repro.p4.printer` renders it as
``.p4``-flavoured source; :mod:`repro.p4.backend` checks it against a
chip profile and accepts or rejects (paper S5: "The final P4 program is
given to a P4 backend to eventually accept/reject it").

Field references are dotted strings: ``"eth.dst"``, ``"ncp.seq"``,
``"meta.v42"``. The pseudo-header ``meta`` is the user metadata struct
(the paper's reverse-SROA target for SSA registers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import PisaError

# ---------------------------------------------------------------------------
# Headers
# ---------------------------------------------------------------------------


class HeaderField:
    __slots__ = ("name", "bits")

    def __init__(self, name: str, bits: int):
        if bits <= 0 or bits > 128:
            raise PisaError(f"unsupported field width {bits} for {name}")
        self.name = name
        self.bits = bits

    def __repr__(self) -> str:
        return f"{self.name}:{self.bits}"


class HeaderType:
    """A fixed-layout header; fields are byte-packed big-endian on the wire."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, int]]):
        self.name = name
        self.fields = [HeaderField(n, b) for n, b in fields]
        total = sum(f.bits for f in self.fields)
        if total % 8 != 0:
            raise PisaError(
                f"header {name} is {total} bits; headers must be byte-aligned"
            )
        self.bit_width = total

    @property
    def byte_width(self) -> int:
        return self.bit_width // 8

    def field(self, name: str) -> HeaderField:
        for f in self.fields:
            if f.name == name:
                return f
        raise PisaError(f"header {self.name} has no field {name!r}")

    def __repr__(self) -> str:
        return f"HeaderType({self.name}, {self.byte_width}B)"


# ---------------------------------------------------------------------------
# Expressions (action operand language)
# ---------------------------------------------------------------------------


class PExpr:
    """Base expression; evaluated by the PISA ALU over PHV fields."""


class PConst(PExpr):
    __slots__ = ("value", "bits")

    def __init__(self, value: int, bits: int = 32):
        self.value = value
        self.bits = bits

    def __repr__(self) -> str:
        return f"{self.value}"


class PField(PExpr):
    """Read of a PHV field (header field or metadata)."""

    __slots__ = ("ref",)

    def __init__(self, ref: str):
        self.ref = ref

    def __repr__(self) -> str:
        return self.ref


class PParam(PExpr):
    """An action parameter, bound per table entry (action data)."""

    __slots__ = ("name", "bits")

    def __init__(self, name: str, bits: int = 32):
        self.name = name
        self.bits = bits

    def __repr__(self) -> str:
        return f"${self.name}"


class PBin(PExpr):
    """Binary ALU op. Ops mirror NIR: add sub mul and or xor shl lshr ashr
    plus comparisons eq ne ult ule ugt uge slt sle sgt sge (yield 0/1)."""

    __slots__ = ("op", "lhs", "rhs", "bits", "signed")

    def __init__(self, op: str, lhs: PExpr, rhs: PExpr, bits: int, signed: bool = False):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.bits = bits
        self.signed = signed

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class PUn(PExpr):
    __slots__ = ("op", "operand", "bits", "signed")

    def __init__(self, op: str, operand: PExpr, bits: int, signed: bool = False):
        self.op = op
        self.operand = operand
        self.bits = bits
        self.signed = signed

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


class PMux(PExpr):
    """``cond != 0 ? a : b`` -- P4-16's conditional expression; also what
    RegisterAction predication provides on hardware."""

    __slots__ = ("cond", "a", "b", "bits")

    def __init__(self, cond: PExpr, a: PExpr, b: PExpr, bits: int):
        self.cond = cond
        self.a = a
        self.b = b
        self.bits = bits

    def __repr__(self) -> str:
        return f"({self.cond!r} ? {self.a!r} : {self.b!r})"


# ---------------------------------------------------------------------------
# Primitives (action body statements)
# ---------------------------------------------------------------------------


class Primitive:
    pass


class PAssign(Primitive):
    """``dst = expr`` where dst is a PHV field reference."""

    __slots__ = ("dst", "expr")

    def __init__(self, dst: str, expr: PExpr):
        self.dst = dst
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.dst} = {self.expr!r}"


class PRegRead(Primitive):
    """``dst = reg[index]`` -- stateful register array read."""

    __slots__ = ("dst", "reg", "index")

    def __init__(self, dst: str, reg: str, index: PExpr):
        self.dst = dst
        self.reg = reg
        self.index = index

    def __repr__(self) -> str:
        return f"{self.dst} = {self.reg}.read({self.index!r})"


class PRegWrite(Primitive):
    """``reg[index] = expr``."""

    __slots__ = ("reg", "index", "expr")

    def __init__(self, reg: str, index: PExpr, expr: PExpr):
        self.reg = reg
        self.index = index
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.reg}.write({self.index!r}, {self.expr!r})"


# ---------------------------------------------------------------------------
# Actions, tables, registers
# ---------------------------------------------------------------------------


class Action:
    def __init__(
        self,
        name: str,
        primitives: Sequence[Primitive] = (),
        params: Sequence[Tuple[str, int]] = (),
    ):
        self.name = name
        self.primitives = list(primitives)
        self.params = [(n, b) for n, b in params]

    def __repr__(self) -> str:
        return f"Action({self.name}, {len(self.primitives)} prims)"


class TableEntry:
    """One match entry: key values (exact ints, or (value, mask) pairs for
    ternary keys), the action to run and its action data."""

    def __init__(
        self,
        match: Sequence[Union[int, Tuple[int, int]]],
        action: str,
        args: Sequence[int] = (),
        priority: int = 0,
    ):
        self.match = list(match)
        self.action = action
        self.args = list(args)
        self.priority = priority

    def __repr__(self) -> str:
        return f"TableEntry({self.match} -> {self.action}{tuple(self.args)})"


class Table:
    """A match-action table.

    ``managed_by`` records who installs entries: ``"const"`` (entries in
    the program text), ``"control-plane"`` (e.g. the tables backing
    ``ncl::Map`` or IPv4 routes). The PISA simulator treats them the
    same; the distinction feeds the printer and the docs.
    """

    def __init__(
        self,
        name: str,
        keys: Sequence[Tuple[str, str]],
        actions: Sequence[str],
        default_action: str,
        default_args: Sequence[int] = (),
        entries: Optional[List[TableEntry]] = None,
        managed_by: str = "const",
        size: int = 1024,
    ):
        for _, kind in keys:
            if kind not in ("exact", "ternary"):
                raise PisaError(f"unsupported match kind {kind!r}")
        self.name = name
        self.keys = list(keys)
        self.actions = list(actions)
        self.default_action = default_action
        self.default_args = list(default_args)
        self.entries = entries if entries is not None else []
        self.managed_by = managed_by
        self.size = size

    def add_entry(self, entry: TableEntry) -> None:
        if len(self.entries) >= self.size:
            raise PisaError(f"table {self.name} full ({self.size} entries)")
        self.entries.append(entry)

    def remove_entries(self, predicate) -> int:
        before = len(self.entries)
        self.entries = [e for e in self.entries if not predicate(e)]
        return before - len(self.entries)

    def __repr__(self) -> str:
        return f"Table({self.name}, keys={self.keys}, {len(self.entries)} entries)"


class RegisterArray:
    def __init__(self, name: str, bits: int, size: int, signed: bool = False):
        if size <= 0:
            raise PisaError(f"register {name}: size must be positive")
        self.name = name
        self.bits = bits
        self.size = size
        self.signed = signed

    @property
    def byte_size(self) -> int:
        return (self.bits // 8) * self.size

    def __repr__(self) -> str:
        return f"RegisterArray({self.name}, {self.bits}b x {self.size})"


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class ParseState:
    """Extract ``extracts`` headers, then branch on a field value."""

    def __init__(
        self,
        name: str,
        extracts: Sequence[str] = (),
        select_field: Optional[str] = None,
        transitions: Sequence[Tuple[int, str]] = (),
        default_next: str = "accept",
    ):
        self.name = name
        self.extracts = list(extracts)
        self.select_field = select_field
        self.transitions = list(transitions)
        self.default_next = default_next

    def __repr__(self) -> str:
        return f"ParseState({self.name} -> {self.default_next})"


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class ControlNode:
    pass


class Apply(ControlNode):
    __slots__ = ("table",)

    def __init__(self, table: str):
        self.table = table

    def __repr__(self) -> str:
        return f"{self.table}.apply()"


class Do(ControlNode):
    """Direct action invocation (no table)."""

    __slots__ = ("action",)

    def __init__(self, action: str):
        self.action = action

    def __repr__(self) -> str:
        return f"{self.action}()"


class IfNode(ControlNode):
    def __init__(
        self,
        cond: PExpr,
        then_nodes: Sequence[ControlNode],
        else_nodes: Sequence[ControlNode] = (),
    ):
        self.cond = cond
        self.then_nodes = list(then_nodes)
        self.else_nodes = list(else_nodes)

    def __repr__(self) -> str:
        return f"if ({self.cond!r}) {{...{len(self.then_nodes)}}} else {{...{len(self.else_nodes)}}}"


# ---------------------------------------------------------------------------
# Program
# ---------------------------------------------------------------------------

#: Well-known metadata fields every generated program has.
META_FWD = "meta.fwd"  # 0 pass / 1 drop / 2 bcast / 3 reflect
META_FWD_LABEL = "meta.fwd_label"  # AND node id for _pass(label); 0xFFFF none

FWD_PASS = 0
FWD_DROP = 1
FWD_BCAST = 2
FWD_REFLECT = 3
NO_LABEL = 0xFFFF


class P4Program:
    def __init__(self, name: str):
        self.name = name
        self.headers: Dict[str, HeaderType] = {}
        #: instance name -> header type name (e.g. "eth" -> "ethernet_t")
        self.instances: Dict[str, str] = {}
        self.metadata: Dict[str, int] = {  # field name (no "meta.") -> bits
            "fwd": 8,
            "fwd_label": 16,
        }
        self.parser: List[ParseState] = []
        self.actions: Dict[str, Action] = {}
        self.tables: Dict[str, Table] = {}
        self.registers: Dict[str, RegisterArray] = {}
        self.control: List[ControlNode] = []
        self.deparser: List[str] = []  # instance names, emit order

    # -- construction helpers ------------------------------------------------

    def add_header(self, htype: HeaderType, instance: str) -> None:
        self.headers[htype.name] = htype
        if instance in self.instances:
            raise PisaError(f"duplicate header instance {instance!r}")
        self.instances[instance] = htype.name

    def add_metadata(self, name: str, bits: int) -> str:
        if name in self.metadata and self.metadata[name] != bits:
            raise PisaError(f"metadata field {name!r} redefined with new width")
        self.metadata[name] = bits
        return f"meta.{name}"

    def add_action(self, action: Action) -> Action:
        if action.name in self.actions:
            raise PisaError(f"duplicate action {action.name!r}")
        self.actions[action.name] = action
        return action

    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise PisaError(f"duplicate table {table.name!r}")
        for action_name in table.actions + [table.default_action]:
            if action_name not in self.actions:
                raise PisaError(
                    f"table {table.name}: unknown action {action_name!r}"
                )
        self.tables[table.name] = table
        return table

    def add_register(self, reg: RegisterArray) -> RegisterArray:
        if reg.name in self.registers:
            raise PisaError(f"duplicate register {reg.name!r}")
        self.registers[reg.name] = reg
        return reg

    # -- introspection -------------------------------------------------------

    def instance_type(self, instance: str) -> HeaderType:
        if instance not in self.instances:
            raise PisaError(f"unknown header instance {instance!r}")
        return self.headers[self.instances[instance]]

    def field_bits(self, ref: str) -> int:
        container, _, field = ref.partition(".")
        if not field:
            raise PisaError(f"malformed field reference {ref!r}")
        if container == "meta":
            if field not in self.metadata:
                raise PisaError(f"unknown metadata field {ref!r}")
            return self.metadata[field]
        return self.instance_type(container).field(field).bits

    def phv_bits(self) -> int:
        """Total PHV budget consumed: all header instances + metadata."""
        total = sum(
            self.instance_type(inst).bit_width for inst in self.instances
        )
        total += sum(self.metadata.values())
        return total

    def validate(self) -> None:
        """Structural validation (references resolve, parser states exist)."""
        state_names = {s.name for s in self.parser} | {"accept", "reject"}
        for state in self.parser:
            for inst in state.extracts:
                self.instance_type(inst)
            for _, nxt in state.transitions:
                if nxt not in state_names:
                    raise PisaError(f"parser: unknown state {nxt!r}")
            if state.default_next not in state_names:
                raise PisaError(f"parser: unknown state {state.default_next!r}")
        for table in self.tables.values():
            for ref, _ in table.keys:
                self.field_bits(ref)
        for inst in self.deparser:
            self.instance_type(inst)
        self._validate_control(self.control)

    def _validate_control(self, nodes: Sequence[ControlNode]) -> None:
        for node in nodes:
            if isinstance(node, Apply):
                if node.table not in self.tables:
                    raise PisaError(f"control: unknown table {node.table!r}")
            elif isinstance(node, Do):
                if node.action not in self.actions:
                    raise PisaError(f"control: unknown action {node.action!r}")
            elif isinstance(node, IfNode):
                self._validate_control(node.then_nodes)
                self._validate_control(node.else_nodes)
            else:
                raise PisaError(f"unknown control node {node!r}")

    def __repr__(self) -> str:
        return (
            f"P4Program({self.name}: {len(self.tables)} tables, "
            f"{len(self.actions)} actions, {len(self.registers)} registers)"
        )
