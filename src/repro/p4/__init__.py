"""P4-like target: program model, source printer, constraint backend."""

from repro.p4.backend import AcceptanceReport, check_program
from repro.p4.model import P4Program
from repro.p4.printer import print_program

__all__ = ["AcceptanceReport", "P4Program", "check_program", "print_program"]
