"""Multi-packet windows: NCP fragmentation and reassembly.

The paper deliberately scopes its prototype to windows that fit a packet
and calls multi-packet windows out as future work with a concrete
obstacle: "storing multiple packets may not yet be practical due to
limited switch memory" (S6). This module implements the future-work
half faithfully to that constraint:

* hosts fragment an oversized window into MTU-sized NCP fragments and
  reassemble on receipt;
* **switches do not execute kernels on fragments** -- the fragment
  carries a kernel id outside the deployed dispatch space, so the
  generated parser falls through to plain forwarding (exactly the
  behaviour a window-buffering switch would need memory to avoid).

Fragment frame layout::

    Ethernet | IPv4 | UDP | NCP(kernel_id | FRAG_BIT, flags |= FLAG_FRAG)
             | frag subheader (index:8, count:8, payload_len:16) | bytes

The ablation bench compares one-window-per-packet against fragmented
large windows: fragmentation recovers header efficiency on big windows
but forfeits in-network compute for them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import NcpError
from repro.ncp.wire import ETH_FIELDS, IPV4_FIELDS, NCP_FIELDS, UDP_FIELDS
from repro.util.bits import pack_fields, unpack_fields

#: set on the wire kernel_id of every fragment; outside the id range the
#: compiler assigns (1..N), so switch parsers never dispatch on it.
FRAG_KERNEL_BIT = 0x8000
#: NCP header flag marking a fragment.
FLAG_FRAG = 0x02

FRAG_FIELDS: List[Tuple[str, int]] = [
    ("index", 8),
    ("count", 8),
    ("payload_len", 16),
]

_HEADERS_LEN = (
    sum(b for _, b in ETH_FIELDS)
    + sum(b for _, b in IPV4_FIELDS)
    + sum(b for _, b in UDP_FIELDS)
    + sum(b for _, b in NCP_FIELDS)
) // 8
_FRAG_HDR_LEN = sum(b for _, b in FRAG_FIELDS) // 8

MAX_FRAGMENTS = 255


def fragment_frame(frame: bytes, mtu: int) -> List[bytes]:
    """Split an encoded NCP frame into fragments that fit *mtu* bytes.

    Returns ``[frame]`` unchanged when it already fits. The NCP header is
    replicated into each fragment (with the FRAG markers); the payload
    (window extension fields + data) is what gets sliced.
    """
    if len(frame) <= mtu:
        return [frame]
    eth, rest = unpack_fields(ETH_FIELDS, frame)
    ipv4, rest = unpack_fields(IPV4_FIELDS, rest)
    udp, rest = unpack_fields(UDP_FIELDS, rest)
    ncp, payload = unpack_fields(NCP_FIELDS, rest)
    if ncp["flags"] & FLAG_FRAG:
        raise NcpError("refusing to fragment a fragment")

    budget = mtu - _HEADERS_LEN - _FRAG_HDR_LEN
    if budget <= 0:
        raise NcpError(f"mtu {mtu} too small for NCP headers")
    pieces = [payload[i : i + budget] for i in range(0, len(payload), budget)]
    if len(pieces) > MAX_FRAGMENTS:
        raise NcpError(f"window needs {len(pieces)} fragments (max {MAX_FRAGMENTS})")

    frames = []
    for index, piece in enumerate(pieces):
        ncp_frag = dict(ncp)
        ncp_frag["kernel_id"] = ncp["kernel_id"] | FRAG_KERNEL_BIT
        ncp_frag["flags"] = ncp["flags"] | FLAG_FRAG
        udp_frag = dict(udp)
        udp_frag["length"] = 8 + len(pack_fields(NCP_FIELDS, ncp_frag)) + _FRAG_HDR_LEN + len(piece)
        ipv4_frag = dict(ipv4)
        ipv4_frag["total_len"] = 20 + udp_frag["length"]
        frames.append(
            pack_fields(ETH_FIELDS, eth)
            + pack_fields(IPV4_FIELDS, ipv4_frag)
            + pack_fields(UDP_FIELDS, udp_frag)
            + pack_fields(NCP_FIELDS, ncp_frag)
            + pack_fields(
                FRAG_FIELDS,
                {"index": index, "count": len(pieces), "payload_len": len(piece)},
            )
            + piece
        )
    return frames


def is_fragment(data: bytes) -> bool:
    try:
        _, rest = unpack_fields(ETH_FIELDS, data)
        _, rest = unpack_fields(IPV4_FIELDS, rest)
        _, rest = unpack_fields(UDP_FIELDS, rest)
        ncp, _ = unpack_fields(NCP_FIELDS, rest)
        return bool(ncp["flags"] & FLAG_FRAG)
    except Exception:
        return False


class Reassembler:
    """Collects fragments into complete NCP frames.

    Keyed by (src ip, original kernel id, seq) -- one outstanding window
    per sender/kernel/seq, as NCP's window sequencing guarantees.
    """

    def __init__(self, max_pending: int = 1024):
        self._pending: Dict[Tuple[int, int, int], Dict[int, bytes]] = {}
        self._meta: Dict[Tuple[int, int, int], Tuple[dict, dict, dict, dict, int]] = {}
        self.max_pending = max_pending
        self.reassembled = 0
        self.fragments_seen = 0

    def feed(self, data: bytes) -> Optional[bytes]:
        """Add one fragment; returns the rebuilt original frame when this
        fragment completes its window, else None."""
        eth, rest = unpack_fields(ETH_FIELDS, data)
        ipv4, rest = unpack_fields(IPV4_FIELDS, rest)
        udp, rest = unpack_fields(UDP_FIELDS, rest)
        ncp, rest = unpack_fields(NCP_FIELDS, rest)
        if not ncp["flags"] & FLAG_FRAG:
            raise NcpError("not a fragment")
        frag, payload = unpack_fields(FRAG_FIELDS, rest)
        payload = payload[: frag["payload_len"]]
        self.fragments_seen += 1

        original_kernel = ncp["kernel_id"] & ~FRAG_KERNEL_BIT
        key = (ipv4["src"], original_kernel, ncp["seq"])
        if key not in self._pending:
            if len(self._pending) >= self.max_pending:
                raise NcpError("reassembly table full")
            self._pending[key] = {}
            self._meta[key] = (eth, ipv4, udp, ncp, frag["count"])
        slots = self._pending[key]
        slots[frag["index"]] = payload

        count = self._meta[key][4]
        if len(slots) < count:
            return None
        eth, ipv4, udp, ncp, _ = self._meta.pop(key)
        del self._pending[key]
        full_payload = b"".join(slots[i] for i in range(count))
        ncp_orig = dict(ncp)
        ncp_orig["kernel_id"] = original_kernel
        ncp_orig["flags"] = ncp["flags"] & ~FLAG_FRAG
        udp_orig = dict(udp)
        udp_orig["length"] = 8 + len(pack_fields(NCP_FIELDS, ncp_orig)) + len(full_payload)
        ipv4_orig = dict(ipv4)
        ipv4_orig["total_len"] = 20 + udp_orig["length"]
        self.reassembled += 1
        return (
            pack_fields(ETH_FIELDS, eth)
            + pack_fields(IPV4_FIELDS, ipv4_orig)
            + pack_fields(UDP_FIELDS, udp_orig)
            + pack_fields(NCP_FIELDS, ncp_orig)
            + full_payload
        )

    @property
    def pending_windows(self) -> int:
        return len(self._pending)
