"""NCP: the Net Compute Protocol -- window transport + execution context."""

from repro.ncp.window import Window, Windower
from repro.ncp.wire import (
    ChunkLayout,
    DecodedFrame,
    KernelLayout,
    NCP_MAGIC,
    NCP_PORT,
    decode_frame,
    encode_frame,
    is_ncp_frame,
    layout_for_kernel,
)

__all__ = [
    "ChunkLayout",
    "DecodedFrame",
    "KernelLayout",
    "NCP_MAGIC",
    "NCP_PORT",
    "Window",
    "Windower",
    "decode_frame",
    "encode_frame",
    "is_ncp_frame",
    "layout_for_kernel",
]
