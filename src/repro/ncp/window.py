"""The window abstraction (paper S4.2).

A window associates elements across the arrays of one kernel invocation
-- "a basic unit of processing". The runtime constructs windows from a
*window specification* (a mask giving the number of elements taken from
each array per window) completely transparently, and reassembles arrays
from windows at the receiver.

Windows are not packets: the prototype maps one window to one packet
(paper S6), but :class:`Windower` is written against the abstraction so
multi-packet windows bolt on in the framing layer, and the ablation
bench exercises both window/packet ratios the codec supports.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import NcpError


class Window:
    """One window: per-array chunks plus its metadata."""

    __slots__ = ("seq", "chunks", "ext", "last", "from_node")

    def __init__(
        self,
        seq: int,
        chunks: Sequence[Sequence[int]],
        ext: Optional[Dict[str, int]] = None,
        last: bool = False,
        from_node: int = 0,
    ):
        self.seq = seq
        self.chunks = [list(c) for c in chunks]
        self.ext = dict(ext or {})
        self.last = last
        self.from_node = from_node

    def meta(self) -> Dict[str, int]:
        """Window-struct fields as seen by kernel code."""
        meta = {"seq": self.seq, "from": self.from_node, "last": int(self.last)}
        meta.update(self.ext)
        return meta

    def __repr__(self) -> str:
        sizes = "/".join(str(len(c)) for c in self.chunks)
        return f"Window(seq={self.seq}, chunks={sizes}, last={self.last})"


class Windower:
    """Splits arrays into windows per a mask, and reassembles them.

    The mask has one entry per array; entry *i* is the number of elements
    array *i* contributes to each window (Fig 2 uses ``{2,2}``). Arrays
    must be mask-aligned multiples of one another: every array is
    consumed after the same number of windows.
    """

    def __init__(self, mask: Sequence[int]):
        if not mask or any(m <= 0 for m in mask):
            raise NcpError(f"invalid window mask {list(mask)}")
        self.mask = tuple(int(m) for m in mask)

    def window_count(self, arrays: Sequence[Sequence[int]]) -> int:
        if len(arrays) != len(self.mask):
            raise NcpError(
                f"mask has {len(self.mask)} entries but {len(arrays)} arrays given"
            )
        counts = set()
        for array, m in zip(arrays, self.mask):
            if len(array) % m != 0:
                raise NcpError(
                    f"array of length {len(array)} is not divisible by its "
                    f"mask entry {m}"
                )
            counts.add(len(array) // m)
        if len(counts) != 1:
            raise NcpError(
                f"arrays yield differing window counts {sorted(counts)}; "
                "all arrays must be consumed after the same number of windows"
            )
        return counts.pop()

    def split(
        self,
        arrays: Sequence[Sequence[int]],
        ext: Optional[Dict[str, int]] = None,
        from_node: int = 0,
    ) -> Iterator[Window]:
        """Yield the windows of one kernel invocation, in sequence order."""
        total = self.window_count(arrays)
        for seq in range(total):
            chunks = [
                list(array[seq * m : (seq + 1) * m])
                for array, m in zip(arrays, self.mask)
            ]
            yield Window(
                seq,
                chunks,
                ext=ext,
                last=(seq == total - 1),
                from_node=from_node,
            )

    def scatter(
        self, window: Window, arrays: Sequence[List[int]]
    ) -> None:
        """Write a window's chunks back into position in ``arrays``
        (receiver-side reassembly)."""
        if len(arrays) != len(self.mask):
            raise NcpError("array count does not match mask")
        for array, chunk, m in zip(arrays, window.chunks, self.mask):
            if len(chunk) != m:
                raise NcpError(
                    f"window chunk has {len(chunk)} elements, mask says {m}"
                )
            base = window.seq * m
            if base + m > len(array):
                raise NcpError(
                    f"window seq {window.seq} overruns array of length {len(array)}"
                )
            array[base : base + m] = chunk

    def reassemble(
        self, windows: Sequence[Window], lengths: Sequence[int]
    ) -> List[List[int]]:
        """Rebuild full arrays from an (unordered) window sequence."""
        arrays: List[List[int]] = [[0] * n for n in lengths]
        for window in windows:
            self.scatter(window, arrays)
        return arrays
