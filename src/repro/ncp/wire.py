"""NCP wire format.

NCP (Net Compute Protocol, paper S3.2) is the window transport: besides
moving window data it "encodes kernel execution context" -- which kernel
to execute, the window sequence number, the sender, and any user-defined
window-struct extension fields.

Frame layout (prototype scope: one window per packet, over UDP)::

    Ethernet | IPv4 | UDP(dport=NCP_PORT) | NCP fixed | ext fields | data

The same (name, bits) layouts drive three consumers:

* the host-side codec in this module (:func:`encode_frame` /
  :func:`decode_frame`);
* nclc's generated parser spec (:func:`ncp_parse_states`), so the switch
  parses exactly what hosts emit;
* the KernelLayout registry the runtime uses to frame windows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NcpError
from repro.ncl.types import PointerType, Type, is_signed, scalar_bits
from repro.util import intops
from repro.util.bits import BitReader, BitWriter, pack_fields, unpack_fields

# -- constants -----------------------------------------------------------------

ETHERTYPE_IPV4 = 0x0800
IP_PROTO_UDP = 17
NCP_PORT = 0x4E43  # 'NC'
NCP_MAGIC = 0xC317
NCP_VERSION = 1

FLAG_LAST = 0x01
#: (0x02 is FLAG_FRAG, defined in repro.ncp.fragment)
#: frame carries an in-band telemetry trailer (see repro.obs.int)
FLAG_INT = 0x04

ETH_FIELDS: List[Tuple[str, int]] = [("dst", 48), ("src", 48), ("ethertype", 16)]
IPV4_FIELDS: List[Tuple[str, int]] = [
    ("version_ihl", 8),
    ("tos", 8),
    ("total_len", 16),
    ("ident", 16),
    ("flags_frag", 16),
    ("ttl", 8),
    ("proto", 8),
    ("checksum", 16),
    ("src", 32),
    ("dst", 32),
]
UDP_FIELDS: List[Tuple[str, int]] = [
    ("sport", 16),
    ("dport", 16),
    ("length", 16),
    ("checksum", 16),
]
NCP_FIELDS: List[Tuple[str, int]] = [
    ("magic", 16),
    ("version", 8),
    ("flags", 8),
    ("kernel_id", 16),
    ("from_node", 16),
    ("seq", 32),
]

IPV4_VERSION_IHL = 0x45
DEFAULT_TTL = 64


def node_ip(node_id: int) -> int:
    """Deterministic IPv4 address for a node id: 10.0.x.y."""
    return (10 << 24) | (node_id & 0xFFFF)


def node_mac(node_id: int) -> int:
    return (0x02 << 40) | (node_id & 0xFFFF)


# -- kernel layouts ----------------------------------------------------------------


class ChunkLayout:
    """One parameter's slice of a window: ``count`` elements of
    ``bits``-wide (``signed``?) integers."""

    __slots__ = ("name", "count", "bits", "signed")

    def __init__(self, name: str, count: int, bits: int, signed: bool):
        if count <= 0:
            raise NcpError(f"chunk {name!r}: count must be positive")
        if bits not in (8, 16, 32, 64):
            raise NcpError(f"chunk {name!r}: unsupported element width {bits}")
        self.name = name
        self.count = count
        self.bits = bits
        self.signed = signed

    @property
    def bytes(self) -> int:
        return self.count * self.bits // 8

    def __repr__(self) -> str:
        return f"ChunkLayout({self.name} x{self.count} @{self.bits}b)"


class KernelLayout:
    """The on-the-wire shape of one kernel's windows.

    Derived from the kernel signature plus the window mask: parameter *i*
    contributes ``mask[i]`` elements per window (paper S4.2: "a mask with
    the number of elements from each array ... its length must always
    match the number of pointers in an _out_ kernel's signature").
    Scalar parameters contribute one element regardless.
    """

    def __init__(
        self,
        kernel_id: int,
        kernel_name: str,
        chunks: Sequence[ChunkLayout],
        ext_fields: Sequence[Tuple[str, int, bool]] = (),
    ):
        self.kernel_id = kernel_id
        self.kernel_name = kernel_name
        self.chunks = list(chunks)
        self.ext_fields = [(n, b, s) for n, b, s in ext_fields]

    @property
    def data_bytes(self) -> int:
        return sum(c.bytes for c in self.chunks)

    @property
    def ext_bytes(self) -> int:
        return sum(b for _, b, _ in self.ext_fields) // 8

    def payload_field_layout(self) -> List[Tuple[str, int]]:
        """(name, bits) list for ext fields + data elements; also the
        field layout of the generated per-kernel P4 header."""
        fields: List[Tuple[str, int]] = [
            (f"x_{name}", bits) for name, bits, _ in self.ext_fields
        ]
        for ci, chunk in enumerate(self.chunks):
            fields.extend(
                (f"d{ci}_{ei}", chunk.bits) for ei in range(chunk.count)
            )
        return fields

    def __repr__(self) -> str:
        return f"KernelLayout(#{self.kernel_id} {self.kernel_name}, {self.chunks})"


def layout_for_kernel(
    kernel_id: int,
    kernel_name: str,
    param_types: Sequence[Tuple[str, Type]],
    mask: Sequence[int],
    ext_fields: Sequence[Tuple[str, Type]] = (),
) -> KernelLayout:
    """Build a KernelLayout from NCL types + a window mask."""
    if len(mask) != len(param_types):
        raise NcpError(
            f"mask length {len(mask)} != number of window-data parameters "
            f"{len(param_types)}"
        )
    chunks = []
    for (name, ty), count in zip(param_types, mask):
        if isinstance(ty, PointerType):
            elem = ty.pointee
        else:
            elem = ty
            if count != 1:
                raise NcpError(
                    f"scalar parameter {name!r} must have mask entry 1, got {count}"
                )
        chunks.append(ChunkLayout(name, count, scalar_bits(elem), is_signed(elem)))
    ext = [(n, scalar_bits(t), is_signed(t)) for n, t in ext_fields]
    return KernelLayout(kernel_id, kernel_name, chunks, ext)


# -- frame codec --------------------------------------------------------------------


def encode_frame(
    layout: KernelLayout,
    src_node: int,
    dst_node: int,
    seq: int,
    chunks: Sequence[Sequence[int]],
    ext_values: Optional[Dict[str, int]] = None,
    last: bool = False,
    from_node: Optional[int] = None,
) -> bytes:
    """Serialize one window into a full Ethernet/IPv4/UDP/NCP frame."""
    if len(chunks) != len(layout.chunks):
        raise NcpError(
            f"expected {len(layout.chunks)} chunks, got {len(chunks)}"
        )
    ext_values = dict(ext_values or {})

    payload = BitWriter()
    for name, bits, _signed in layout.ext_fields:
        if name not in ext_values:
            raise NcpError(f"missing window extension field {name!r}")
        payload.write(intops.to_unsigned(int(ext_values[name]), bits), bits)
    for chunk_layout, values in zip(layout.chunks, chunks):
        if len(values) != chunk_layout.count:
            raise NcpError(
                f"chunk {chunk_layout.name!r}: expected {chunk_layout.count} "
                f"elements, got {len(values)}"
            )
        for v in values:
            payload.write(intops.to_unsigned(int(v), chunk_layout.bits), chunk_layout.bits)
    payload_bytes = payload.to_bytes()

    ncp_bytes = pack_fields(
        NCP_FIELDS,
        {
            "magic": NCP_MAGIC,
            "version": NCP_VERSION,
            "flags": FLAG_LAST if last else 0,
            "kernel_id": layout.kernel_id,
            "from_node": src_node if from_node is None else from_node,
            "seq": seq,
        },
    )
    udp_len = 8 + len(ncp_bytes) + len(payload_bytes)
    udp_bytes = pack_fields(
        UDP_FIELDS,
        {"sport": NCP_PORT, "dport": NCP_PORT, "length": udp_len, "checksum": 0},
    )
    ip_bytes = pack_fields(
        IPV4_FIELDS,
        {
            "version_ihl": IPV4_VERSION_IHL,
            "tos": 0,
            "total_len": 20 + udp_len,
            "ident": seq & 0xFFFF,
            "flags_frag": 0,
            "ttl": DEFAULT_TTL,
            "proto": IP_PROTO_UDP,
            "checksum": 0,
            "src": node_ip(src_node),
            "dst": node_ip(dst_node),
        },
    )
    eth_bytes = pack_fields(
        ETH_FIELDS,
        {
            "dst": node_mac(dst_node),
            "src": node_mac(src_node),
            "ethertype": ETHERTYPE_IPV4,
        },
    )
    return eth_bytes + ip_bytes + udp_bytes + ncp_bytes + payload_bytes


class DecodedFrame:
    """A parsed NCP frame."""

    def __init__(
        self,
        src_node: int,
        dst_node: int,
        kernel_id: int,
        from_node: int,
        seq: int,
        last: bool,
        ext: Dict[str, int],
        chunks: List[List[int]],
    ):
        self.src_node = src_node
        self.dst_node = dst_node
        self.kernel_id = kernel_id
        self.from_node = from_node
        self.seq = seq
        self.last = last
        self.ext = ext
        self.chunks = chunks

    def __repr__(self) -> str:
        return (
            f"DecodedFrame(k{self.kernel_id} seq={self.seq} from={self.from_node} "
            f"last={self.last})"
        )


#: Every header layout above is byte-aligned with fixed widths, so the
#: stacked prefix has fixed byte offsets: ETH 0..14, IPv4 14..34, UDP
#: 34..42, NCP 42..54.  The hot-path peek below reads those offsets
#: directly instead of walking the layouts bit by bit -- it runs once
#: per packet on the simulator fast path (cached on repro.net.Frame).
_PEEK_MIN_LEN = 54


def is_ncp_frame(data: bytes) -> bool:
    """Cheap check mirroring the switch parser's NCP recognition."""
    return peek_frame(data) is not None


def peek_frame(data: bytes) -> Optional[Dict[str, int]]:
    """Header-only decode (no layout needed) for tracing and routing:
    which window is this frame carrying? Returns None for non-NCP
    frames."""
    if (
        len(data) < _PEEK_MIN_LEN
        or data[12] != 0x08 or data[13] != 0x00   # ethertype IPv4
        or data[23] != IP_PROTO_UDP
        or (data[36] << 8) | data[37] != NCP_PORT
        or (data[42] << 8) | data[43] != NCP_MAGIC
    ):
        return None
    return {
        "kernel": (data[46] << 8) | data[47],
        "seq": int.from_bytes(data[50:54], "big"),
        "from": (data[48] << 8) | data[49],
        "last": 1 if data[45] & FLAG_LAST else 0,
        "src": (data[28] << 8) | data[29],   # ip.src & 0xFFFF
        "dst": (data[32] << 8) | data[33],   # ip.dst & 0xFFFF
    }


def decode_frame(
    data: bytes, layouts: Dict[int, KernelLayout]
) -> DecodedFrame:
    """Parse a full frame; dispatches the payload layout on kernel_id."""
    eth, rest = unpack_fields(ETH_FIELDS, data)
    if eth["ethertype"] != ETHERTYPE_IPV4:
        raise NcpError(f"not IPv4 (ethertype {eth['ethertype']:#x})")
    ip, rest = unpack_fields(IPV4_FIELDS, rest)
    if ip["proto"] != IP_PROTO_UDP:
        raise NcpError(f"not UDP (proto {ip['proto']})")
    udp, rest = unpack_fields(UDP_FIELDS, rest)
    if udp["dport"] != NCP_PORT:
        raise NcpError(f"not an NCP port ({udp['dport']})")
    ncp, rest = unpack_fields(NCP_FIELDS, rest)
    if ncp["magic"] != NCP_MAGIC:
        raise NcpError(f"bad NCP magic {ncp['magic']:#x}")
    if ncp["version"] != NCP_VERSION:
        raise NcpError(f"unsupported NCP version {ncp['version']}")
    kernel_id = ncp["kernel_id"]
    layout = layouts.get(kernel_id)
    if layout is None:
        raise NcpError(f"unknown kernel id {kernel_id}")

    reader = BitReader(rest)
    ext: Dict[str, int] = {}
    for name, bits, signed in layout.ext_fields:
        raw = reader.read(bits)
        ext[name] = intops.wrap(raw, bits, signed)
    chunks: List[List[int]] = []
    for chunk_layout in layout.chunks:
        values = [
            intops.wrap(reader.read(chunk_layout.bits), chunk_layout.bits, chunk_layout.signed)
            for _ in range(chunk_layout.count)
        ]
        chunks.append(values)

    return DecodedFrame(
        src_node=ip["src"] & 0xFFFF,
        dst_node=ip["dst"] & 0xFFFF,
        kernel_id=kernel_id,
        from_node=ncp["from_node"],
        seq=ncp["seq"],
        last=bool(ncp["flags"] & FLAG_LAST),
        ext=ext,
        chunks=chunks,
    )
