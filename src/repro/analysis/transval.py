"""Translation validation of the NIR optimization pipeline.

``nclc build --verify-opt`` arms a :class:`PassValidator` on every
per-kernel pass pipeline (host and switch). Around each *transform*
pass the pipeline runner snapshots the kernel, and afterwards the
validator checks the output against the snapshot three ways:

1. **structural** -- :func:`repro.nir.verify.verify_function` (branch
   targets, phi arity, SSA dominance) must still hold;
2. **differential** -- a deterministic set of corner-case plus
   seeded-random window vectors runs through the NIR interpreter on
   both versions; forwarding decision, return value, mutated window
   args, and the full device-state snapshot must agree;
3. **abstract** -- if the abstract interpreter proves a *different*
   constant return value for the two versions, that contradiction is a
   miscompile even if no vector happened to reach it.

Any violation raises :class:`TranslationValidationError` naming the
exact pass, so an optimizer bug reads as "pass 'storefwd' miscompiled
kernel 'query'" rather than a distant differential-test failure.

Trap policy: the interpreter models what a switch cannot do (division
by zero, negative shifts, out-of-range accesses) by raising. A pass may
legally *remove* a trapping computation (dead-code elimination), so a
vector where the *input* kernel traps is skipped; a pass that makes a
previously clean vector trap has introduced a fault and fails.
"""

from __future__ import annotations

import copy
import random
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import ReproError
from repro.ncl.types import PointerType, is_signed, scalar_bits
from repro.nir import ir
from repro.nir.interp import DeviceState, Interpreter, WindowContext
from repro.nir.passes.clone import clone_function
from repro.nir.verify import verify_function

#: seeded-random vectors per kernel (on top of the corner cases)
RANDOM_TRIALS = 5
#: fallback buffer length for pointer params with dynamic indexing
DYNAMIC_BUFFER_LEN = 16

_TRAP = object()


class TranslationValidationError(ReproError):
    """An optimization pass changed the meaning of a kernel."""

    def __init__(self, pass_name: str, fn_name: str, detail: str):
        self.pass_name = pass_name
        self.fn_name = fn_name
        self.detail = detail
        super().__init__(
            f"translation validation failed: pass {pass_name!r} "
            f"miscompiled kernel {fn_name!r}: {detail}"
        )


def _reachable_functions(fn: ir.Function) -> List[ir.Function]:
    """fn plus every function transitively reachable through CallFn."""
    seen: List[ir.Function] = []
    work = [fn]
    while work:
        cur = work.pop()
        if any(cur is f for f in seen):
            continue
        seen.append(cur)
        for instr in cur.instructions():
            if isinstance(instr, ir.CallFn):
                work.append(instr.callee)
    return seen


def _buffer_lengths(fn: ir.Function) -> Dict[int, int]:
    """Element count to allocate per pointer-param index: one past the
    largest constant index observed, or a fixed fallback when any access
    is dynamically indexed (loop counters before unrolling)."""
    lengths: Dict[int, int] = {}
    dynamic: Set[int] = set()
    for callee in _reachable_functions(fn):
        for instr in callee.instructions():
            param = None
            index = None
            if isinstance(instr, (ir.LoadParam, ir.StoreParam)):
                param, index = instr.param, instr.index
            elif isinstance(instr, ir.Memcpy):
                for region in (instr.dst, instr.src):
                    if region.kind == "param" and region.param is not None:
                        dynamic.add(region.param.index)
            if param is None:
                continue
            if isinstance(index, ir.Const):
                lengths[param.index] = max(
                    lengths.get(param.index, 0), index.value + 1
                )
            else:
                dynamic.add(param.index)
    for p in fn.params:
        if isinstance(p.ty, PointerType):
            want = lengths.get(p.index, 0)
            if p.index in dynamic:
                want = max(want, DYNAMIC_BUFFER_LEN)
            lengths[p.index] = max(want, 4)
    return lengths


def _scalar_corner(ty, which: str) -> int:
    bits = scalar_bits(ty)
    if which == "zero":
        return 0
    if which == "one":
        return 1
    if is_signed(ty):
        return -(1 << (bits - 1)) if which == "min" else (1 << (bits - 1)) - 1
    return 0 if which == "min" else (1 << bits) - 1


def _random_scalar(rng: random.Random, ty) -> int:
    # Small values keep compares/branches live (matches the -O0/-O2
    # differential test's value distribution).
    lo = -8 if is_signed(ty) else 0
    return rng.randint(lo, 15)


class PassValidator:
    """Per-kernel differential + abstract checker (see module docstring).

    The vector plan is fixed at construction (from the *unoptimized*
    kernel), so every pass of the pipeline is judged on the same
    deterministic evidence.
    """

    def __init__(
        self,
        module: ir.Module,
        fn: ir.Function,
        window_spec: Optional[Mapping[str, int]] = None,
        label_ids: Optional[Mapping[str, int]] = None,
        location_id: int = 0,
    ):
        self.module = module
        self.fn_name = fn.name
        self.window_spec = dict(window_spec or {})
        self.label_ids = dict(label_ids or {})
        self.location_id = location_id
        self.param_tys = [p.ty for p in fn.params]
        self.buffer_lengths = _buffer_lengths(fn)
        self.vectors = self._make_vectors(fn)

    # -- vector plan ---------------------------------------------------

    def _args_for(self, corner: Optional[str], rng: random.Random) -> List[object]:
        args: List[object] = []
        for index, ty in enumerate(self.param_tys):
            if isinstance(ty, PointerType):
                count = self.buffer_lengths.get(index, 4)
                if corner is not None:
                    args.append([_scalar_corner(ty.pointee, corner)] * count)
                else:
                    args.append(
                        [_random_scalar(rng, ty.pointee) for _ in range(count)]
                    )
            elif corner is not None:
                args.append(_scalar_corner(ty, corner))
            else:
                args.append(_random_scalar(rng, ty))
        return args

    def _make_vectors(self, fn: ir.Function) -> List[Tuple[Dict[str, int], List[object]]]:
        rng = random.Random(f"transval:{fn.name}")
        vectors = []
        corners = [
            ("zero", dict(seq=0)),
            ("one", dict(seq=1, last=1)),
            ("max", dict(seq=3, last=1)),
            ("min", dict(seq=2)),
        ]
        for corner, meta_bits in corners:
            meta = {"seq": 0, "from": 0, "last": 0}
            meta.update(meta_bits)
            meta.update(self.window_spec)
            vectors.append((meta, self._args_for(corner, rng)))
        for _ in range(RANDOM_TRIALS):
            meta = {
                "seq": rng.randrange(8),
                "from": rng.randint(0, 3),
                "last": rng.randint(0, 1),
            }
            meta.update(self.window_spec)
            vectors.append((meta, self._args_for(None, rng)))
        return vectors

    # -- state ---------------------------------------------------------

    def _fresh_state(self) -> DeviceState:
        # Instantiate *every* global (including host-space ones: the host
        # pipeline's kernels reference them), then install deterministic
        # non-trivial contents so gates and map hit/miss paths both run.
        state = DeviceState()
        for name in sorted(self.module.globals):
            state.instantiate(self.module.globals[name])
        for name, value in state.ctrl.items():
            if not isinstance(value, list):
                state.ctrl_write(name, 2)
        for map_state in state.maps.values():
            for slot, key in enumerate((1, 3, 5)):
                if slot < map_state.ty.capacity:
                    map_state.insert(key, slot)
        return state

    def _run(self, fn: ir.Function, meta, args):
        state = self._fresh_state()
        call_args = copy.deepcopy(args)
        ctx = WindowContext(meta, call_args, self.location_id, self.label_ids)
        try:
            result = Interpreter(self.module, state).run(fn, ctx)
        except (ReproError, ZeroDivisionError, KeyError):
            return _TRAP
        return (
            result.fwd.name,
            result.fwd_label,
            result.ret,
            call_args,
            state.snapshot(),
        )

    # -- the pipeline hook (duck-typed by run_function_pipeline) -------

    def snapshot(self, fn: ir.Function) -> ir.Function:
        return clone_function(fn)

    def check(self, pass_name: str, before: ir.Function, fn: ir.Function) -> None:
        try:
            verify_function(fn)
        except ReproError as exc:
            raise TranslationValidationError(
                pass_name, self.fn_name, f"broken IR after pass: {exc}"
            ) from exc

        clean = 0
        for vec_no, (meta, args) in enumerate(self.vectors):
            expected = self._run(before, meta, args)
            if expected is _TRAP:
                continue  # the pass may legally have removed the trap
            actual = self._run(fn, meta, args)
            if actual is _TRAP:
                raise TranslationValidationError(
                    pass_name,
                    self.fn_name,
                    f"vector #{vec_no} ran clean before the pass but "
                    f"traps afterwards (meta={meta})",
                )
            clean += 1
            if actual != expected:
                raise TranslationValidationError(
                    pass_name,
                    self.fn_name,
                    f"vector #{vec_no} diverged (meta={meta}): "
                    f"{self._describe_diff(expected, actual)}",
                )

        if clean:
            self._check_abstract(pass_name, before, fn)

    @staticmethod
    def _describe_diff(expected, actual) -> str:
        names = ("fwd", "fwd_label", "ret", "window args", "device state")
        for name, e, a in zip(names, expected, actual):
            if e != a:
                return f"{name}: {e!r} -> {a!r}"
        return "observables differ"

    def _check_abstract(self, pass_name, before, fn) -> None:
        from repro.analysis.absint import analyze_function

        facts_before = analyze_function(
            before, label_ids=self.label_ids, win_ext=self.window_spec
        )
        facts_after = analyze_function(
            fn, label_ids=self.label_ids, win_ext=self.window_spec
        )
        rb, ra = facts_before.ret_value, facts_after.ret_value
        if rb is None or ra is None:
            return
        if rb.is_singleton and ra.is_singleton and rb.lo != ra.lo:
            raise TranslationValidationError(
                pass_name,
                self.fn_name,
                f"abstract return values contradict: proved {rb.lo} "
                f"before the pass, {ra.lo} after",
            )


def make_validator(
    module: ir.Module,
    fn: ir.Function,
    window_spec: Optional[Mapping[str, int]] = None,
    label_ids: Optional[Mapping[str, int]] = None,
    location_id: int = 0,
) -> PassValidator:
    """Convenience constructor used by the pass-manager layer."""
    return PassValidator(
        module,
        fn,
        window_spec=window_spec,
        label_ids=label_ids,
        location_id=location_id,
    )
